//! Workspace umbrella crate for the QISMET reproduction.
//!
//! Re-exports all member crates so examples and integration tests can use a
//! single dependency root.

pub use qismet;
pub use qismet_bench as bench;
pub use qismet_chem as chem;
pub use qismet_filters as filters;
pub use qismet_mathkit as mathkit;
pub use qismet_optim as optim;
pub use qismet_qnoise as qnoise;
pub use qismet_qsim as qsim;
pub use qismet_vqa as vqa;

//! H2 dissociation: from Gaussian integrals to a VQE-ready qubit
//! Hamiltonian, entirely from first principles.
//!
//! ```bash
//! cargo run --release --example h2_dissociation
//! ```

use qismet_optim::{GainSchedule, Spsa};
use qismet_qnoise::{StaticNoiseModel, TransientTrace};
use qismet_vqa::{
    run_tuning, Ansatz, AnsatzKind, Entanglement, NoisyObjective, NoisyObjectiveConfig,
    TuningScheme,
};

/// Gains scaled to the H2 objective (hartree-scale landscape, ~10x smaller
/// than the TFIM apps).
fn h2_gains() -> GainSchedule {
    GainSchedule {
        a: 0.05,
        c: 0.1,
        alpha: 0.602,
        gamma: 0.101,
        stability: 20.0,
    }
}
fn main() {
    // Exact curve: STO-3G integrals -> RHF -> FCI at each geometry.
    println!("H2 / STO-3G dissociation curve (energies in hartree):\n");
    println!("  bond(A)   RHF        FCI        correlation");
    let bonds = qismet_chem::fig18_bond_lengths();
    let curve = qismet_chem::dissociation_curve(&bonds).expect("chemistry pipeline");
    for p in &curve {
        println!(
            "  {:.3}    {:+.5}   {:+.5}   {:+.5}",
            p.bond_angstrom,
            p.hf_energy,
            p.fci_energy,
            p.fci_energy - p.hf_energy
        );
    }
    let (imin, best) = curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.fci_energy.partial_cmp(&b.1.fci_energy).unwrap())
        .expect("non-empty curve");
    println!(
        "\nequilibrium near {:.3} A with E = {:+.5} Ha (literature: 0.735 A, -1.1373 Ha)",
        curve[imin].bond_angstrom, best.fci_energy
    );

    // One VQE run at equilibrium on the 4-qubit Jordan-Wigner Hamiltonian.
    let problem = qismet_chem::H2Problem::at_bond_length(0.735).expect("H2 assembly");
    let ansatz = Ansatz::with_preparation(
        AnsatzKind::EfficientSu2,
        4,
        2,
        Entanglement::Linear,
        &[0, 1],
    );
    let theta0 = ansatz.initial_params(7);
    let iterations = 600;
    let mut objective = NoisyObjective::new(
        ansatz.clone(),
        problem.hamiltonian.clone(),
        NoisyObjectiveConfig {
            static_model: StaticNoiseModel::noiseless(4),
            trace: TransientTrace::zeros(iterations * 4 + 8),
            magnitude_ref: problem.fci.energy.abs(),
            shot_sigma: 0.002,
            within_job_spread: 0.2,
            seed: 11,
        },
    );
    let mut spsa = Spsa::new(theta0.len(), h2_gains(), 3);
    let rec = run_tuning(
        &mut spsa,
        &mut objective,
        theta0,
        iterations,
        TuningScheme::Baseline,
    );
    println!(
        "\nVQE (noise-free, {iterations} iterations): E = {:+.5} Ha vs FCI {:+.5} Ha (gap {:+.2} mHa)",
        rec.final_energy(30),
        problem.fci.energy,
        (rec.final_energy(30) - problem.fci.energy) * 1e3
    );
}

//! Tune QISMET's two knobs (Section 8.1): the error threshold (via target
//! skip rate) and the retry budget, on a moderately noisy application.
//!
//! ```bash
//! cargo run --release --example threshold_tuning
//! ```

use qismet::{run_qismet_budgeted, QismetConfig, SkipTarget};
use qismet_optim::{GainSchedule, Spsa};
use qismet_vqa::{run_tuning, AppSpec, TuningScheme};

fn main() {
    let budget = 500; // quantum jobs
    let spec = AppSpec::by_id(4).expect("App4");
    println!("App4 (SU2 reps=4, Toronto profile), job budget {budget}\n");

    // Baseline reference.
    let mut app = spec.build(budget * 7 + 16, None, 123);
    let mut spsa = Spsa::new(app.theta0.len(), GainSchedule::vqa_paper(), 5);
    let base = run_tuning(
        &mut spsa,
        &mut app.objective,
        app.theta0.clone(),
        budget,
        TuningScheme::Baseline,
    );
    println!(
        "baseline                     : {:+.4}",
        base.final_energy(25)
    );

    for (label, target) in [
        ("conservative (skip <=1%) ", SkipTarget::Conservative),
        ("best         (skip <=10%)", SkipTarget::Best),
        ("aggressive   (skip <=25%)", SkipTarget::Aggressive),
        ("custom       (skip <=5%) ", SkipTarget::Custom(0.05)),
    ] {
        let mut app = spec.build(budget * 7 + 16, None, 123);
        let mut spsa = Spsa::new(app.theta0.len(), GainSchedule::vqa_paper(), 5);
        let cfg = QismetConfig {
            skip_target: target,
            ..QismetConfig::paper_default()
        };
        let rec = run_qismet_budgeted(
            &mut spsa,
            &mut app.objective,
            app.theta0.clone(),
            budget,
            budget + 1,
            cfg,
        );
        println!(
            "QISMET {label}: {:+.4}  (skips {:>3}, forced accepts {}, {} updates)",
            rec.record.final_energy(25.min(rec.record.measured.len())),
            rec.skips,
            rec.forced_accepts,
            rec.record.measured.len(),
        );
    }
    println!("\nthe 90p 'best' setting is the paper's recommended trade-off (Fig. 19).");
}

//! Quickstart: run a transient-noisy 6-qubit TFIM VQE with and without
//! QISMET and compare the outcome.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use qismet::{run_qismet_budgeted, QismetConfig};
use qismet_optim::{GainSchedule, Spsa};
use qismet_vqa::{improvement_percent, run_tuning, AppSpec, TuningScheme};

fn main() {
    let iterations = 400;
    // App2 of the paper's Table 1: 6-qubit TFIM, RealAmplitudes ansatz with
    // 4 repetitions, noise modeled after the Guadalupe machine.
    let spec = AppSpec::by_id(2).expect("App2 is defined");
    println!(
        "Application: {} | machine profile: {} | transient magnitude: {:.0}%",
        spec.name(),
        spec.machine,
        spec.machine.native_transient_magnitude() * 100.0
    );

    // --- Baseline: traditional VQA, every evaluation its own job. ---
    let mut app = spec.build(iterations * 7 + 16, None, 42);
    println!(
        "ansatz: {} params | exact ground energy: {:.4} | static attenuation: {:.3}",
        app.theta0.len(),
        app.exact_ground,
        app.objective.attenuation()
    );
    let mut spsa = Spsa::new(app.theta0.len(), GainSchedule::vqa_paper(), 1);
    let baseline = run_tuning(
        &mut spsa,
        &mut app.objective,
        app.theta0.clone(),
        iterations,
        TuningScheme::Baseline,
    );

    // --- QISMET: co-scheduled jobs, transient estimation, skip/retry. ---
    let mut app = spec.build(iterations * 7 + 16, None, 42);
    let mut spsa = Spsa::new(app.theta0.len(), GainSchedule::vqa_paper(), 1);
    let qismet = run_qismet_budgeted(
        &mut spsa,
        &mut app.objective,
        app.theta0.clone(),
        iterations,
        iterations + 1,
        QismetConfig::paper_default(),
    );

    let window = 20;
    let e_base = baseline.final_energy(window);
    let e_qis = qismet.record.final_energy(window);
    println!("\nafter {iterations} quantum-job budget units:");
    println!("  baseline final expectation: {e_base:+.4}");
    println!(
        "  QISMET   final expectation: {e_qis:+.4}  (skipped {} transient-corrupted jobs)",
        qismet.skips
    );
    println!(
        "  improvement: {:.0}% (paper band: 30-200%)",
        improvement_percent(e_qis, e_base)
    );
}

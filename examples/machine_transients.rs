//! Explore the device-level noise substrate: TLS-driven T1 fluctuation
//! traces, their impact on circuit fidelity, and the iteration-level
//! transient traces that feed the VQA simulator.
//!
//! ```bash
//! cargo run --release --example machine_transients
//! ```

use qismet_mathkit::{mean, min, percentile, rng_from_seed};
use qismet_qnoise::{fig4_circuits, CircuitFidelityModel, Machine};

fn main() {
    // 1. T1(t) over 24 hours on two differently-tempered machines.
    for machine in [Machine::Casablanca, Machine::Cairo] {
        let bank = machine.tls_bank();
        let mut rng = rng_from_seed(machine.seed_stream());
        let trace = bank.sample_t1_trace(&mut rng, 24.0, 0.25);
        println!(
            "{:<11} base T1 {:>5.1} us | 24h mean {:>5.1} us | min {:>5.1} us | p5 {:>5.1} us",
            machine.name(),
            bank.base_t1_us(),
            mean(&trace),
            min(&trace),
            percentile(&trace, 5.0),
        );
    }

    // 2. What a T1 dip does to a deep circuit's fidelity.
    let model =
        CircuitFidelityModel::new(Machine::Cairo, fig4_circuits::deep_8q()).expect("bound circuit");
    let mut rng = rng_from_seed(99);
    let healthy = model.fidelity_at(&[85.0; 8], 4096, &mut rng);
    let dipped = model.fidelity_at(
        &[85.0, 85.0, 4.0, 85.0, 85.0, 85.0, 85.0, 85.0],
        4096,
        &mut rng,
    );
    println!(
        "\n8q/50CX circuit on Cairo: fidelity {:.3} (healthy) -> {:.3} (one qubit's T1 dips to 4 us)",
        healthy, dipped
    );

    // 3. Iteration-level transient traces: what the VQA tuner experiences.
    println!("\nper-job transient traces (fraction of objective magnitude):");
    for machine in [Machine::Sydney, Machine::Jakarta] {
        let mag = machine.native_transient_magnitude();
        let trace = machine
            .transient_model(mag)
            .generate(&mut rng_from_seed(7), 2000);
        println!(
            "{:<9} magnitude {:.2} | p50 |v| {:.3} | p99 |v| {:.3} | slots beyond 90p threshold: {:.1}%",
            machine.name(),
            mag,
            trace.magnitude_percentile(50.0),
            trace.magnitude_percentile(99.0),
            trace.exceedance_fraction(trace.magnitude_percentile(90.0)) * 100.0,
        );
    }
    println!("\nJakarta's heavy tail is what QISMET's 90p threshold is built to skip.");
}

//! Figure 10: VQA on the simulator with the transient-noise model injected
//! at magnitudes 0 / 2.5 / 12.5 / 20 / 25 / 50 % of the ideal objective
//! magnitude, 2000 SPSA iterations.
//!
//! Paper shape: accuracy and convergence degrade monotonically as the
//! transient magnitude grows; 2.5% is near-indistinguishable from
//! transient-free while 50% is crippled.
//!
//! As an extension, the same sweep is also run under QISMET, showing how
//! much of the degradation iteration-skipping claws back at each magnitude.

use qismet_bench::{
    downsample, f4, final_window, print_table, scaled, write_csv, Campaign, ScenarioSpec, Scheme,
    SweepExecutor,
};
use qismet_vqa::AppSpec;

fn main() {
    let iterations = scaled(2000);
    let seed = 0xf10;
    // A Guadalupe-trace app (App2's machine) mirrors the paper's setup.
    let spec = AppSpec::by_id(2).expect("App2 exists");
    let magnitudes = [0.0, 0.025, 0.125, 0.20, 0.25, 0.50];

    // Declarative sweep: magnitude x {Baseline, QISMET}, one fixed seed so
    // every magnitude sees the same optimizer stream.
    let mut campaign = Campaign::new("fig10", seed);
    for &mag in &magnitudes {
        for scheme in [Scheme::Baseline, Scheme::Qismet] {
            campaign.push(
                ScenarioSpec::new(spec.clone(), scheme, iterations)
                    .with_magnitude(mag)
                    .seeded(seed),
            );
        }
    }

    println!(
        "Fig.10 | transient magnitude sweep on App2, SPSA, {iterations} iterations, \
         final window {}",
        final_window(iterations)
    );

    let report = SweepExecutor::new().run(&campaign);

    let mut rows = Vec::new();
    let mut series_rows = Vec::new();
    for (mi, &mag) in magnitudes.iter().enumerate() {
        let base = report.single(2 * mi);
        let qis = report.single(2 * mi + 1);
        rows.push(vec![
            format!("{:.1}%", mag * 100.0),
            f4(base.final_energy),
            f4(qis.final_energy),
            qis.skips.to_string(),
        ]);
        for (i, v) in downsample(&base.series, 100) {
            series_rows.push(vec![format!("{:.1}%", mag * 100.0), i.to_string(), f4(v)]);
        }
    }
    print_table(
        "Fig.10: final VQE expectation vs transient magnitude",
        &[
            "magnitude",
            "baseline_final",
            "qismet_final (ext)",
            "qismet_skips",
        ],
        &rows,
    );
    write_csv(
        "fig10_summary.csv",
        &[
            "magnitude",
            "baseline_final",
            "qismet_final",
            "qismet_skips",
        ],
        &rows,
    );
    write_csv(
        "fig10_series.csv",
        &["magnitude", "iteration", "energy"],
        &series_rows,
    );

    // Shape check: baseline final energies should worsen monotonically with
    // magnitude (allowing small non-monotonic wiggle at adjacent points).
    let finals: Vec<f64> = rows
        .iter()
        .map(|r| r[1].parse::<f64>().expect("numeric"))
        .collect();
    let ok = finals[0] < finals[5] && finals[1] < finals[5] && finals[0] <= finals[1] + 0.3;
    println!(
        "[shape] degradation grows with magnitude (0% best, 50% worst): {}",
        if ok { "PASS" } else { "MISS" }
    );
}

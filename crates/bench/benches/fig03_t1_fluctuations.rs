//! Figure 3: transient fluctuations in T1 times observed over 65 hours.
//!
//! Paper shape: T1 hovers near its baseline most of the time with occasional
//! deep dips (the circled "potential transient errors") — rare events from
//! TLS defects drifting into resonance.

use qismet_bench::{f2, print_table, write_csv, SweepExecutor};
use qismet_mathkit::{mean, min, percentile, rng_from_seed};
use qismet_qnoise::Machine;

fn main() {
    let hours = 65.0;
    let dt = 0.1;
    let machine = Machine::Guadalupe;
    let bank = machine.tls_bank();

    // One grid point (trace generation), routed through the engine so
    // larger multi-machine trace campaigns are a one-line change.
    let specs = [(machine, 0xf03u64)];
    let traces = SweepExecutor::new().run_specs(&specs, |&(m, seed)| {
        m.tls_bank()
            .sample_t1_trace(&mut rng_from_seed(seed), hours, dt)
    });
    let trace = &traces[0];

    // Print a coarse series (one sample per ~2 hours) plus dip markers.
    let mut rows = Vec::new();
    let stride = (2.0 / dt) as usize;
    for (i, &t1) in trace.iter().enumerate() {
        if i % stride == 0 {
            rows.push(vec![format!("{:.1}", i as f64 * dt), f2(t1)]);
        }
    }
    print_table(
        &format!("Fig.3: T1(t) over {hours} hours ({} profile)", machine),
        &["hour", "T1_us"],
        &rows,
    );

    let full: Vec<Vec<String>> = trace
        .iter()
        .enumerate()
        .map(|(i, &t1)| vec![format!("{:.2}", i as f64 * dt), format!("{t1:.3}")])
        .collect();
    write_csv("fig03_t1_trace.csv", &["hour", "T1_us"], &full);

    let base = bank.base_t1_us();
    let m = mean(trace);
    let lo = min(trace);
    let dip_threshold = 0.5 * base;
    let dips = trace.iter().filter(|&&t| t < dip_threshold).count();
    let dip_frac = dips as f64 / trace.len() as f64;
    println!("\nbase T1 = {base:.1} us | mean = {m:.1} us | min = {lo:.1} us");
    println!(
        "samples below 50% of base: {dips} ({:.1}% of {} samples)",
        dip_frac * 100.0,
        trace.len()
    );
    println!(
        "p5/p50/p95 = {:.1}/{:.1}/{:.1} us",
        percentile(trace, 5.0),
        percentile(trace, 50.0),
        percentile(trace, 95.0)
    );

    // Shape checks: dips exist but are the exception.
    let has_dips = lo < dip_threshold;
    let rare = dip_frac < 0.3;
    let mostly_healthy = m > 0.6 * base;
    println!(
        "[shape] deep dips exist: {} | dips are the exception: {} | mean near base: {}",
        if has_dips { "PASS" } else { "MISS" },
        if rare { "PASS" } else { "MISS" },
        if mostly_healthy { "PASS" } else { "MISS" }
    );
}

//! Figure 14: simulating VQA with transient errors for App2 using the SPSA
//! tuner over 2000 iterations — QISMET vs Baseline, Blocking, Resampling and
//! 2nd-order SPSA.
//!
//! Paper shape to reproduce: QISMET best (~65% better than baseline);
//! Blocking and Resampling some improvement; 2nd-order *worse* than the
//! baseline.

use qismet_bench::{
    downsample, f2, f4, final_window, print_table, scaled, write_csv, Campaign, RunRecord,
    ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_vqa::{relative_expectation, AppSpec};

fn main() {
    let iterations = scaled(2000);
    let seed = 0xf14;
    let spec = AppSpec::by_id(2).expect("App2 exists");
    let schemes = [
        Scheme::Baseline,
        Scheme::Qismet,
        Scheme::Blocking,
        Scheme::Resampling,
        Scheme::SecondOrder,
    ];

    let mut campaign = Campaign::new("fig14", seed);
    for &s in &schemes {
        campaign.push(ScenarioSpec::new(spec.clone(), s, iterations).seeded(seed));
    }

    println!(
        "Fig.14 | App2 (RA reps=4, Guadalupe trace), SPSA, {iterations} iterations, \
         final window {}",
        final_window(iterations)
    );

    let report = SweepExecutor::new().run(&campaign);
    let outcomes: Vec<&RunRecord> = report.records.iter().collect();
    let baseline_final = outcomes[0].final_energy;

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.scheme.clone(),
                f4(o.final_energy),
                f2(relative_expectation(o.final_energy, baseline_final)),
                o.jobs.to_string(),
                o.evals.to_string(),
                o.skips.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig.14: App2 final VQE expectation by scheme",
        &[
            "scheme",
            "final_energy",
            "rel_baseline",
            "jobs",
            "evals",
            "skips",
        ],
        &rows,
    );
    write_csv(
        "fig14_summary.csv",
        &[
            "scheme",
            "final_energy",
            "rel_baseline",
            "jobs",
            "evals",
            "skips",
        ],
        &rows,
    );

    // Convergence series (downsampled) for plotting.
    let mut series_rows = Vec::new();
    for o in &outcomes {
        for (i, v) in downsample(&o.series, 100) {
            series_rows.push(vec![o.scheme.clone(), i.to_string(), f4(v)]);
        }
    }
    write_csv(
        "fig14_series.csv",
        &["scheme", "iteration", "energy"],
        &series_rows,
    );

    // Shape assertions (soft): report pass/fail without aborting the bench.
    let get = |s: Scheme| {
        outcomes
            .iter()
            .find(|o| o.scheme == s.name())
            .expect("scheme present")
            .final_energy
    };
    let checks = [
        (
            "QISMET best overall",
            schemes[1..].iter().all(|&s| get(Scheme::Qismet) <= get(s))
                && get(Scheme::Qismet) < baseline_final,
        ),
        (
            "QISMET beats baseline",
            get(Scheme::Qismet) < baseline_final,
        ),
        (
            "2nd-order worse than baseline",
            get(Scheme::SecondOrder) >= baseline_final,
        ),
    ];
    for (name, ok) in checks {
        println!("[shape] {name}: {}", if ok { "PASS" } else { "MISS" });
    }
}

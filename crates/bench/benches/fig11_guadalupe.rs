//! Figure 11: QISMET vs baseline for a 6-qubit TFIM VQA on the Guadalupe
//! profile, ~270 iterations (the paper's 48-hour machine run).
//!
//! Paper shape: moderate transient phases hit the baseline (which partially
//! recovers from some, stagnates after others) while QISMET avoids them,
//! ending ~40% better.

use qismet_bench::{
    downsample, f4, final_window, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_qnoise::Machine;
use qismet_vqa::{improvement_percent, AppSpec};

fn main() {
    let iterations = scaled(270);
    let mut spec = AppSpec::by_id(2).expect("App2 shape");
    spec.machine = Machine::Guadalupe;

    let campaign = Campaign::new("fig11", 0xf11)
        .with(ScenarioSpec::new(spec.clone(), Scheme::Baseline, iterations).seeded(0xf11))
        .with(ScenarioSpec::new(spec, Scheme::Qismet, iterations).seeded(0xf11));
    let report = SweepExecutor::new().run(&campaign);
    let base = report.single(0);
    let qis = report.single(1);

    println!(
        "Fig.11 | Guadalupe, {iterations} iterations (window {})\n",
        final_window(iterations)
    );
    println!("  iter   baseline   qismet");
    let b = downsample(&base.series, 30);
    let q = downsample(&qis.series, 30);
    for ((i, bv), (_, qv)) in b.iter().zip(q.iter()) {
        println!("  {i:>4}   {bv:+.4}   {qv:+.4}");
    }
    let rows: Vec<Vec<String>> = base
        .series
        .iter()
        .zip(qis.series.iter())
        .enumerate()
        .map(|(i, (&bv, &qv))| vec![i.to_string(), f4(bv), f4(qv)])
        .collect();
    write_csv(
        "fig11_series.csv",
        &["iteration", "baseline", "qismet"],
        &rows,
    );

    let imp = improvement_percent(qis.final_energy, base.final_energy);
    println!(
        "\nfinal: baseline {:.4}, qismet {:.4} -> improvement {:.0}% (paper: ~40%)",
        base.final_energy, qis.final_energy, imp
    );
    println!(
        "qismet skips: {} of {} attempts",
        qis.skips,
        iterations + qis.skips
    );
    println!(
        "[shape] QISMET improves over baseline: {}",
        if imp > 5.0 { "PASS" } else { "MISS" }
    );
}

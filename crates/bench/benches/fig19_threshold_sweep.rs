//! Figure 19: sweeping the QISMET error threshold (99p conservative / 90p
//! best / 75p aggressive) on two simulated use cases with low and high
//! transient noise.
//!
//! Paper shape: conservative ~= baseline (skips too little to matter);
//! aggressive wins under high noise but *loses to the baseline* under low
//! noise (skips burn budget needlessly); the 90p best-case wins in both
//! (1.2x low, 3x high).

use qismet_bench::{
    f2, f4, print_table, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_vqa::{relative_expectation, AppSpec};

fn main() {
    let iterations = scaled(1750);
    let cases = [("low", 0.12_f64), ("high", 0.55_f64)];
    let schemes = [
        Scheme::QismetConservative,
        Scheme::Qismet,
        Scheme::QismetAggressive,
    ];
    let seed = 0xf19;
    let spec = AppSpec::by_id(2).expect("App2");

    // Grid: noise case x (baseline + threshold variants), one shared seed.
    let mut campaign = Campaign::new("fig19", seed);
    for (_, mag) in cases {
        campaign.push(
            ScenarioSpec::new(spec.clone(), Scheme::Baseline, iterations)
                .with_magnitude(mag)
                .seeded(seed),
        );
        for &scheme in &schemes {
            campaign.push(
                ScenarioSpec::new(spec.clone(), scheme, iterations)
                    .with_magnitude(mag)
                    .seeded(seed),
            );
        }
    }
    let report = SweepExecutor::new().run(&campaign);

    let width = 1 + schemes.len();
    let mut all_rows = Vec::new();
    let mut rels = std::collections::HashMap::new();
    for (ci, (case, _)) in cases.iter().enumerate() {
        let base = report.single(ci * width);
        all_rows.push(vec![
            case.to_string(),
            "Baseline".to_string(),
            f4(base.final_energy),
            "1.00".to_string(),
            "0".to_string(),
        ]);
        for (si, &scheme) in schemes.iter().enumerate() {
            let out = report.single(ci * width + 1 + si);
            let rel = relative_expectation(out.final_energy, base.final_energy);
            rels.insert((*case, scheme.name()), rel);
            all_rows.push(vec![
                case.to_string(),
                scheme.name(),
                f4(out.final_energy),
                f2(rel),
                out.skips.to_string(),
            ]);
        }
        println!("... {case}-noise case done");
    }
    print_table(
        "Fig.19: QISMET threshold sweep under low/high transient noise",
        &["case", "scheme", "final_energy", "rel_baseline", "skips"],
        &all_rows,
    );
    write_csv(
        "fig19.csv",
        &["case", "scheme", "final_energy", "rel_baseline", "skips"],
        &all_rows,
    );

    let get = |case: &str, scheme: Scheme| rels[&(case, scheme.name())];
    let checks = [
        (
            "best (90p) helps under high noise",
            get("high", Scheme::Qismet) > 1.05,
        ),
        (
            "best (90p) >= conservative under high noise",
            get("high", Scheme::Qismet) >= get("high", Scheme::QismetConservative) - 0.05,
        ),
        (
            "aggressive <= best under low noise",
            get("low", Scheme::QismetAggressive) <= get("low", Scheme::Qismet) + 0.05,
        ),
        (
            "conservative ~= baseline under low noise",
            (get("low", Scheme::QismetConservative) - 1.0).abs() < 0.25,
        ),
    ];
    for (name, ok) in checks {
        println!("[shape] {name}: {}", if ok { "PASS" } else { "MISS" });
    }
}

//! Figure 13: QISMET benefit across six machines (Guadalupe, Toronto,
//! Sydney, Casablanca, Jakarta, Mumbai), each run for the iteration count
//! machine availability allowed (200-450 in the paper).
//!
//! Paper shape: QISMET improves the measured VQE expectation on every
//! machine, 1.27x-1.51x, geomean ~1.39x.

use qismet_bench::{
    f2, f4, print_table, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_qnoise::Machine;
use qismet_vqa::{relative_expectation, AppSpec};

fn main() {
    // Per-machine iteration counts mirroring the paper's bars.
    let iters: [(Machine, usize); 6] = [
        (Machine::Guadalupe, 270),
        (Machine::Toronto, 450),
        (Machine::Sydney, 350),
        (Machine::Casablanca, 220),
        (Machine::Jakarta, 320),
        (Machine::Mumbai, 330),
    ];
    // Three trials per machine (the VQE basin lottery is large at 200-450
    // iterations); report the mean final energies. Seeds follow the fixed
    // per-machine convention so results match the historical harness.
    let mut campaign = Campaign::new("fig13", 0xf13);
    for (machine, its) in iters {
        let mut spec = AppSpec::by_id(2).expect("App2 shape");
        spec.machine = machine;
        for scheme in [Scheme::Baseline, Scheme::Qismet] {
            campaign.push(
                ScenarioSpec::new(spec.clone(), scheme, scaled(its))
                    .seeded(0xf13 + machine.seed_stream())
                    .with_trials(3),
            );
        }
    }
    let report = SweepExecutor::new().run(&campaign);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (mi, (machine, its)) in iters.iter().enumerate() {
        let iterations = scaled(*its);
        let base_mean = report.mean_final(2 * mi);
        let qis_mean = report.mean_final(2 * mi + 1);
        let skips = report.total_skips(2 * mi + 1);
        let rel = relative_expectation(qis_mean, base_mean);
        ratios.push(rel);
        rows.push(vec![
            machine.name().to_string(),
            iterations.to_string(),
            f4(base_mean),
            f4(qis_mean),
            f2(rel),
            (skips / 3).to_string(),
        ]);
    }
    let geo = qismet_mathkit::geomean(&ratios);
    rows.push(vec![
        "Geomean".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f2(geo),
        "-".into(),
    ]);
    print_table(
        "Fig.13: QISMET vs baseline across machines",
        &[
            "machine",
            "iters",
            "baseline",
            "qismet",
            "rel_baseline",
            "skips",
        ],
        &rows,
    );
    write_csv(
        "fig13.csv",
        &[
            "machine",
            "iters",
            "baseline",
            "qismet",
            "rel_baseline",
            "skips",
        ],
        &rows,
    );
    println!("\ngeomean improvement: {geo:.2}x (paper: ~1.39x, range 1.27-1.51)");
    let all_improve = ratios.iter().all(|&r| r > 1.0);
    println!(
        "[shape] QISMET improves on every machine: {}",
        if all_improve { "PASS" } else { "MISS" }
    );
    println!(
        "[shape] geomean in plausible band (1.1-3x): {}",
        if geo > 1.1 && geo < 3.0 {
            "PASS"
        } else {
            "MISS"
        }
    );
}

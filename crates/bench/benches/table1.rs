//! Table 1: the TFIM VQA applications used for simulation, with the derived
//! properties of each instance (parameters, CX depth, static attenuation).

use qismet_bench::{f4, print_table, write_csv, SweepExecutor};
use qismet_vqa::AppSpec;

fn main() {
    // One grid point per Table 1 app, fanned through the engine.
    let apps = AppSpec::table1();
    let rows = SweepExecutor::new().run_specs(&apps, |spec| {
        let app = spec.build(8, None, 42);
        let circuit = app.ansatz.circuit();
        vec![
            spec.name(),
            spec.n_qubits.to_string(),
            spec.ansatz.label().to_string(),
            spec.reps.to_string(),
            format!("{} (v{})", spec.machine.name(), spec.trial),
            app.ansatz.n_params().to_string(),
            circuit.cx_count().to_string(),
            circuit.depth().to_string(),
            f4(app.objective.attenuation()),
            f4(app.exact_ground),
        ]
    });
    print_table(
        "Table 1: TFIM VQA applications for simulation",
        &[
            "app",
            "qubits",
            "ansatz",
            "reps",
            "machine",
            "params",
            "cx",
            "depth",
            "attenuation",
            "exact_E0",
        ],
        &rows,
    );
    write_csv(
        "table1.csv",
        &[
            "app",
            "qubits",
            "ansatz",
            "reps",
            "machine",
            "params",
            "cx",
            "depth",
            "attenuation",
            "exact_E0",
        ],
        &rows,
    );
    // Shape: deeper apps must have lower attenuation (paper Section 3.2).
    let att: Vec<f64> = rows.iter().map(|r| r[8].parse().unwrap()).collect();
    let ok = att[0] > att[4] && att[1] > att[4];
    println!(
        "[shape] deeper circuits attenuate more (App5 reps=8 lowest among its machine class): {}",
        if ok { "PASS" } else { "MISS" }
    );
}

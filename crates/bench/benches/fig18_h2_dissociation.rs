//! Figure 18: multi-VQA potential-energy estimation of the H2 molecule over
//! 10 bond lengths (0.4-2.0 angstrom), transient noise only (no static
//! component).
//!
//! Paper shape: QISMET's curve hugs the noise-free dissociation curve while
//! the baseline deviates upward, increasingly at longer bond lengths where
//! the quantum (correlation) part of the energy dominates.
//!
//! The bond-length sweep is a custom (chemistry) workload, so it rides the
//! campaign engine's generic executor: each bond length is one independent
//! spec, fanned across workers under the `parallel` feature.

use qismet::{run_qismet_budgeted, QismetConfig};
use qismet_bench::{f4, print_table, scaled, write_csv, SweepExecutor};
use qismet_optim::{GainSchedule, Spsa};
use qismet_qnoise::{Machine, StaticNoiseModel};
use qismet_vqa::{
    run_tuning, Ansatz, AnsatzKind, Entanglement, NoisyObjective, NoisyObjectiveConfig,
    TuningScheme,
};

/// Gains scaled to the H2 objective (hartree-scale landscape, ~10x smaller
/// than the TFIM apps).
fn h2_gains() -> GainSchedule {
    GainSchedule {
        a: 0.12,
        c: 0.1,
        alpha: 0.602,
        gamma: 0.101,
        stability: 20.0,
    }
}

/// Result of one bond-length point (both schemes).
struct BondOutcome {
    bond: f64,
    row: Vec<String>,
    base_dev: f64,
    qis_dev: f64,
}

fn run_bond(k: usize, r: f64, iterations: usize, window: usize) -> BondOutcome {
    let problem = qismet_chem::H2Problem::at_bond_length(r).expect("H2 assembly");
    let exact = problem.fci.energy;
    let h = problem.hamiltonian.clone();
    // Hartree-Fock start: occupy qubits 0 and 1 (1-alpha, 1-beta).
    let ansatz = Ansatz::with_preparation(
        AnsatzKind::EfficientSu2,
        4,
        2,
        Entanglement::Linear,
        &[0, 1],
    );
    let theta0 = ansatz.initial_params(0xf18 + k as u64);
    let magnitude = 0.45;

    let make_obj = |seed: u64| {
        let trace = Machine::Sydney.transient_model(magnitude).generate(
            &mut qismet_mathkit::rng_from_seed(seed),
            iterations * 7 + 16,
        );
        NoisyObjective::new(
            ansatz.clone(),
            h.clone(),
            NoisyObjectiveConfig {
                // Transient-only: no static noise component (paper
                // setup for this experiment).
                static_model: StaticNoiseModel::noiseless(4),
                trace,
                magnitude_ref: exact.abs(),
                shot_sigma: 0.005,
                within_job_spread: 0.2,
                seed: seed + 1,
            },
        )
    };

    // Baseline.
    let mut obj_b = make_obj(0x18_00 + k as u64);
    let mut spsa_b = Spsa::new(theta0.len(), h2_gains(), 3);
    let brec = run_tuning(
        &mut spsa_b,
        &mut obj_b,
        theta0.clone(),
        iterations,
        TuningScheme::Baseline,
    );
    // QISMET.
    let mut obj_q = make_obj(0x18_00 + k as u64);
    let mut spsa_q = Spsa::new(theta0.len(), h2_gains(), 3);
    let qrec = run_qismet_budgeted(
        &mut spsa_q,
        &mut obj_q,
        theta0,
        iterations,
        iterations + 1,
        QismetConfig::paper_default(),
    );

    let b = brec.final_energy(window);
    let q = qrec
        .record
        .final_energy(window.min(qrec.record.measured.len()));
    BondOutcome {
        bond: r,
        row: vec![
            format!("{r:.3}"),
            f4(exact),
            f4(q),
            f4(b),
            f4(problem.scf.energy),
        ],
        base_dev: (b - exact).abs(),
        qis_dev: (q - exact).abs(),
    }
}

fn main() {
    let iterations = scaled(700);
    let bonds = qismet_chem::fig18_bond_lengths();
    let window = qismet_bench::final_window(iterations);

    let specs: Vec<(usize, f64)> = bonds.iter().copied().enumerate().collect();
    let outcomes =
        SweepExecutor::new().run_specs(&specs, |&(k, r)| run_bond(k, r, iterations, window));

    let mut rows = Vec::new();
    let mut base_dev = Vec::new();
    let mut qis_dev = Vec::new();
    for out in &outcomes {
        base_dev.push(out.base_dev);
        qis_dev.push(out.qis_dev);
        rows.push(out.row.clone());
        println!("... bond {:.3} A done", out.bond);
    }
    print_table(
        "Fig.18: H2 potential energy (hartree) vs bond length",
        &["bond_A", "noise-free(FCI)", "QISMET", "Baseline", "RHF"],
        &rows,
    );
    write_csv(
        "fig18.csv",
        &["bond_A", "fci", "qismet", "baseline", "rhf"],
        &rows,
    );

    let mean_b = qismet_mathkit::mean(&base_dev);
    let mean_q = qismet_mathkit::mean(&qis_dev);
    println!("\nmean |deviation from noise-free|: baseline {mean_b:.4} Ha, QISMET {mean_q:.4} Ha");
    let long_b = qismet_mathkit::mean(&base_dev[5..]);
    let short_b = qismet_mathkit::mean(&base_dev[..5]);
    let checks = [
        (
            "QISMET tracks noise-free better than baseline",
            mean_q < mean_b,
        ),
        (
            "QISMET within chemical-plot accuracy (<60 mHa)",
            mean_q < 0.06,
        ),
        (
            // Weak form: with only 10 geometries and rare bursts this is a
            // noisy statistic; require the long-bond half not to be cleaner.
            "baseline deviation does not shrink at long bond lengths",
            long_b > 0.5 * short_b,
        ),
    ];
    for (name, ok) in checks {
        println!("[shape] {name}: {}", if ok { "PASS" } else { "MISS" });
    }
}

//! Figure 15: the alternative "Only-Transients" skipping approach on App1,
//! thresholds from 99p (skip <1%) down to 50p (skip up to half).
//!
//! Paper shape: every threshold lands *worse than the baseline*, and higher
//! (more conservative) thresholds hurt less — blind magnitude-based skipping
//! discards constructive transients and stalls convergence.

use qismet_bench::{
    f2, f4, print_table, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_vqa::{relative_expectation, AppSpec};

fn main() {
    let iterations = scaled(2000);
    let spec = AppSpec::by_id(1).expect("App1");
    let seed = 0xf15;
    let thresholds = [99u32, 95, 90, 80, 70, 50];

    let mut campaign = Campaign::new("fig15", seed)
        .with(ScenarioSpec::new(spec.clone(), Scheme::Baseline, iterations).seeded(seed));
    for &pct in &thresholds {
        campaign.push(
            ScenarioSpec::new(spec.clone(), Scheme::OnlyTransients(pct), iterations).seeded(seed),
        );
    }
    let report = SweepExecutor::new().run(&campaign);
    let base = report.single(0);

    println!("Fig.15 | Only-Transients skipping on App1, {iterations} iterations");
    println!("(job-budgeted: skipped jobs consume the device budget)\n");

    let mut rows = vec![vec![
        "Baseline".to_string(),
        f4(base.final_energy),
        "1.00".to_string(),
        "0".to_string(),
    ]];
    let mut rels = Vec::new();
    for (ti, &pct) in thresholds.iter().enumerate() {
        let out = report.single(1 + ti);
        let rel = relative_expectation(out.final_energy, base.final_energy);
        rels.push((pct, rel));
        rows.push(vec![
            format!("{pct}p"),
            f4(out.final_energy),
            f2(rel),
            out.skips.to_string(),
        ]);
    }
    print_table(
        "Fig.15: final expectation by skip threshold",
        &["threshold", "final_energy", "rel_baseline", "skips"],
        &rows,
    );
    write_csv(
        "fig15.csv",
        &["threshold", "final_energy", "rel_baseline", "skips"],
        &rows,
    );

    // Paper shape: every threshold below baseline, conservative >= aggressive.
    let rel_of = |p: u32| rels.iter().find(|(q, _)| *q == p).unwrap().1;
    let paper_shape = rel_of(50) < 1.0 && rel_of(99) >= rel_of(50) - 0.05;
    println!(
        "[shape] paper Fig.15 ordering (all below baseline): {}",
        if paper_shape {
            "PASS"
        } else {
            "MISS (known model deviation)"
        }
    );
    if !paper_shape {
        // Documented in EXPERIMENTS.md: in this reproduction's noise model,
        // every large-|Tm| job also corrupts the SPSA gradient, so even
        // blind magnitude skipping recovers tuning quality. The paper's
        // failure mode requires constructive transients that advance VQA
        // progress, which real-device traces contain but our generative
        // model mostly does not.
        println!(
            "[note] blind skipping helps here because large transients always \
             corrupt gradients in this noise model; see EXPERIMENTS.md"
        );
    }
    // Model-consistent check that still separates QISMET from Only-Transients:
    // QISMET achieves at least comparable quality while skipping far less
    // (run the 90p comparison in fig14/fig17).
    println!(
        "[shape] skip volume grows as threshold loosens: {}",
        if rows[1][3].parse::<usize>().unwrap() < rows[6][3].parse::<usize>().unwrap() {
            "PASS"
        } else {
            "MISS"
        }
    );
}

//! Diagnostic probe (not a paper figure): multi-seed baseline-vs-QISMET
//! comparison with skip/burst alignment statistics. Used to validate the
//! noise calibration that the figure benches rely on.

use qismet::{run_qismet, QismetConfig};
use qismet_bench::{build_objective, f4, print_table, SweepExecutor};
use qismet_optim::{GainSchedule, Spsa};
use qismet_vqa::{run_tuning, AppSpec, TuningScheme};

/// One seed's baseline/QISMET comparison (unbudgeted QISMET, by design:
/// the probe studies skip/burst alignment, not device-budget accounting).
struct ProbeOutcome {
    row: Vec<String>,
    ratio: f64,
}

fn probe_seed(spec: &AppSpec, iterations: usize, seed: u64) -> ProbeOutcome {
    let master = 0x9999 + seed;
    // Baseline.
    let mut obj_b = build_objective(spec, iterations, None, master);
    let theta0 = {
        let app = spec.build(8, None, master);
        app.theta0
    };
    let mut spsa_b = Spsa::new(theta0.len(), GainSchedule::vqa_paper(), 1 + seed);
    let brec = run_tuning(
        &mut spsa_b,
        &mut obj_b,
        theta0.clone(),
        iterations,
        TuningScheme::Baseline,
    );
    // QISMET.
    let mut obj_q = build_objective(spec, iterations, None, master);
    let mut spsa_q = Spsa::new(theta0.len(), GainSchedule::vqa_paper(), 1 + seed);
    let qrec = run_qismet(
        &mut spsa_q,
        &mut obj_q,
        theta0,
        iterations,
        QismetConfig::paper_default(),
    );
    let half = iterations / 2;
    let b_mean = qismet_mathkit::mean(&brec.measured[half..]);
    let q_mean = qismet_mathkit::mean(&qrec.record.measured[half..]);
    let b_exact = qismet_mathkit::mean(&brec.exact[half..]);
    let q_exact = qismet_mathkit::mean(&qrec.record.exact[half..]);
    // How well do skips align with bursts? Check the |trace| value at
    // skipped jobs vs overall.
    ProbeOutcome {
        row: vec![
            seed.to_string(),
            f4(b_mean),
            f4(q_mean),
            f4(b_exact),
            f4(q_exact),
            qrec.skips.to_string(),
            qrec.forced_accepts.to_string(),
            format!("{:.2}", q_mean / b_mean),
        ],
        ratio: q_mean / b_mean,
    }
}

fn main() {
    let iterations = 1200;
    let spec = AppSpec::by_id(5).expect("App5 (Cairo, severe)");
    let seeds: Vec<u64> = (0..5).collect();
    let outcomes =
        SweepExecutor::new().run_specs(&seeds, |&seed| probe_seed(&spec, iterations, seed));
    let rows: Vec<Vec<String>> = outcomes.iter().map(|o| o.row.clone()).collect();
    let ratios: Vec<f64> = outcomes.iter().map(|o| o.ratio).collect();
    print_table(
        "probe: App5 (severe), mean over 2nd half, 5 seeds",
        &[
            "seed",
            "base_meas",
            "qis_meas",
            "base_exact",
            "qis_exact",
            "skips",
            "forced",
            "ratio",
        ],
        &rows,
    );
    println!(
        "geomean ratio (qismet/baseline, >1 is better): {:.3}",
        qismet_mathkit::geomean(&ratios)
    );
}

//! Figure 4: impact of transient T1 fluctuations on circuit fidelity over a
//! 45-hour period, with hourly batches of 140 circuits.
//!
//! Paper shape: the shallow 4-qubit / 6-CX circuit holds a high average
//! fidelity with a few percent variation; the deep 8-qubit / ~50-CX circuit
//! sits much lower with dramatically larger variation, and individual
//! batches show large intra-batch spread (the zoomed panel).

use qismet_bench::{f4, print_table, write_csv, SweepExecutor};
use qismet_mathkit::{max as fmax, mean, min as fmin, rng_from_seed};
use qismet_qnoise::{fig4_circuits, BatchFidelity, CircuitFidelityModel, Machine};

/// The circuit depth classes of Fig. 4.
#[derive(Clone, Copy)]
enum Depth {
    Shallow,
    Deep,
}

fn main() {
    let hours = 45;
    let batch = 140;
    let shots = 2048;
    let machine = Machine::Cairo;

    // Two independent grid points (shallow / deep), each with its own seed
    // stream, fanned through the engine.
    let specs = [(Depth::Shallow, 0xf04u64), (Depth::Deep, 0xf04 + 1)];
    let batches: Vec<Vec<BatchFidelity>> = SweepExecutor::new().run_specs(&specs, |&(d, seed)| {
        let circuit = match d {
            Depth::Shallow => fig4_circuits::shallow_4q(),
            Depth::Deep => fig4_circuits::deep_8q(),
        };
        let model = CircuitFidelityModel::new(machine, circuit).expect("bound circuit");
        model.hourly_batches(machine, hours, batch, shots, &mut rng_from_seed(seed))
    });
    let (sb, db) = (&batches[0], &batches[1]);

    let stats = |name: &str, batches: &[BatchFidelity]| {
        let means: Vec<f64> = batches.iter().map(|b| b.mean).collect();
        let avg = mean(&means);
        let var = (fmax(&means) - fmin(&means)) / avg.max(1e-9) * 100.0;
        println!(
            "{name}: average fidelity {:.1}% | hour-to-hour variation {:.1}%",
            avg * 100.0,
            var
        );
        (avg, var)
    };

    println!("Fig.4 | {machine} profile, {hours} hourly batches x {batch} circuits\n");
    let (avg_s, var_s) = stats("4q/6CX  (shallow)", sb);
    let (avg_d, var_d) = stats("8q/50CX (deep)   ", db);

    let mut rows = Vec::new();
    for (s, d) in sb.iter().zip(db.iter()) {
        rows.push(vec![
            s.hour.to_string(),
            f4(s.mean),
            f4(s.min),
            f4(s.max),
            f4(d.mean),
            f4(d.min),
            f4(d.max),
        ]);
    }
    write_csv(
        "fig04_batches.csv",
        &[
            "hour",
            "shallow_mean",
            "shallow_min",
            "shallow_max",
            "deep_mean",
            "deep_min",
            "deep_max",
        ],
        &rows,
    );

    // Zoomed panel: the per-circuit samples of the deep circuit's worst
    // batch (largest intra-batch spread).
    let worst = db
        .iter()
        .max_by(|a, b| {
            ((a.max - a.min) / a.mean.max(1e-9))
                .partial_cmp(&((b.max - b.min) / b.mean.max(1e-9)))
                .unwrap()
        })
        .expect("non-empty");
    let zoom_rows: Vec<Vec<String>> = worst
        .samples
        .iter()
        .enumerate()
        .map(|(i, &f)| vec![i.to_string(), f4(f)])
        .collect();
    write_csv("fig04_zoom.csv", &["circuit", "fidelity"], &zoom_rows);
    let intra = (worst.max - worst.min) / worst.mean.max(1e-9) * 100.0;
    println!(
        "\nzoom: hour {} intra-batch spread {:.0}% (min {:.3}, max {:.3})",
        worst.hour, intra, worst.min, worst.max
    );

    print_table(
        "Fig.4 summary",
        &["circuit", "avg_fidelity", "variation_pct"],
        &[
            vec!["4q/6CX".into(), f4(avg_s), format!("{var_s:.1}")],
            vec!["8q/50CX".into(), f4(avg_d), format!("{var_d:.1}")],
        ],
    );

    // Shape checks (paper: ~83% vs ~25% average; ~5% vs ~35% variation;
    // intra-batch spread approaching 100% for the deep circuit).
    let checks = [
        ("shallow high fidelity", avg_s > 0.7),
        ("deep much lower fidelity", avg_d < avg_s - 0.15),
        ("deep varies much more", var_d > 2.0 * var_s),
        // Our T1-attenuation model yields milder intra-batch swings than the
        // paper's real device (documented in EXPERIMENTS.md); require the
        // deep circuit's spread to be clearly nonzero and larger than the
        // shallow circuit's hour-to-hour variation.
        ("deep intra-batch spread pronounced", intra > 5.0),
    ];
    for (name, ok) in checks {
        println!("[shape] {name}: {}", if ok { "PASS" } else { "MISS" });
    }
}

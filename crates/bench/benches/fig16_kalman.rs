//! Figure 16: Kalman filtering vs QISMET vs baseline on App6, 500
//! iterations, with the (MV, T) hyper-parameter grid of the paper.
//!
//! Paper shape: good Kalman settings beat the baseline somewhat (up to
//! ~1.4x) but sit well below QISMET (~3x better than the best Kalman);
//! low-MV instances chase transients, high-MV instances saturate early, and
//! T < 1 drags the estimate toward zero.

use qismet_bench::{
    f2, f4, print_table, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_filters::KalmanFilter;
use qismet_vqa::{relative_expectation, AppSpec};

fn main() {
    let iterations = scaled(500);
    let spec = AppSpec::by_id(6).expect("App6");
    let seed = 0xf16;

    let mut campaign = Campaign::new("fig16", seed)
        .with(ScenarioSpec::new(spec.clone(), Scheme::Baseline, iterations).seeded(seed))
        .with(ScenarioSpec::new(spec.clone(), Scheme::Qismet, iterations).seeded(seed));
    for filter in KalmanFilter::fig16_grid() {
        campaign.push(ScenarioSpec::kalman(spec.clone(), filter, iterations).seeded(seed));
    }
    let report = SweepExecutor::new().run(&campaign);
    let base = report.single(0);
    let qis = report.single(1);

    let mut rows = vec![
        vec![
            "Base".to_string(),
            f4(base.final_energy),
            "1.00".to_string(),
        ],
        vec![
            "Qismet".to_string(),
            f4(qis.final_energy),
            f2(relative_expectation(qis.final_energy, base.final_energy)),
        ],
    ];
    let mut best_kalman = f64::INFINITY;
    for record in &report.records[2..] {
        best_kalman = best_kalman.min(record.final_energy);
        rows.push(vec![
            record.label.clone(),
            f4(record.final_energy),
            f2(relative_expectation(record.final_energy, base.final_energy)),
        ]);
    }
    print_table(
        "Fig.16: Kalman grid vs QISMET vs baseline (App6)",
        &["scheme", "final_energy", "rel_baseline"],
        &rows,
    );
    write_csv(
        "fig16.csv",
        &["scheme", "final_energy", "rel_baseline"],
        &rows,
    );

    let qis_vs_kal = qis.final_energy / best_kalman;
    println!(
        "\nbest Kalman {best_kalman:.4}; QISMET/bestKalman = {qis_vs_kal:.2} (paper: ~3x; >1 means QISMET better)"
    );
    let checks = [
        ("QISMET beats best Kalman", qis.final_energy < best_kalman),
        (
            "QISMET beats baseline",
            qis.final_energy < base.final_energy,
        ),
    ];
    for (name, ok) in checks {
        println!("[shape] {name}: {}", if ok { "PASS" } else { "MISS" });
    }
}

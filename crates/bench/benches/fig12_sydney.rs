//! Figure 12: QISMET vs baseline on the Sydney profile, ~350 iterations.
//!
//! Paper shape: Sydney is smooth for most of the run with one sharp
//! turbulent phase; QISMET skips through it and continues steady progress
//! (~50% improvement).

use qismet_bench::{
    downsample, f4, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_qnoise::Machine;
use qismet_vqa::{improvement_percent, AppSpec};

fn main() {
    let iterations = scaled(350);
    let mut spec = AppSpec::by_id(2).expect("App2 shape");
    spec.machine = Machine::Sydney;

    let campaign = Campaign::new("fig12", 0xf12)
        .with(ScenarioSpec::new(spec.clone(), Scheme::Baseline, iterations).seeded(0xf12))
        .with(ScenarioSpec::new(spec, Scheme::Qismet, iterations).seeded(0xf12));
    let report = SweepExecutor::new().run(&campaign);
    let base = report.single(0);
    let qis = report.single(1);

    println!("Fig.12 | Sydney, {iterations} iterations\n");
    println!("  iter   baseline   qismet");
    let b = downsample(&base.series, 30);
    let q = downsample(&qis.series, 30);
    for ((i, bv), (_, qv)) in b.iter().zip(q.iter()) {
        println!("  {i:>4}   {bv:+.4}   {qv:+.4}");
    }
    let rows: Vec<Vec<String>> = base
        .series
        .iter()
        .zip(qis.series.iter())
        .enumerate()
        .map(|(i, (&bv, &qv))| vec![i.to_string(), f4(bv), f4(qv)])
        .collect();
    write_csv(
        "fig12_series.csv",
        &["iteration", "baseline", "qismet"],
        &rows,
    );

    let imp = improvement_percent(qis.final_energy, base.final_energy);
    println!(
        "\nfinal: baseline {:.4}, qismet {:.4} -> improvement {:.0}% (paper: ~50%)",
        base.final_energy, qis.final_energy, imp
    );
    println!("qismet skips: {}", qis.skips);
    println!(
        "[shape] QISMET improves over baseline: {}",
        if imp > 5.0 { "PASS" } else { "MISS" }
    );
    // Sydney is calm: QISMET should skip less here than on turbulent
    // machines at the same servo target would imply bursts-wise.
    println!(
        "[shape] skips bounded by servo target (~10% + retries): {}",
        if qis.skips < iterations / 4 {
            "PASS"
        } else {
            "MISS"
        }
    );
}

//! Criterion performance benches for the simulation substrate: state-vector
//! gate application, density-matrix channels, sampling, energy estimation,
//! the compiled-vs-interpreted objective hot path, SPSA proposals, the
//! QISMET controller decision, and the campaign sweep engine itself.
//!
//! The `compiled_vs_interpreted` group additionally writes `BENCH_qsim.json`
//! (mean ns per objective evaluation at 4/6/8 qubits, interpreted vs
//! compiled) so successive PRs accumulate a perf trajectory; set
//! `QISMET_PERF_SMOKE=1` for the short-measurement CI variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qismet::{decide, TransientEstimate};
use qismet_bench::{Campaign, ScenarioSpec, Scheme, SweepExecutor};
use qismet_mathkit::rng_from_seed;
use qismet_optim::{GainSchedule, Proposer, Spsa};
use qismet_qsim::{
    statevector, Backend, CachedStatevectorBackend, Circuit, CompiledCircuit, CompiledObservable,
    DensityMatrix, KrausChannel, StateVector,
};
use qismet_vqa::{Ansatz, AnsatzKind, Boundary, Entanglement, Tfim};
use std::time::Instant;

fn perf_smoke() -> bool {
    std::env::var("QISMET_PERF_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [6usize, 10] {
        let ansatz = Ansatz::new(AnsatzKind::EfficientSu2, n, 4, Entanglement::Linear);
        let params: Vec<f64> = (0..ansatz.n_params()).map(|k| 0.1 * k as f64).collect();
        let bound = ansatz.bind(&params).unwrap();
        group.bench_function(format!("su2_reps4_{n}q"), |b| {
            b.iter(|| StateVector::from_circuit(&bound).unwrap())
        });
    }
    let h = Tfim::paper_6q().hamiltonian();
    let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 4, Entanglement::Linear);
    let bound = ansatz.bind(&vec![0.3; ansatz.n_params()]).unwrap();
    let sv = StateVector::from_circuit(&bound).unwrap();
    group.bench_function("tfim6_expectation", |b| b.iter(|| sv.expectation(&h)));
    let mut rng = rng_from_seed(1);
    group.bench_function("sample_8192_shots_6q", |b| {
        b.iter(|| sv.sample_counts(&mut rng, 8192))
    });
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    let circuit = ghz_circuit(6);
    group.bench_function("ghz6_unitary", |b| {
        b.iter(|| DensityMatrix::from_circuit(&circuit).unwrap())
    });
    let ch = KrausChannel::thermal_relaxation(300.0, 100_000.0, 80_000.0).unwrap();
    group.bench_function("thermal_channel_6q", |b| {
        b.iter_batched(
            || DensityMatrix::from_circuit(&circuit).unwrap(),
            |mut rho| {
                rho.apply_channel(&ch, &[3]).unwrap();
                rho
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_vqa_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqa_stack");
    let h = Tfim::paper_6q().hamiltonian();
    group.bench_function("tfim6_ground_energy_dense", |b| {
        b.iter(|| h.ground_energy().unwrap())
    });
    let mut spsa = Spsa::new(30, GainSchedule::vqa_paper(), 3);
    let theta = vec![0.2; 30];
    group.bench_function("spsa_proposal_quadratic", |b| {
        b.iter(|| {
            let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
            spsa.propose(&theta, &mut f)
        })
    });
    group.bench_function("controller_decision", |b| {
        b.iter(|| {
            let est = TransientEstimate::new(-1.0, -0.7, -0.5);
            decide(&est, 0.05)
        })
    });
    group.finish();
}

/// Mean ns per call of `f`, measured with a calibrated repetition count —
/// the numbers recorded into `BENCH_qsim.json` (the criterion group prints
/// the same comparison interactively).
fn mean_ns(mut f: impl FnMut()) -> f64 {
    let (warm_ms, budget_ms) = if perf_smoke() { (20, 80) } else { (150, 600) };
    let warm = Instant::now();
    let mut calls = 0u64;
    while warm.elapsed().as_millis() < warm_ms {
        f();
        calls += 1;
    }
    let per_call = warm.elapsed().as_secs_f64() / calls.max(1) as f64;
    let reps = ((budget_ms as f64 / 1e3) / per_call.max(1e-9)) as u64;
    let reps = reps.clamp(1, 10_000_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / reps as f64
}

/// The paper-shaped objective workload at `n` qubits: RealAmplitudes
/// (reps=4) over the critical-point TFIM.
fn objective_workload(n: usize) -> (Ansatz, qismet_qsim::PauliSum, Vec<f64>) {
    let tfim = Tfim {
        n,
        j: 1.0,
        h: 1.0,
        boundary: Boundary::Open,
    };
    let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, n, 4, Entanglement::Linear);
    let params = ansatz.initial_params_wide(17);
    (ansatz, tfim.hamiltonian(), params)
}

fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_vs_interpreted");
    let mut rows = Vec::new();
    for n in [4usize, 6, 8] {
        let (ansatz, h, params) = objective_workload(n);

        // Interpreted: the pre-compilation hot path — bind a fresh circuit,
        // dispatch gate by gate, then one full state sweep per term.
        group.bench_function(format!("interpreted_{n}q"), |b| {
            b.iter(|| {
                let bound = ansatz.bind(&params).unwrap();
                let sv = StateVector::from_circuit(&bound).unwrap();
                statevector::reference::expectation(&sv, &h)
            })
        });

        // Compiled: rebind the plan in place, reuse the scratch state, fused
        // single-sweep expectation.
        let mut plan = CompiledCircuit::compile(ansatz.circuit());
        let obs = CompiledObservable::compile(&h);
        let mut backend = CachedStatevectorBackend::new();
        group.bench_function(format!("compiled_{n}q"), |b| {
            b.iter(|| backend.evaluate_plan(&mut plan, &params, &obs).unwrap())
        });

        // Matching wall-clock means for the trajectory file.
        let interpreted_ns = mean_ns(|| {
            let bound = ansatz.bind(&params).unwrap();
            let sv = StateVector::from_circuit(&bound).unwrap();
            criterion::black_box(statevector::reference::expectation(&sv, &h));
        });
        let compiled_ns = mean_ns(|| {
            criterion::black_box(backend.evaluate_plan(&mut plan, &params, &obs).unwrap());
        });
        rows.push((n, interpreted_ns, compiled_ns));
    }
    group.finish();

    let entries: Vec<String> = rows
        .iter()
        .map(|(n, i, cns)| {
            format!(
                "    {{\"n_qubits\": {n}, \"interpreted_ns\": {i:.1}, \"compiled_ns\": {cns:.1}, \"speedup\": {:.2}}}",
                i / cns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"compiled_vs_interpreted\",\n  \"workload\": \"RealAmplitudes reps=4 ansatz over the open-boundary critical TFIM; mean ns per objective evaluation\",\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        perf_smoke(),
        entries.join(",\n")
    );
    // Default to the workspace root (cargo runs bench binaries from the
    // package directory); QISMET_BENCH_JSON overrides.
    let path = std::env::var("QISMET_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qsim.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    for (n, i, cns) in &rows {
        println!(
            "  {n}q: interpreted {i:.0} ns, compiled {cns:.0} ns ({:.2}x)",
            i / cns
        );
    }
}

fn bench_campaign_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_engine");
    let app = qismet_vqa::AppSpec::by_id(1).unwrap();
    let campaign = Campaign::new("perf", 5)
        .with(ScenarioSpec::new(app.clone(), Scheme::Baseline, 20))
        .with(ScenarioSpec::new(app.clone(), Scheme::Qismet, 20))
        .with(ScenarioSpec::new(app, Scheme::Blocking, 20).with_trials(2));
    group.bench_function("expand_4_runs", |b| b.iter(|| campaign.expand()));
    group.bench_function("sweep_4_runs_20iter", |b| {
        b.iter(|| SweepExecutor::new().run(&campaign))
    });
    group.finish();
}

fn perf_config() -> Criterion {
    let (sample, warm_ms, meas_ms) = if perf_smoke() {
        (5, 50, 150)
    } else {
        (20, 300, 1000)
    };
    Criterion::default()
        .sample_size(sample)
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .measurement_time(std::time::Duration::from_millis(meas_ms))
}

criterion_group! {
    name = benches;
    config = perf_config();
    targets = bench_statevector, bench_density, bench_vqa_stack,
        bench_compiled_vs_interpreted, bench_campaign_engine
}
criterion_main!(benches);

//! Criterion performance benches for the simulation substrate: state-vector
//! gate application, density-matrix channels, sampling, energy estimation,
//! the compiled-vs-interpreted objective hot path, SPSA proposals, the
//! QISMET controller decision, and the campaign sweep engine itself.
//!
//! The `compiled_vs_interpreted` group additionally writes `BENCH_qsim.json`
//! (mean ns per objective evaluation at 4..20 qubits: interpreted vs the
//! fused compiled kernels, plus a parallel column and a 20q threaded-apply
//! measurement under the `parallel` feature) so successive PRs accumulate a
//! perf trajectory; set `QISMET_PERF_SMOKE=1` for the short-measurement CI
//! variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qismet::{decide, TransientEstimate};
use qismet_bench::{Campaign, ScenarioSpec, Scheme, SweepExecutor};
use qismet_mathkit::rng_from_seed;
use qismet_optim::{GainSchedule, Proposer, Spsa};
use qismet_qsim::{
    statevector, Backend, CachedStatevectorBackend, Circuit, CompiledCircuit, CompiledObservable,
    DensityMatrix, KrausChannel, StateVector, MAX_LANES,
};
use qismet_vqa::{Ansatz, AnsatzKind, Boundary, Entanglement, Tfim};
use std::time::Instant;

fn perf_smoke() -> bool {
    std::env::var("QISMET_PERF_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [6usize, 10] {
        let ansatz = Ansatz::new(AnsatzKind::EfficientSu2, n, 4, Entanglement::Linear);
        let params: Vec<f64> = (0..ansatz.n_params()).map(|k| 0.1 * k as f64).collect();
        let bound = ansatz.bind(&params).unwrap();
        group.bench_function(format!("su2_reps4_{n}q"), |b| {
            b.iter(|| StateVector::from_circuit(&bound).unwrap())
        });
    }
    let h = Tfim::paper_6q().hamiltonian();
    let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 4, Entanglement::Linear);
    let bound = ansatz.bind(&vec![0.3; ansatz.n_params()]).unwrap();
    let sv = StateVector::from_circuit(&bound).unwrap();
    group.bench_function("tfim6_expectation", |b| b.iter(|| sv.expectation(&h)));
    let mut rng = rng_from_seed(1);
    group.bench_function("sample_8192_shots_6q", |b| {
        b.iter(|| sv.sample_counts(&mut rng, 8192))
    });
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    let circuit = ghz_circuit(6);
    group.bench_function("ghz6_unitary", |b| {
        b.iter(|| DensityMatrix::from_circuit(&circuit).unwrap())
    });
    let ch = KrausChannel::thermal_relaxation(300.0, 100_000.0, 80_000.0).unwrap();
    group.bench_function("thermal_channel_6q", |b| {
        b.iter_batched(
            || DensityMatrix::from_circuit(&circuit).unwrap(),
            |mut rho| {
                rho.apply_channel(&ch, &[3]).unwrap();
                rho
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_vqa_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqa_stack");
    let h = Tfim::paper_6q().hamiltonian();
    group.bench_function("tfim6_ground_energy_dense", |b| {
        b.iter(|| h.ground_energy().unwrap())
    });
    let mut spsa = Spsa::new(30, GainSchedule::vqa_paper(), 3);
    let theta = vec![0.2; 30];
    group.bench_function("spsa_proposal_quadratic", |b| {
        b.iter(|| {
            let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
            spsa.propose(&theta, &mut f)
        })
    });
    group.bench_function("controller_decision", |b| {
        b.iter(|| {
            let est = TransientEstimate::new(-1.0, -0.7, -0.5);
            decide(&est, 0.05)
        })
    });
    group.finish();
}

/// Mean ns per call of `f`, measured with a calibrated repetition count —
/// the numbers recorded into `BENCH_qsim.json` (the criterion group prints
/// the same comparison interactively).
fn mean_ns(mut f: impl FnMut()) -> f64 {
    let (warm_ms, budget_ms) = if perf_smoke() { (20, 80) } else { (150, 600) };
    let warm = Instant::now();
    let mut calls = 0u64;
    while warm.elapsed().as_millis() < warm_ms {
        f();
        calls += 1;
    }
    let per_call = warm.elapsed().as_secs_f64() / calls.max(1) as f64;
    let reps = ((budget_ms as f64 / 1e3) / per_call.max(1e-9)) as u64;
    let reps = reps.clamp(1, 10_000_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / reps as f64
}

/// The paper-shaped objective workload at `n` qubits: RealAmplitudes
/// (reps=4) over the critical-point TFIM.
fn objective_workload(n: usize) -> (Ansatz, qismet_qsim::PauliSum, Vec<f64>) {
    let tfim = Tfim {
        n,
        j: 1.0,
        h: 1.0,
        boundary: Boundary::Open,
    };
    let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, n, 4, Entanglement::Linear);
    let params = ansatz.initial_params_wide(17);
    (ansatz, tfim.hamiltonian(), params)
}

/// In-state kernel threads for the `parallel` column: the machine's core
/// count, floored at 2 so the threaded code path is exercised (and honestly
/// reported) even on single-core CI runners.
fn bench_inner_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(2, 8)
}

/// One trajectory row: objective-evaluation means at `n` qubits.
struct PerfRow {
    n: usize,
    interpreted_ns: f64,
    compiled_ns: f64,
    /// Compiled path with in-state kernel threads (`parallel` feature and
    /// `n` above the threading threshold only).
    parallel_ns: Option<f64>,
    /// Lane-batched SoA engine, mean ns **per point** at B = 8 lanes
    /// (steady-state `evaluate_plan_batch`: rebind + lockstep
    /// expectation-only sweep, divided by the lane count; states small
    /// enough for the lane-batched path only).
    batched_ns: Option<f64>,
}

/// Single-apply threaded sweep measurement (`parallel` feature only):
/// one `CompiledCircuit` sweep, sequential vs `run_threaded`, as a JSON
/// object string plus a human-readable summary line.
#[cfg(feature = "parallel")]
fn measure_threaded_apply(n: usize, threads: usize, cores: usize) -> (String, String) {
    let (ansatz, _h, params) = objective_workload(n);
    let bound = ansatz.bind(&params).unwrap();
    let plan = CompiledCircuit::compile(&bound);
    let mut sv = StateVector::new(n);
    let sequential_ns = mean_ns(|| {
        plan.run(&mut sv).unwrap();
        criterion::black_box(&sv);
    });
    let threaded_ns = mean_ns(|| {
        plan.run_threaded(&mut sv, threads).unwrap();
        criterion::black_box(&sv);
    });
    let speedup = sequential_ns / threaded_ns;
    (
        format!(
            "{{\"n_qubits\": {n}, \"threads\": {threads}, \"sequential_ns\": {sequential_ns:.1}, \"threaded_ns\": {threaded_ns:.1}, \"speedup\": {speedup:.2}}}"
        ),
        format!(
            "  threaded apply {n}q x{threads}t: sequential {sequential_ns:.0} ns, threaded {threaded_ns:.0} ns ({speedup:.2}x on {cores} core(s))"
        ),
    )
}

fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    let smoke = perf_smoke();
    let inner_threads = bench_inner_threads();
    let mut group = c.benchmark_group("compiled_vs_interpreted");
    let mut rows: Vec<PerfRow> = Vec::new();
    for n in [4usize, 6, 8, 12, 16, 20] {
        let (ansatz, h, params) = objective_workload(n);
        let heavy = n >= 12;

        // Big states get fewer criterion samples so the interactive run
        // stays bounded; the JSON means below use their own calibrated
        // budget either way.
        group.sample_size(match (heavy, smoke) {
            (false, false) => 20,
            (false, true) => 5,
            (true, false) => 5,
            (true, true) => 2,
        });

        // Interpreted: the pre-compilation hot path — bind a fresh circuit,
        // dispatch gate by gate, then one full state sweep per term. At 16q+
        // one evaluation costs whole seconds, so the smoke run leaves the
        // interactive bench to the JSON mean below.
        if !(smoke && n >= 16) {
            group.bench_function(format!("interpreted_{n}q"), |b| {
                b.iter(|| {
                    let bound = ansatz.bind(&params).unwrap();
                    let sv = StateVector::from_circuit(&bound).unwrap();
                    statevector::reference::expectation(&sv, &h)
                })
            });
        }

        // Compiled: rebind the plan in place, reuse the scratch state, and
        // run the fused superop/permutation-table kernels with the blocked
        // single-sweep expectation.
        let mut plan = CompiledCircuit::compile(ansatz.circuit());
        let obs = CompiledObservable::compile(&h);
        let mut backend = CachedStatevectorBackend::new();
        group.bench_function(format!("compiled_{n}q"), |b| {
            b.iter(|| backend.evaluate_plan(&mut plan, &params, &obs).unwrap())
        });

        // Parallel: the same compiled path with in-state kernel threads.
        // Only meaningful once the state clears the threading threshold
        // (smaller states run the sequential sweep regardless).
        let mut par_backend = CachedStatevectorBackend::with_inner_threads(inner_threads);
        if cfg!(feature = "parallel") && n >= 16 {
            group.bench_function(format!("parallel_{n}q_t{inner_threads}"), |b| {
                b.iter(|| par_backend.evaluate_plan(&mut plan, &params, &obs).unwrap())
            });
        }

        // Matching wall-clock means for the trajectory file.
        let interpreted_ns = mean_ns(|| {
            let bound = ansatz.bind(&params).unwrap();
            let sv = StateVector::from_circuit(&bound).unwrap();
            criterion::black_box(statevector::reference::expectation(&sv, &h));
        });
        let compiled_ns = mean_ns(|| {
            criterion::black_box(backend.evaluate_plan(&mut plan, &params, &obs).unwrap());
        });
        let parallel_ns = (cfg!(feature = "parallel") && n >= 16).then(|| {
            mean_ns(|| {
                criterion::black_box(par_backend.evaluate_plan(&mut plan, &params, &obs).unwrap());
            })
        });

        // Lane-batched SoA engine at B = 8: measure through the backend
        // seam campaigns actually hit — `evaluate_plan_batch` rebinds the
        // backend's cached lane snapshot at 8 fresh parameter points and
        // evaluates them in lockstep (expectation-only, no state
        // write-back). After the first call the batch cache is in steady
        // state, so each iteration is one rebind + one lockstep sweep.
        // Reported per point so it compares directly against `compiled_ns`
        // (which also pays a rebind per evaluation). Only states the
        // lane-batched backend path covers.
        let batched_ns = (n <= 14).then(|| {
            let batch_points: Vec<Vec<f64>> = (0..MAX_LANES)
                .map(|l| params.iter().map(|p| p + 0.01 * l as f64).collect())
                .collect();
            mean_ns(|| {
                criterion::black_box(
                    backend
                        .evaluate_plan_batch(&mut plan, &batch_points, &obs)
                        .unwrap(),
                );
            }) / MAX_LANES as f64
        });
        rows.push(PerfRow {
            n,
            interpreted_ns,
            compiled_ns,
            parallel_ns,
            batched_ns,
        });
    }
    group.finish();

    // CI perf-smoke floor: at 8 qubits the 8-lane SoA engine must beat the
    // scalar compiled path per point end to end. The floor is calibrated to
    // what the seam robustly delivers on the bench host, not to the sweep
    // speedup alone: per-point cost is rebind + sweep, the per-lane rebind
    // (trig-dominated) is the *same* scalar work on both sides, and the
    // scalar comparator already runs the f64 real-mode kernels near the
    // machine's store/FMA limit — so while the batched sweep itself runs
    // ~1.9x the scalar sweep (and 12q evaluates ~2x end to end), Amdahl
    // caps the 8q end-to-end ratio near 1.4x, measured 1.2-1.4x across
    // runs on the single-core CI host. 1.15x is the regression guard: a
    // batched kernel falling back to scalar-equivalent code drops below
    // it, noise does not.
    if smoke {
        let eight = rows.iter().find(|r| r.n == 8).expect("8q row present");
        let batched = eight.batched_ns.expect("8q is lane-batchable");
        let speedup = eight.compiled_ns / batched;
        assert!(
            speedup >= 1.15,
            "batched-over-compiled floor violated at 8q/B=8: {speedup:.2}x < 1.15x \
             (compiled {:.0} ns, batched {batched:.0} ns/point)",
            eight.compiled_ns
        );
    }

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Single-apply threaded sweep at 20q (the headline in-state parallelism
    // number; null without the `parallel` feature).
    #[cfg(feature = "parallel")]
    let (apply_json, apply_line) = measure_threaded_apply(20, inner_threads, cores);
    #[cfg(not(feature = "parallel"))]
    let (apply_json, apply_line) = ("null".to_string(), String::new());

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            let parallel = match r.parallel_ns {
                Some(p) => format!(
                    ", \"parallel_ns\": {p:.1}, \"parallel_speedup\": {:.2}",
                    r.compiled_ns / p
                ),
                None => ", \"parallel_ns\": null, \"parallel_speedup\": null".to_string(),
            };
            let batched = match r.batched_ns {
                Some(bns) => format!(
                    ", \"batched_ns\": {bns:.1}, \"batched_speedup\": {:.2}",
                    r.compiled_ns / bns
                ),
                None => ", \"batched_ns\": null, \"batched_speedup\": null".to_string(),
            };
            format!(
                "    {{\"n_qubits\": {}, \"interpreted_ns\": {:.1}, \"compiled_ns\": {:.1}, \"speedup\": {:.2}{parallel}{batched}}}",
                r.n,
                r.interpreted_ns,
                r.compiled_ns,
                r.interpreted_ns / r.compiled_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"compiled_vs_interpreted\",\n  \"workload\": \"RealAmplitudes reps=4 ansatz over the open-boundary critical TFIM; mean ns per objective evaluation. speedup = interpreted/compiled; parallel_* = compiled path with in-state kernel threads (>= 16 qubits, parallel feature); batched_* = lane-batched SoA engine per-point cost at B=8 lanes vs compiled (lane-batchable states only); threaded_apply = one CompiledCircuit sweep, run vs run_threaded\",\n  \"smoke\": {},\n  \"cores\": {cores},\n  \"inner_threads\": {inner_threads},\n  \"results\": [\n{}\n  ],\n  \"threaded_apply\": {apply_json}\n}}\n",
        smoke,
        entries.join(",\n")
    );
    // Default to the workspace root (cargo runs bench binaries from the
    // package directory); QISMET_BENCH_JSON overrides.
    let path = std::env::var("QISMET_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qsim.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    for r in &rows {
        let parallel = match r.parallel_ns {
            Some(p) => format!(
                ", parallel[{inner_threads}t] {p:.0} ns ({:.2}x)",
                r.compiled_ns / p
            ),
            None => String::new(),
        };
        let batched = match r.batched_ns {
            Some(bns) => format!(
                ", batched[B=8] {bns:.0} ns/pt ({:.2}x)",
                r.compiled_ns / bns
            ),
            None => String::new(),
        };
        println!(
            "  {}q: interpreted {:.0} ns, compiled {:.0} ns ({:.2}x){parallel}{batched}",
            r.n,
            r.interpreted_ns,
            r.compiled_ns,
            r.interpreted_ns / r.compiled_ns
        );
    }
    if !apply_line.is_empty() {
        println!("{apply_line}");
    }
}

fn bench_campaign_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_engine");
    let app = qismet_vqa::AppSpec::by_id(1).unwrap();
    let campaign = Campaign::new("perf", 5)
        .with(ScenarioSpec::new(app.clone(), Scheme::Baseline, 20))
        .with(ScenarioSpec::new(app.clone(), Scheme::Qismet, 20))
        .with(ScenarioSpec::new(app, Scheme::Blocking, 20).with_trials(2));
    group.bench_function("expand_4_runs", |b| b.iter(|| campaign.expand()));
    group.bench_function("sweep_4_runs_20iter", |b| {
        b.iter(|| SweepExecutor::new().run(&campaign))
    });
    group.finish();
}

fn perf_config() -> Criterion {
    let (sample, warm_ms, meas_ms) = if perf_smoke() {
        (5, 50, 150)
    } else {
        (20, 300, 1000)
    };
    Criterion::default()
        .sample_size(sample)
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .measurement_time(std::time::Duration::from_millis(meas_ms))
}

criterion_group! {
    name = benches;
    config = perf_config();
    targets = bench_statevector, bench_density, bench_vqa_stack,
        bench_compiled_vs_interpreted, bench_campaign_engine
}
criterion_main!(benches);

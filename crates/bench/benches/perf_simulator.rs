//! Criterion performance benches for the simulation substrate: state-vector
//! gate application, density-matrix channels, sampling, energy estimation,
//! SPSA proposals, the QISMET controller decision, and the campaign sweep
//! engine itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qismet::{decide, TransientEstimate};
use qismet_bench::{Campaign, ScenarioSpec, Scheme, SweepExecutor};
use qismet_mathkit::rng_from_seed;
use qismet_optim::{GainSchedule, Proposer, Spsa};
use qismet_qsim::{Circuit, DensityMatrix, KrausChannel, StateVector};
use qismet_vqa::{Ansatz, AnsatzKind, Entanglement, Tfim};

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [6usize, 10] {
        let ansatz = Ansatz::new(AnsatzKind::EfficientSu2, n, 4, Entanglement::Linear);
        let params: Vec<f64> = (0..ansatz.n_params()).map(|k| 0.1 * k as f64).collect();
        let bound = ansatz.bind(&params).unwrap();
        group.bench_function(format!("su2_reps4_{n}q"), |b| {
            b.iter(|| StateVector::from_circuit(&bound).unwrap())
        });
    }
    let h = Tfim::paper_6q().hamiltonian();
    let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 4, Entanglement::Linear);
    let bound = ansatz.bind(&vec![0.3; ansatz.n_params()]).unwrap();
    let sv = StateVector::from_circuit(&bound).unwrap();
    group.bench_function("tfim6_expectation", |b| b.iter(|| sv.expectation(&h)));
    let mut rng = rng_from_seed(1);
    group.bench_function("sample_8192_shots_6q", |b| {
        b.iter(|| sv.sample_counts(&mut rng, 8192))
    });
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    let circuit = ghz_circuit(6);
    group.bench_function("ghz6_unitary", |b| {
        b.iter(|| DensityMatrix::from_circuit(&circuit).unwrap())
    });
    let ch = KrausChannel::thermal_relaxation(300.0, 100_000.0, 80_000.0).unwrap();
    group.bench_function("thermal_channel_6q", |b| {
        b.iter_batched(
            || DensityMatrix::from_circuit(&circuit).unwrap(),
            |mut rho| {
                rho.apply_channel(&ch, &[3]).unwrap();
                rho
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_vqa_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqa_stack");
    let h = Tfim::paper_6q().hamiltonian();
    group.bench_function("tfim6_ground_energy_dense", |b| {
        b.iter(|| h.ground_energy().unwrap())
    });
    let mut spsa = Spsa::new(30, GainSchedule::vqa_paper(), 3);
    let theta = vec![0.2; 30];
    group.bench_function("spsa_proposal_quadratic", |b| {
        b.iter(|| {
            let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
            spsa.propose(&theta, &mut f)
        })
    });
    group.bench_function("controller_decision", |b| {
        b.iter(|| {
            let est = TransientEstimate::new(-1.0, -0.7, -0.5);
            decide(&est, 0.05)
        })
    });
    group.finish();
}

fn bench_campaign_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_engine");
    let app = qismet_vqa::AppSpec::by_id(1).unwrap();
    let campaign = Campaign::new("perf", 5)
        .with(ScenarioSpec::new(app.clone(), Scheme::Baseline, 20))
        .with(ScenarioSpec::new(app.clone(), Scheme::Qismet, 20))
        .with(ScenarioSpec::new(app, Scheme::Blocking, 20).with_trials(2));
    group.bench_function("expand_4_runs", |b| b.iter(|| campaign.expand()));
    group.bench_function("sweep_4_runs_20iter", |b| {
        b.iter(|| SweepExecutor::new().run(&campaign))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_statevector, bench_density, bench_vqa_stack, bench_campaign_engine
}
criterion_main!(benches);

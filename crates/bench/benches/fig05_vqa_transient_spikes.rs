//! Figure 5: extreme impact of transient errors on VQA tuning — a baseline
//! run on the Jakarta profile showing multiple sharp spikes, where the
//! expectation value at iteration 500 is no better than at iteration 100.

use qismet_bench::{
    downsample, f4, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_qnoise::Machine;
use qismet_vqa::{count_spikes, AppSpec};

fn main() {
    let iterations = scaled(500);
    // A Jakarta-trace app: App1's shape (SU2 reps=2) on the Jakarta machine.
    let spec = AppSpec::by_id(1).expect("App1");
    let campaign = Campaign::new("fig05", 0xf05).with(
        ScenarioSpec::new(spec, Scheme::Baseline, iterations)
            .on_machine(Machine::Jakarta)
            .seeded(0xf05),
    );
    let report = SweepExecutor::new().run(&campaign);
    let out = report.single(0);

    println!("Fig.5 | baseline VQA on Jakarta profile, {iterations} iterations\n");
    for (i, v) in downsample(&out.series, 50) {
        println!("  iter {i:>4}  E = {v:+.4}");
    }
    let rows: Vec<Vec<String>> = out
        .series
        .iter()
        .enumerate()
        .map(|(i, &v)| vec![i.to_string(), f4(v)])
        .collect();
    write_csv("fig05_series.csv", &["iteration", "energy"], &rows);

    let spikes = count_spikes(&out.series, 10, 0.8);
    let e100 =
        qismet_mathkit::mean(&out.series[90.min(out.series.len() - 1)..100.min(out.series.len())]);
    let tail = out.series.len();
    let e_end = qismet_mathkit::mean(&out.series[tail - 10..]);
    println!("\nspikes detected: {spikes}");
    println!("E(~100) = {e100:.3} vs E(end) = {e_end:.3}");

    // Shape: multiple sharp spikes; limited 100->end improvement.
    let benefit = e100 - e_end; // positive = improved
    let checks = [
        ("multiple sharp spikes", spikes >= 3),
        (
            "100th -> end benefit small (transients stall progress)",
            benefit < 0.5 * e100.abs().max(0.5),
        ),
    ];
    for (name, ok) in checks {
        println!("[shape] {name}: {}", if ok { "PASS" } else { "MISS" });
    }
}

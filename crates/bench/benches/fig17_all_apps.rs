//! Figure 17: all six Table 1 applications x {QISMET, Blocking, Resampling,
//! 2nd-order, Kalman-best}, 2000 SPSA iterations, relative to the baseline.
//!
//! Paper shape: QISMET consistently best (geomean ~2x, up to ~3x);
//! Blocking/Resampling modest and inconsistent (worse than baseline on some
//! apps); 2nd-order consistently below baseline; Kalman-best a small win.

use qismet_bench::{
    f2, print_table, scaled, write_csv, Campaign, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_vqa::{relative_expectation, AppSpec};

fn main() {
    let iterations = scaled(2000);
    let schemes = [
        Scheme::Qismet,
        Scheme::Blocking,
        Scheme::Resampling,
        Scheme::SecondOrder,
        Scheme::KalmanBest,
    ];
    let apps = AppSpec::table1();

    // Declarative grid: per app, the baseline plus every comparison scheme,
    // at the app's historical fixed seed.
    let mut campaign = Campaign::new("fig17", 0xf17);
    for spec in &apps {
        let seed = 0xf17 + spec.id as u64;
        campaign.push(ScenarioSpec::new(spec.clone(), Scheme::Baseline, iterations).seeded(seed));
        for &scheme in &schemes {
            campaign.push(ScenarioSpec::new(spec.clone(), scheme, iterations).seeded(seed));
        }
    }
    let report = SweepExecutor::new().run(&campaign);

    let width = 1 + schemes.len();
    let mut rows = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for (ai, spec) in apps.iter().enumerate() {
        let base = report.single(ai * width);
        let mut row = vec![spec.name()];
        for (si, rels) in per_scheme.iter_mut().enumerate() {
            let out = report.single(ai * width + 1 + si);
            let rel = relative_expectation(out.final_energy, base.final_energy);
            rels.push(rel);
            row.push(f2(rel));
        }
        rows.push(row);
        println!("... {} done", rows.last().unwrap()[0]);
    }
    let mut geo_row = vec!["Geomean".to_string()];
    let mut geos = Vec::new();
    for rels in &per_scheme {
        let g = qismet_mathkit::geomean(rels);
        geos.push(g);
        geo_row.push(f2(g));
    }
    rows.push(geo_row);

    let headers = [
        "app",
        "QISMET",
        "Blocking",
        "Resampling",
        "2nd-order",
        "Kalman(Best)",
    ];
    print_table("Fig.17: VQE expectation rel. baseline", &headers, &rows);
    write_csv("fig17.csv", &headers, &rows);

    println!(
        "\npaper geomeans: QISMET 1.98, Blocking 1.32, Resampling 1.25, 2nd-order 0.89, Kalman 1.07"
    );
    let qis = &per_scheme[0];
    let checks = [
        (
            "QISMET beats baseline on every app",
            qis.iter().all(|&r| r > 1.0),
        ),
        (
            "QISMET geomean highest",
            geos[1..].iter().all(|&g| geos[0] >= g),
        ),
        ("2nd-order below baseline", geos[3] < 1.0),
        (
            "QISMET geomean in 1.3-3x band",
            geos[0] > 1.3 && geos[0] < 3.2,
        ),
    ];
    for (name, ok) in checks {
        println!("[shape] {name}: {}", if ok { "PASS" } else { "MISS" });
    }
}

//! Cost breakdown for the compiled objective path at 4/8/12 qubits —
//! scalar phases (rebind/run/expectation), per-op-kind isolation, and the
//! lane-batched twin of each phase (B = 8 lanes, reported per lane next to
//! its scalar cost).
use qismet_qsim::{
    BatchStateVector, BatchedCircuit, CompiledCircuit, CompiledObservable, StateVector, MAX_LANES,
};
use qismet_vqa::{Ansatz, AnsatzKind, Boundary, Entanglement, Tfim};
use std::time::Instant;

fn mean_ns(mut f: impl FnMut()) -> f64 {
    let warm = Instant::now();
    let mut calls = 0u64;
    while warm.elapsed().as_millis() < 150 {
        f();
        calls += 1;
    }
    let per_call = warm.elapsed().as_secs_f64() / calls.max(1) as f64;
    let reps = ((0.6) / per_call.max(1e-9)) as u64;
    let reps = reps.clamp(1, 10_000_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn op_isolation(n: usize) {
    use qismet_qsim::{Circuit, Param};
    // Pure CX-ladder plan: 4 ladders of n-1 CX gates -> permutation tables.
    let mut ladders = Circuit::new(n);
    for _ in 0..4 {
        for q in 0..n - 1 {
            ladders.cx(q, q + 1);
        }
    }
    let mut plan = CompiledCircuit::compile(&ladders);
    plan.rebind(&[]).unwrap();
    let mut sv = StateVector::new(n);
    let table_ns = mean_ns(|| {
        plan.run(&mut sv).unwrap();
        std::hint::black_box(&sv);
    });
    let table_len = plan.len();

    // Pure free-1q plan: one fused segment per wire.
    let mut rys = Circuit::new(n);
    for q in 0..n {
        rys.ry(Param::Free(q), q);
    }
    let mut plan1 = CompiledCircuit::compile(&rys);
    let thetas: Vec<f64> = (0..n).map(|k| 0.1 + k as f64).collect();
    plan1.rebind(&thetas).unwrap();
    let oneq_ns = mean_ns(|| {
        plan1.run(&mut sv).unwrap();
        std::hint::black_box(&sv);
    });
    println!(
        "  [{n}q isolation] {} tables: run {table_ns:.0} ns ({:.0} ns/table); {} one-q segs: run {oneq_ns:.0} ns ({:.0} ns/seg)",
        table_len,
        table_ns / table_len.max(1) as f64,
        plan1.len(),
        oneq_ns / plan1.len().max(1) as f64
    );
}

fn main() {
    for n in [4usize, 8, 12] {
        let tfim = Tfim {
            n,
            j: 1.0,
            h: 1.0,
            boundary: Boundary::Open,
        };
        let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, n, 4, Entanglement::Linear);
        let params = ansatz.initial_params_wide(17);
        let h = tfim.hamiltonian();
        let mut plan = CompiledCircuit::compile(ansatz.circuit());
        let obs = CompiledObservable::compile(&h);
        plan.rebind(&params).unwrap();
        let mut sv = StateVector::new(n);

        let rebind_ns = mean_ns(|| {
            plan.rebind(std::hint::black_box(&params)).unwrap();
        });
        let run_ns = mean_ns(|| {
            plan.run(&mut sv).unwrap();
            std::hint::black_box(&sv);
        });
        let exp_ns = mean_ns(|| {
            std::hint::black_box(obs.expectation(&sv));
        });
        println!(
            "{n}q: plan_len={} rebind {rebind_ns:.0} ns, run {run_ns:.0} ns, expectation {exp_ns:.0} ns, total {:.0} ns",
            plan.len(),
            rebind_ns + run_ns + exp_ns
        );
        batched_breakdown(n, &mut plan, &obs, &params, rebind_ns, run_ns, exp_ns);
        op_isolation(n);
    }
}

/// The lane-batched twin of the scalar phase breakdown: bind (the batched
/// analogue of rebind), run, and expectation over B = 8 lanes, each printed
/// per lane against its scalar cost so per-op lane efficiency is visible.
fn batched_breakdown(
    n: usize,
    plan: &mut CompiledCircuit,
    obs: &CompiledObservable,
    params: &[f64],
    rebind_ns: f64,
    run_ns: f64,
    exp_ns: f64,
) {
    let b = MAX_LANES;
    let points: Vec<Vec<f64>> = (0..b)
        .map(|l| params.iter().map(|p| p + 0.01 * l as f64).collect())
        .collect();
    let bind_ns = mean_ns(|| {
        std::hint::black_box(BatchedCircuit::bind(plan, &points).unwrap());
    });
    let mut bc = BatchedCircuit::bind(plan, &points).unwrap();
    let brebind_ns = mean_ns(|| {
        bc.rebind(plan, std::hint::black_box(&points)).unwrap();
    });
    let mut bsv = BatchStateVector::new(n, b);
    let brun_ns = mean_ns(|| {
        bsv.reset();
        bc.run(&mut bsv);
        std::hint::black_box(&bsv);
    });
    let mut out = vec![0.0f64; b];
    let bexp_ns = mean_ns(|| {
        bc.run_expectation(&mut bsv, obs, &mut out);
        std::hint::black_box(&out);
    });
    let lane = |total: f64| total / b as f64;
    println!(
        "  [{n}q batched B={b}] bind {:.0} ns/lane, rebind {:.0} ns/lane ({:.2}x rebind), run {:.0} ns/lane ({:.2}x), run+exp {:.0} ns/lane ({:.2}x)",
        lane(bind_ns),
        lane(brebind_ns),
        rebind_ns / lane(brebind_ns),
        lane(brun_ns),
        run_ns / lane(brun_ns),
        lane(bexp_ns),
        (run_ns + exp_ns) / lane(bexp_ns),
    );
}

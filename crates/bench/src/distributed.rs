//! Sharded multi-process campaign execution — the bench-side adapter over
//! [`qismet_cluster`].
//!
//! Both halves of the protocol live here:
//!
//! * [`run_campaign_distributed`] is the coordinator: it expands the
//!   campaign, subtracts any runs already completed in the checkpoint
//!   journal (`--resume`), fans the remaining spec indices across a
//!   [`ProcessPool`] of `campaign --worker` processes, journals every
//!   completion, and merges the records into a [`CampaignReport`] that is
//!   **byte-identical** to a sequential in-process run.
//! * [`serve_worker`] is the worker loop the hidden `--worker` mode enters:
//!   it re-expands the same campaign from the same grid flags, handshakes
//!   with the campaign fingerprint, and answers `Assign(index)` with
//!   `Done(record)` until told to shut down.
//!
//! Specs never cross the process boundary — they are pure data both sides
//! derive identically, so the wire carries only indices and records.

use crate::executor::try_run_one;
use crate::report::{CampaignReport, RunRecord, RunsJsonlWriter};
use crate::scenario::Campaign;
use qismet_cluster::{
    load_journal, read_message, write_message, CheckpointEntry, ClusterError, Done, Hello,
    JournalWriter, Message, Outcome, ProcessPool, WorkerLaunch,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

/// Fault-injection hook for tests and CI: a worker process exits (code 17)
/// after sending this many `Done` messages, simulating a mid-campaign
/// crash / OOM-kill with a deterministic cut point.
pub const EXIT_AFTER_ENV: &str = "QISMET_CLUSTER_EXIT_AFTER";

/// How a distributed campaign should execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedOptions {
    /// Worker process count (at least 1).
    pub workers: usize,
    /// Append-only checkpoint journal path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Replay the journal first and re-run only the missing specs.
    /// Requires `checkpoint`.
    pub resume: bool,
    /// Per-worker respawn budget for crashed processes.
    pub max_respawns: usize,
    /// Stream every completed record to this JSONL path as it finishes.
    pub stream_jsonl: Option<PathBuf>,
}

impl Default for DistributedOptions {
    fn default() -> Self {
        DistributedOptions {
            workers: 2,
            checkpoint: None,
            resume: false,
            max_respawns: 2,
            stream_jsonl: None,
        }
    }
}

/// What a distributed run did, for operator-facing summaries and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedStats {
    /// Total specs in the campaign.
    pub total: usize,
    /// Specs skipped because the journal already held their records.
    pub resumed: usize,
    /// Specs executed by the worker pool this invocation.
    pub executed: usize,
    /// Worker process respawns along the way.
    pub respawns: usize,
}

/// Runs `campaign` across a pool of worker processes, returning the merged
/// report and run statistics. See the module docs for the full contract;
/// the short version: same records, same order, same bytes as
/// `SweepExecutor::sequential().run(&campaign)`.
///
/// # Errors
///
/// Returns a [`ClusterError`] on worker launch/handshake/protocol failures,
/// when a worker exhausts its respawn budget, when a spec fails
/// deterministically, or when journal/stream I/O fails. Completed runs are
/// already journaled at that point, so a checkpointed invocation can be
/// retried with `resume` to pick up where it stopped.
pub fn run_campaign_distributed(
    campaign: &Campaign,
    launch: WorkerLaunch,
    opts: &DistributedOptions,
) -> Result<(CampaignReport, DistributedStats), ClusterError> {
    let specs = campaign.expand();
    let total = specs.len();
    let fingerprint = campaign.fingerprint();

    if opts.resume && opts.checkpoint.is_none() {
        return Err(ClusterError::Io(
            "resume requires a checkpoint journal path".into(),
        ));
    }

    // Replay the journal: a record is only adopted if its (fingerprint,
    // index, seed) triple still matches the campaign being run.
    let mut resumed: BTreeMap<usize, RunRecord> = BTreeMap::new();
    if opts.resume {
        let path = opts.checkpoint.as_ref().expect("checked above");
        let loaded =
            load_journal(path, fingerprint).map_err(|e| ClusterError::Io(e.to_string()))?;
        for (index, entry) in loaded.entries {
            if index >= total || specs[index].seed != entry.seed {
                continue;
            }
            if let Ok(record) = RunRecord::from_value(&entry.record) {
                resumed.insert(index, record);
            }
        }
    }

    let journal = match &opts.checkpoint {
        Some(path) => Some(JournalWriter::append_to(path).map_err(io_err)?),
        None => None,
    };
    let stream = match &opts.stream_jsonl {
        Some(path) => {
            let mut w = RunsJsonlWriter::create(path).map_err(io_err)?;
            // Resumed records stream first so the file is a complete
            // account of the campaign, not just of this invocation.
            for record in resumed.values() {
                w.append(record).map_err(io_err)?;
            }
            Some(w)
        }
        None => None,
    };

    let pending: Vec<usize> = (0..total).filter(|i| !resumed.contains_key(i)).collect();
    let executed = pending.len();

    // The pool calls `on_done` from its collector threads; a journal or
    // stream failure is fatal — the pool aborts instead of completing runs
    // whose durability was silently lost (everything already journaled
    // remains resumable).
    let sink_state = Mutex::new((journal, stream));
    let outcome = ProcessPool::new(launch, opts.workers)
        .with_max_respawns(opts.max_respawns)
        .run(fingerprint, total, &pending, |entry: &CheckpointEntry| {
            let mut state = sink_state.lock().expect("sink mutex poisoned");
            let (journal, stream) = &mut *state;
            if let Some(j) = journal {
                j.append(entry)
                    .map_err(|e| format!("checkpoint append failed: {e}"))?;
            }
            if let Some(s) = stream {
                let record = RunRecord::from_value(&entry.record)
                    .map_err(|e| format!("spec {}: malformed record: {e}", entry.index))?;
                s.append(&record)
                    .map_err(|e| format!("jsonl stream append failed: {e}"))?;
            }
            Ok(())
        })?;

    // Merge resumed + fresh records into expansion order — the same
    // exactly-once merge the shard layer guarantees.
    let mut parts: Vec<(usize, RunRecord)> = resumed.into_iter().collect();
    let resumed_count = parts.len();
    for (index, value) in &outcome.records {
        let record = RunRecord::from_value(value).map_err(|e| ClusterError::Protocol {
            worker: usize::MAX,
            detail: format!("spec {index} returned a malformed record: {e}"),
        })?;
        parts.push((*index, record));
    }
    let expected: Vec<usize> = (0..total).collect();
    let records = qismet_cluster::merge_indexed(&expected, parts)
        .map_err(|e| ClusterError::Merge(e.to_string()))?;

    let report = CampaignReport {
        name: campaign.name.clone(),
        seed: campaign.seed,
        records,
    };
    let stats = DistributedStats {
        total,
        resumed: resumed_count,
        executed,
        respawns: outcome.respawns,
    };
    Ok((report, stats))
}

fn io_err(e: io::Error) -> ClusterError {
    ClusterError::Io(e.to_string())
}

/// The worker half: serves `Assign` messages over stdin/stdout until
/// `Shutdown` (or coordinator disappearance). Invoked by the hidden
/// `campaign --worker` mode with the campaign rebuilt from the same grid
/// flags the coordinator parsed.
///
/// A spec that panics is reported as a typed `Done`/`Failed` message via
/// [`try_run_one`] — the worker process stays alive and the coordinator
/// decides (it treats spec failures as deterministic and fatal, unlike
/// worker crashes, which it respawns).
///
/// # Errors
///
/// Returns a [`ClusterError`] on protocol violations or channel I/O
/// failures. A cleanly closed stdin is a normal shutdown, not an error.
pub fn serve_worker(campaign: &Campaign) -> Result<(), ClusterError> {
    let specs = campaign.expand();
    let worker_id: usize = std::env::var(qismet_cluster::WORKER_ID_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let exit_after: Option<usize> = std::env::var(EXIT_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse().ok());

    let stdin = io::stdin();
    let mut reader = stdin.lock();
    let stdout = io::stdout();
    let mut writer = stdout.lock();

    write_message(
        &mut writer,
        &Message::Hello(Hello {
            worker_id,
            fingerprint: campaign.fingerprint(),
            spec_count: specs.len(),
        }),
    )
    .map_err(|e| ClusterError::Io(format!("hello failed: {e}")))?;

    let mut completed = 0usize;
    loop {
        let message = match read_message(&mut reader) {
            Ok(message) => message,
            // Coordinator exited (crash or impolite teardown): stop quietly.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(ClusterError::Io(format!("worker read failed: {e}"))),
        };
        match message {
            Message::Assign(assign) => {
                let spec = specs
                    .get(assign.index)
                    .ok_or_else(|| ClusterError::Protocol {
                        worker: worker_id,
                        detail: format!(
                            "assigned index {} beyond spec count {}",
                            assign.index,
                            specs.len()
                        ),
                    })?;
                let outcome = match try_run_one(spec) {
                    Ok(record) => Outcome::Record(record.to_value()),
                    Err(e) => Outcome::Failed(e.to_string()),
                };
                write_message(
                    &mut writer,
                    &Message::Done(Done {
                        index: assign.index,
                        seed: spec.seed,
                        outcome,
                    }),
                )
                .map_err(|e| ClusterError::Io(format!("done failed: {e}")))?;
                completed += 1;
                if exit_after == Some(completed) {
                    // Fault-injection hook: simulate a crash at a
                    // deterministic point, *after* the Done was flushed.
                    std::process::exit(17);
                }
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(ClusterError::Protocol {
                    worker: worker_id,
                    detail: format!("unexpected message {other:?}"),
                })
            }
        }
    }
}

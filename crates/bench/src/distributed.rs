//! Sharded multi-process / multi-machine campaign execution — the
//! bench-side adapter over [`qismet_cluster`].
//!
//! Both halves of the protocol live here:
//!
//! * [`run_campaign_distributed`] is the coordinator: it expands the
//!   campaign, subtracts any runs already completed in the checkpoint
//!   journal (`--resume`), fans the remaining spec indices across a
//!   [`WorkerPool`] — spawned `campaign --worker` processes, remote
//!   `campaign --serve` daemons dialed over TCP, or any mix — journals
//!   every completion, and merges the records into a [`CampaignReport`]
//!   that is **byte-identical** to a sequential in-process run.
//! * [`serve_worker`] is the stdio worker loop the hidden `--worker` mode
//!   enters, and [`serve_campaign`] is the long-running `--serve` daemon
//!   that accepts coordinator connections on a [`Listener`] and survives
//!   their disconnects. Both re-expand the same campaign from the same
//!   grid flags, authenticate the coordinator's shared token, handshake
//!   with the campaign fingerprint, and answer batched `Assign(indices)`
//!   with one `Done(record)` per index — running each batch through a
//!   (possibly threaded) [`SweepExecutor`].
//!
//! Specs never cross the process boundary — they are pure data both sides
//! derive identically, so the wire carries only indices and records.

use crate::executor::try_run_one;
use crate::report::{CampaignReport, ReportMeta, RunRecord, RunsJsonlWriter};
use crate::scenario::{Campaign, RunSpec};
use crate::SweepExecutor;
use qismet_cluster::{
    load_journal, BuildStamp, CheckpointEntry, ClusterError, Connector, Done, FaultListener,
    FaultPlan, FaultTransport, Hello, JournalWriter, Listener, Message, Outcome, ProcessConnector,
    StdioTransport, TcpConnector, Transport, WorkerLaunch, WorkerPool, WorkerStats, WORKER_ID_ENV,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

// The legacy fault-injection env hooks now live on the chaos seam
// (`FaultPlan::from_env` translates them); re-exported here so existing
// callers keep compiling.
pub use qismet_cluster::{DROP_AFTER_ENV, EXIT_AFTER_ENV, MAX_SESSIONS_ENV};

/// How a distributed campaign should execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedOptions {
    /// Local worker process count (0 = none; requires a launch spec when
    /// positive).
    pub workers: usize,
    /// Remote worker daemons to dial (`host:port` each).
    pub connect: Vec<String>,
    /// Shared authentication token carried in the `Hello` handshake.
    pub token: String,
    /// Append-only checkpoint journal path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Replay the journal first and re-run only the missing specs.
    /// Requires `checkpoint`.
    pub resume: bool,
    /// Per-worker respawn (process) / reconnect (TCP) budget.
    pub max_respawns: usize,
    /// Stream every completed record to this JSONL path as it finishes.
    pub stream_jsonl: Option<PathBuf>,
    /// Drop per-run series from coordinator residency once streamed: the
    /// merged report keeps every aggregate (final energy, jobs, skips...)
    /// but its `series` are empty — the full series live in the JSONL.
    /// Requires `stream_jsonl`.
    pub summary_only: bool,
    /// Per-`Assign` read deadline: a worker silent for this long (no
    /// `Done`, no `Ping`) is treated as hung and its channel cut. `None`
    /// disables the deadline (legacy behavior).
    pub assign_timeout: Option<Duration>,
    /// Handshake read deadline per session attempt; `None` keeps the pool
    /// default.
    pub handshake_timeout: Option<Duration>,
    /// TCP connect deadline per dial attempt; `None` keeps the connector
    /// default.
    pub connect_timeout: Option<Duration>,
    /// Straggler mitigation: when idle workers outnumber remaining work,
    /// duplicate in-flight indices onto them (first result wins).
    pub speculative: bool,
    /// Quarantine a worker slot for good after this many lifetime session
    /// failures; `None` never quarantines.
    pub quarantine_after: Option<usize>,
}

impl Default for DistributedOptions {
    fn default() -> Self {
        DistributedOptions {
            workers: 2,
            connect: Vec::new(),
            token: String::new(),
            checkpoint: None,
            resume: false,
            max_respawns: 2,
            stream_jsonl: None,
            summary_only: false,
            assign_timeout: None,
            handshake_timeout: None,
            connect_timeout: None,
            speculative: false,
            quarantine_after: None,
        }
    }
}

/// What a distributed run did, for operator-facing summaries and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedStats {
    /// Total specs in the campaign.
    pub total: usize,
    /// Specs skipped because the journal already held their records.
    pub resumed: usize,
    /// Specs executed by the worker pool this invocation.
    pub executed: usize,
    /// Worker respawns/reconnects along the way.
    pub respawns: usize,
    /// Worker slots lost for good (their work re-dispatched to survivors).
    pub lost_workers: usize,
    /// Worker slots quarantined after repeated session failures.
    pub quarantined_workers: usize,
}

/// Runs `campaign` across a pool of workers — `opts.workers` spawned
/// processes (launched via `launch`) plus one remote TCP worker per
/// `opts.connect` address — returning the merged report and run
/// statistics. See the module docs for the full contract; the short
/// version: same records, same order, same bytes as
/// `SweepExecutor::sequential().run(&campaign)`, whatever the topology.
///
/// # Errors
///
/// Returns a [`ClusterError`] on worker launch/handshake/protocol
/// failures, when unfinished work outlives every worker, when a spec fails
/// deterministically, or when journal/stream I/O fails. Completed runs are
/// already journaled at that point, so a checkpointed invocation can be
/// retried with `resume` to pick up where it stopped.
pub fn run_campaign_distributed(
    campaign: &Campaign,
    launch: Option<WorkerLaunch>,
    opts: &DistributedOptions,
) -> Result<(CampaignReport, DistributedStats), ClusterError> {
    let specs = campaign.expand();
    let total = specs.len();
    let fingerprint = campaign.fingerprint();

    if opts.resume && opts.checkpoint.is_none() {
        return Err(ClusterError::Io(
            "resume requires a checkpoint journal path".into(),
        ));
    }
    if opts.summary_only && opts.stream_jsonl.is_none() {
        return Err(ClusterError::Io(
            "summary-only merge requires a JSONL stream path".into(),
        ));
    }
    let mut connectors: Vec<Box<dyn Connector>> = Vec::new();
    if opts.workers > 0 {
        let launch = launch.ok_or_else(|| {
            ClusterError::Spawn("local workers requested without a launch spec".into())
        })?;
        for _ in 0..opts.workers {
            connectors.push(Box::new(ProcessConnector {
                launch: launch.clone(),
            }));
        }
    }
    for addr in &opts.connect {
        let mut connector = TcpConnector::new(addr.clone());
        if let Some(timeout) = opts.connect_timeout {
            connector = connector.with_connect_timeout(timeout);
        }
        connectors.push(Box::new(connector));
    }
    if connectors.is_empty() {
        return Err(ClusterError::Spawn(
            "no workers: need a positive worker count or at least one connect address".into(),
        ));
    }

    // Replay the journal: a record is only adopted if its (fingerprint,
    // index, seed) triple still matches the campaign being run.
    let mut resumed: BTreeMap<usize, RunRecord> = BTreeMap::new();
    if opts.resume {
        let path = opts.checkpoint.as_ref().expect("checked above");
        let loaded =
            load_journal(path, fingerprint).map_err(|e| ClusterError::Io(e.to_string()))?;
        for (index, entry) in loaded.entries {
            if index >= total || specs[index].seed != entry.seed {
                continue;
            }
            if let Ok(record) = RunRecord::from_value(&entry.record) {
                resumed.insert(index, record);
            }
        }
    }

    let journal = match &opts.checkpoint {
        Some(path) => Some(JournalWriter::append_to(path).map_err(io_err)?),
        None => None,
    };
    let stream = match &opts.stream_jsonl {
        Some(path) => {
            let mut w = RunsJsonlWriter::create(path).map_err(io_err)?;
            // Resumed records stream first so the file is a complete
            // account of the campaign, not just of this invocation.
            for record in resumed.values() {
                w.append(record).map_err(io_err)?;
            }
            Some(w)
        }
        None => None,
    };
    if opts.summary_only {
        // The streamed JSONL holds the full series; residency keeps the
        // aggregates only.
        for record in resumed.values_mut() {
            record.series.clear();
        }
    }

    let pending: Vec<usize> = (0..total).filter(|i| !resumed.contains_key(i)).collect();
    let executed = pending.len();

    // The pool calls `on_done` from its collector threads; a journal or
    // stream failure is fatal — the pool aborts instead of completing runs
    // whose durability was silently lost (everything already journaled
    // remains resumable).
    let summary_only = opts.summary_only;
    let sink_state = Mutex::new((journal, stream));
    let mut pool = WorkerPool::new(connectors)
        .with_max_respawns(opts.max_respawns)
        .with_token(opts.token.clone())
        .with_assign_timeout(opts.assign_timeout)
        .with_speculative(opts.speculative)
        .with_quarantine_after(opts.quarantine_after)
        .with_build(BuildStamp::local(cfg!(feature = "parallel")));
    if let Some(timeout) = opts.handshake_timeout {
        pool = pool.with_handshake_timeout(timeout);
    }
    let outcome = pool.run(
        fingerprint,
        total,
        &pending,
        |entry: &mut CheckpointEntry| {
            let mut state = sink_state.lock().expect("sink mutex poisoned");
            let (journal, stream) = &mut *state;
            if let Some(j) = journal {
                j.append(entry)
                    .map_err(|e| format!("checkpoint append failed: {e}"))?;
            }
            if let Some(s) = stream {
                let mut record = RunRecord::from_value(&entry.record)
                    .map_err(|e| format!("spec {}: malformed record: {e}", entry.index))?;
                s.append(&record)
                    .map_err(|e| format!("jsonl stream append failed: {e}"))?;
                if summary_only {
                    record.series.clear();
                    entry.record = record.to_value();
                }
            }
            Ok(())
        },
    )?;

    // Merge resumed + fresh records into expansion order — the same
    // exactly-once merge the shard layer guarantees.
    let mut parts: Vec<(usize, RunRecord)> = resumed.into_iter().collect();
    let resumed_count = parts.len();
    for (index, value) in &outcome.records {
        let record = RunRecord::from_value(value).map_err(|e| ClusterError::Protocol {
            worker: usize::MAX,
            detail: format!("spec {index} returned a malformed record: {e}"),
        })?;
        parts.push((*index, record));
    }
    let expected: Vec<usize> = (0..total).collect();
    let records = qismet_cluster::merge_indexed(&expected, parts)
        .map_err(|e| ClusterError::Merge(e.to_string()))?;

    let report = CampaignReport {
        name: campaign.name.clone(),
        seed: campaign.seed,
        meta: ReportMeta::current(),
        records,
    };
    let stats = DistributedStats {
        total,
        resumed: resumed_count,
        executed,
        respawns: outcome.respawns,
        lost_workers: outcome.lost_workers,
        quarantined_workers: outcome.quarantined_workers,
    };
    Ok((report, stats))
}

fn io_err(e: io::Error) -> ClusterError {
    ClusterError::Io(e.to_string())
}

/// Worker-side behavior knobs, shared by the stdio worker and the TCP
/// serve daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerOptions {
    /// Shared authentication token; sessions whose coordinator presents a
    /// different token are rejected.
    pub token: String,
    /// Executor threads for batched assignments (0 = all cores under the
    /// `parallel` feature; effectively 1 otherwise). Advertised in the
    /// `Hello` reply so the coordinator sizes batches to match.
    pub threads: usize,
    /// In-state kernel threads per run (`0`/`1` = sequential statevector
    /// sweeps). Composes with `threads`: the executor fan-out splits runs
    /// across workers while each run's apply/expectation splits its own
    /// amplitude array. Results are bit-identical either way.
    pub inner_threads: usize,
    /// Worker-initiated keepalive: while a batch computes, send a `Ping`
    /// whenever no result has been produced for this long, so a
    /// coordinator with an assign deadline can tell *slow* (frames still
    /// flowing) from *hung* (silence). `None` disables pings.
    pub heartbeat: Option<Duration>,
    /// How long a serve daemon lets an accepted-but-silent connection
    /// stall the accept loop before shedding it.
    pub handshake_timeout: Duration,
    /// Deterministic fault injection: the plan this worker executes
    /// against its own channel (see [`qismet_cluster::chaos`]). `None` (the
    /// default) runs the channel clean.
    pub plan: Option<FaultPlan>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            token: String::new(),
            threads: 1,
            inner_threads: 1,
            heartbeat: Some(Duration::from_secs(2)),
            handshake_timeout: Duration::from_secs(10),
            plan: None,
        }
    }
}

impl WorkerOptions {
    /// The executor batch size this worker advertises (at least 1).
    fn advertised_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// How one worker session ended (all are normal from the worker's side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The coordinator sent `Shutdown` after draining its queue.
    Shutdown,
    /// The channel closed cleanly (coordinator exited or crashed).
    CoordinatorGone,
    /// The handshake was refused (token mismatch).
    Rejected,
    /// The channel was cut mid-stream (an injected fault or a network
    /// reset); from the worker's side this is a normal session end.
    Dropped,
}

/// Classifies a channel I/O failure: clean closes and connection cuts are
/// normal session ends for a worker; anything else is a real error.
pub(crate) fn channel_end(op: &str, e: io::Error) -> Result<SessionOutcome, ClusterError> {
    match e.kind() {
        io::ErrorKind::UnexpectedEof | io::ErrorKind::BrokenPipe => {
            Ok(SessionOutcome::CoordinatorGone)
        }
        io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset => {
            Ok(SessionOutcome::Dropped)
        }
        _ => Err(ClusterError::Io(format!("{op} failed: {e}"))),
    }
}

/// Worker-side telemetry bookkeeping for the `Done.stats` piggyback:
/// samples the process-global sweep / plan-cache counters and ships the
/// **delta** since this session's previous `Done`, so the coordinator
/// aggregates by plain addition — arithmetic that survives respawns and
/// daemon session reuse without baseline bookkeeping. Also matches
/// keepalive `Ping` sends to their `Pong` replies (FIFO) to measure
/// control-plane round-trip time. Inert while telemetry is disabled:
/// every `Done` then carries `stats: None`.
#[derive(Default)]
pub(crate) struct StatsTracker {
    last: [u64; 4],
    pending_pings: VecDeque<Instant>,
    rtt_count: u64,
    rtt_ns_sum: u64,
    rtt_ns_max: u64,
}

impl StatsTracker {
    /// Outstanding-ping cap: a coordinator that never answers keeps at
    /// most this many send timestamps alive.
    const MAX_PENDING_PINGS: usize = 64;

    pub(crate) fn ping_sent(&mut self) {
        if !qismet_telemetry::enabled() {
            return;
        }
        if self.pending_pings.len() < Self::MAX_PENDING_PINGS {
            self.pending_pings.push_back(Instant::now());
        }
    }

    pub(crate) fn pong_received(&mut self) {
        if let Some(sent) = self.pending_pings.pop_front() {
            let ns = u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rtt_count += 1;
            self.rtt_ns_sum = self.rtt_ns_sum.saturating_add(ns);
            self.rtt_ns_max = self.rtt_ns_max.max(ns);
        }
    }

    fn next_delta(&mut self) -> Option<WorkerStats> {
        if !qismet_telemetry::enabled() {
            return None;
        }
        let now = [
            qismet_telemetry::counter!("sweep.specs_done").get(),
            qismet_telemetry::counter!("sweep.eval_ns").get(),
            qismet_telemetry::counter!("qsim.plan_cache.hits").get(),
            qismet_telemetry::counter!("qsim.plan_cache.misses").get(),
        ];
        let delta = WorkerStats {
            specs_done: now[0].saturating_sub(self.last[0]),
            eval_ns: now[1].saturating_sub(self.last[1]),
            plan_hits: now[2].saturating_sub(self.last[2]),
            plan_misses: now[3].saturating_sub(self.last[3]),
            rtt_count: std::mem::take(&mut self.rtt_count),
            rtt_ns_sum: std::mem::take(&mut self.rtt_ns_sum),
            rtt_ns_max: std::mem::take(&mut self.rtt_ns_max),
        };
        self.last = now;
        Some(delta)
    }
}

/// Executes one `Assign` batch and streams its `Done`s — the worker-side
/// inner loop shared by the one-shot session protocol ([`serve_session`])
/// and the service-registration protocol
/// ([`register_worker`](crate::service::register_worker)).
///
/// The whole batch fans across the executor's threads; panics come back
/// as per-spec typed errors, so one poisoned spec fails its index, not
/// the session. Each `Done` streams out the moment its spec completes
/// (not when the whole batch does), so the coordinator journals finished
/// work at single-run granularity even when a threaded worker dies
/// mid-batch. While the batch computes, a `Ping` goes out per quiet
/// heartbeat interval so a coordinator assign deadline fires on hung
/// workers, not slow ones.
///
/// Returns `Ok(None)` when the batch was fully acknowledged and
/// `Ok(Some(end))` when the channel ended mid-batch (the executor is
/// still drained so no run is left dangling).
pub(crate) fn run_assignment(
    executor: &SweepExecutor,
    specs: &[RunSpec],
    worker_id: usize,
    indices: &[usize],
    transport: &mut dyn Transport,
    heartbeat: Option<Duration>,
    stats: &mut StatsTracker,
) -> Result<Option<SessionOutcome>, ClusterError> {
    let batch: Vec<&RunSpec> = indices
        .iter()
        .map(|&index| {
            specs.get(index).ok_or_else(|| ClusterError::Protocol {
                worker: worker_id,
                detail: format!("assigned index {index} beyond spec count {}", specs.len()),
            })
        })
        .collect::<Result<_, _>>()?;
    let (tx, rx) = mpsc::channel::<(usize, u64, Outcome)>();
    // The executor shares the closure across its threads, so the
    // (per-thread) sender lives behind a mutex.
    let tx = Mutex::new(tx);
    let mut session_end: Option<Result<SessionOutcome, ClusterError>> = None;
    std::thread::scope(|scope| {
        let batch = &batch;
        scope.spawn(move || {
            executor.run_specs(batch, |spec| {
                let outcome = match try_run_one(spec) {
                    Ok(record) => Outcome::Record(record.to_value()),
                    Err(e) => Outcome::Failed(e.to_string()),
                };
                let sent = tx
                    .lock()
                    .expect("done channel mutex poisoned")
                    .send((spec.index, spec.seed, outcome));
                // A failed send means the receiver is gone (session
                // already ending): discard.
                let _ = sent;
            });
        });
        for _ in 0..batch.len() {
            let (index, seed, outcome) = loop {
                match heartbeat.filter(|_| session_end.is_none()) {
                    Some(interval) => match rx.recv_timeout(interval) {
                        Ok(result) => break result,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if let Err(e) = transport.send(&Message::Ping) {
                                session_end = Some(channel_end("ping", e));
                            } else {
                                stats.ping_sent();
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            panic!("executor thread closed the channel")
                        }
                    },
                    None => break rx.recv().expect("executor thread closed the channel"),
                }
            };
            if session_end.is_some() {
                // Already ending (channel cut mid-batch): drain the
                // executor without acknowledging.
                continue;
            }
            if let Err(e) = transport.send(&Message::Done(Done {
                index,
                seed,
                outcome,
                stats: stats.next_delta(),
            })) {
                session_end = Some(channel_end("done", e));
                continue;
            }
        }
    });
    match session_end {
        None => Ok(None),
        Some(Ok(end)) => Ok(Some(end)),
        Some(Err(e)) => Err(e),
    }
}

/// Serves one coordinator session over `transport`: mutual handshake, then
/// batched `Assign` -> `Done` streaming until `Shutdown` or disconnect.
///
/// # Errors
///
/// Returns a [`ClusterError`] on protocol violations or channel I/O
/// failures mid-session. A cleanly closed channel is a normal
/// [`SessionOutcome::CoordinatorGone`], not an error.
pub fn serve_session(
    campaign: &Campaign,
    specs: &[RunSpec],
    transport: &mut dyn Transport,
    opts: &WorkerOptions,
) -> Result<SessionOutcome, ClusterError> {
    let threads = opts.advertised_threads();
    let executor = SweepExecutor::with_threads(threads).with_inner_threads(opts.inner_threads);
    let coordinator = match transport.recv() {
        Ok(Message::Hello(hello)) => hello,
        Ok(other) => {
            return Err(ClusterError::Protocol {
                worker: 0,
                detail: format!("expected coordinator Hello, got {other:?}"),
            })
        }
        Err(e) => return channel_end("handshake read", e),
    };
    let worker_id = coordinator.worker_id;
    if coordinator.token != opts.token {
        // Never echo this worker's own token to an unauthenticated peer.
        let _ = transport.send(&Message::Reject("token mismatch".into()));
        return Ok(SessionOutcome::Rejected);
    }
    transport
        .send(&Message::Hello(Hello {
            worker_id,
            fingerprint: campaign.fingerprint(),
            spec_count: specs.len(),
            token: opts.token.clone(),
            threads,
            build: BuildStamp::local(cfg!(feature = "parallel")),
        }))
        .map_err(|e| ClusterError::Io(format!("hello reply failed: {e}")))?;
    let mut stats = StatsTracker::default();
    // Handshake deadline (if the caller set one) no longer applies: an
    // authenticated coordinator may legitimately idle between batches.
    let _ = transport.set_read_timeout(None);

    loop {
        let message = match transport.recv() {
            Ok(message) => message,
            // Coordinator exited or the channel was cut: stop quietly.
            Err(e) => return channel_end("worker read", e),
        };
        match message {
            Message::Assign(assign) => {
                if let Some(end) = run_assignment(
                    &executor,
                    specs,
                    worker_id,
                    &assign.indices,
                    transport,
                    opts.heartbeat,
                    &mut stats,
                )? {
                    return Ok(end);
                }
            }
            // The coordinator answers our keepalive `Ping`s; replies may
            // queue up behind a batch and surface here (so the measured
            // round-trip is an upper bound: wire time plus however long
            // this worker computed before reading). Matched FIFO against
            // the outstanding ping sends.
            Message::Pong => {
                stats.pong_received();
                continue;
            }
            Message::Shutdown => return Ok(SessionOutcome::Shutdown),
            other => {
                return Err(ClusterError::Protocol {
                    worker: worker_id,
                    detail: format!("unexpected message {other:?}"),
                })
            }
        }
    }
}

/// The stdio worker half: serves exactly one coordinator session over
/// stdin/stdout. Invoked by the hidden `campaign --worker` mode with the
/// campaign rebuilt from the same grid flags the coordinator parsed. When
/// the options carry a [`FaultPlan`], the channel runs through a
/// [`FaultTransport`] (slot learned from `QISMET_CLUSTER_WORKER_ID`).
///
/// # Errors
///
/// Returns a [`ClusterError`] on protocol violations or channel I/O
/// failures. A cleanly closed stdin is a normal shutdown, not an error.
pub fn serve_worker(campaign: &Campaign, opts: &WorkerOptions) -> Result<(), ClusterError> {
    // Worker processes always run with telemetry on so every `Done` can
    // piggyback stats; the gate never changes computed records, so the
    // coordinator-side on/off byte-identity guarantee is unaffected.
    qismet_telemetry::set_enabled(true);
    let specs = campaign.expand();
    let stdio = Box::new(StdioTransport::new());
    let mut transport: Box<dyn Transport> = match &opts.plan {
        Some(plan) if !plan.faults.is_empty() => {
            let slot = std::env::var(WORKER_ID_ENV)
                .ok()
                .and_then(|v| v.parse().ok());
            Box::new(FaultTransport::new(stdio, plan.clone(), slot))
        }
        _ => stdio,
    };
    serve_session(campaign, &specs, transport.as_mut(), opts).map(|_| ())
}

/// The long-running worker daemon behind `campaign --serve <addr>`:
/// accepts coordinator sessions from `listener` one at a time and serves
/// each until shutdown or disconnect. Coordinator disconnects, rejected
/// handshakes, and per-session errors do **not** stop the daemon — it
/// returns to `accept` and waits for the next campaign, forever (or until
/// the fault plan's `max_sessions` have been accepted, when set). When the
/// options carry a [`FaultPlan`] with faults, every accepted session runs
/// through a [`FaultTransport`] sharing one once-per-process fault state.
///
/// Returns the number of sessions accepted.
///
/// # Errors
///
/// Returns a [`ClusterError`] only when `accept` itself fails (the
/// listening socket died).
pub fn serve_campaign(
    campaign: &Campaign,
    listener: Box<dyn Listener>,
    opts: &WorkerOptions,
) -> Result<usize, ClusterError> {
    // Daemon workers run with telemetry on, like `serve_worker`.
    qismet_telemetry::set_enabled(true);
    let specs = campaign.expand();
    let max_sessions = opts.plan.as_ref().and_then(|p| p.max_sessions);
    let mut listener: Box<dyn Listener> = match &opts.plan {
        Some(plan) if !plan.faults.is_empty() => {
            Box::new(FaultListener::new(listener, plan.clone()))
        }
        _ => listener,
    };
    let mut sessions = 0usize;
    loop {
        if let Some(max) = max_sessions {
            if sessions >= max {
                return Ok(sessions);
            }
        }
        let mut transport = listener
            .accept()
            .map_err(|e| ClusterError::Io(format!("accept failed: {e}")))?;
        sessions += 1;
        let peer = transport.peer();
        let _ = transport.set_read_timeout(Some(opts.handshake_timeout));
        match serve_session(campaign, &specs, transport.as_mut(), opts) {
            Ok(outcome) => {
                eprintln!("[serve] session {sessions} from {peer}: {outcome:?}");
            }
            Err(e) => {
                // A broken session must not take the daemon down.
                eprintln!("[serve] session {sessions} from {peer} failed: {e}");
            }
        }
    }
}

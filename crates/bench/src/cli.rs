//! `campaign` CLI parsing: one typed validation pass over every flag.
//!
//! The binary used to sprinkle `die()` calls through `parse_args`; every
//! flag-compatibility rule now lives in a single [`validate`] pass over the
//! fully-parsed [`Args`], producing a typed [`ConfigConflict`] — one enum
//! variant per rule, one unit test per variant, and one place to read when
//! adding a mode. The binary maps [`CliError`] onto the typed
//! [exit codes](EXIT_USAGE) shared with the runtime error paths.

use crate::scenario::{parse_scheme, parse_threshold};
use crate::service::machine_by_name;
use crate::{scaled, Scheme};
use qismet_cluster::ClusterError;
use qismet_qnoise::Machine;
use qismet_vqa::AppSpec;
use std::path::PathBuf;
use std::time::Duration;

/// Success.
pub const EXIT_OK: i32 = 0;
/// Generic runtime failure (I/O, merge, lost fleet, ...).
pub const EXIT_FAILURE: i32 = 1;
/// Usage/validation error — bad flag value or a [`ConfigConflict`].
pub const EXIT_USAGE: i32 = 2;
/// `--worker`/`--serve`/`--register` side failed while serving.
pub const EXIT_WORKER: i32 = 3;
/// The campaign completed except for poisoned specs
/// ([`ClusterError::PoisonedSpecs`]).
pub const EXIT_POISONED: i32 = 4;
/// A handshake was rejected (token/fingerprint mismatch, quarantined
/// name) — [`ClusterError::Rejected`] or a `BadToken` service refusal.
pub const EXIT_REJECTED: i32 = 5;

/// Maps a coordinator error onto the typed exit codes: poisoned specs and
/// rejected handshakes get distinct codes scripts can branch on; everything
/// else is a generic failure.
pub fn exit_code_for(error: &ClusterError) -> i32 {
    match error {
        ClusterError::PoisonedSpecs { .. } => EXIT_POISONED,
        ClusterError::Rejected { .. } => EXIT_REJECTED,
        _ => EXIT_FAILURE,
    }
}

/// Maps a service-client error onto the typed exit codes: authentication
/// refusals (bad token, quarantined worker name) exit like rejected
/// handshakes; other refusals and channel failures are generic.
pub fn exit_code_for_service(error: &crate::service::ServiceError) -> i32 {
    use qismet_cluster::ServiceErrKind;
    match error {
        crate::service::ServiceError::Refused {
            kind: ServiceErrKind::BadToken | ServiceErrKind::Quarantined,
            ..
        } => EXIT_REJECTED,
        _ => EXIT_FAILURE,
    }
}

/// The service-client verb given as the first positional argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientVerb {
    /// Enqueue the grid described by the flags as a job.
    Submit,
    /// Print the queue and fleet status visible to the token.
    Status,
    /// Cancel a queued/running job by id (`--job`).
    Cancel,
    /// Refuse new submissions, wait for settlement, stop the daemon.
    Drain,
}

impl ClientVerb {
    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ClientVerb::Submit => "submit",
            ClientVerb::Status => "status",
            ClientVerb::Cancel => "cancel",
            ClientVerb::Drain => "drain",
        }
    }

    fn parse(word: &str) -> Option<Self> {
        match word {
            "submit" => Some(ClientVerb::Submit),
            "status" => Some(ClientVerb::Status),
            "cancel" => Some(ClientVerb::Cancel),
            "drain" => Some(ClientVerb::Drain),
            _ => None,
        }
    }
}

/// Fully-parsed `campaign` arguments (defaults applied, values validated,
/// cross-flag rules checked by [`validate`]).
#[allow(missing_docs)]
#[derive(Debug, Clone)]
pub struct Args {
    pub apps: Vec<AppSpec>,
    pub machines: Vec<Machine>,
    pub schemes: Vec<Scheme>,
    pub thresholds: Vec<u32>,
    pub magnitudes: Vec<f64>,
    pub iterations: usize,
    pub trials: usize,
    pub seed: u64,
    pub threads: Option<usize>,
    pub inner_threads: usize,
    pub batch_lanes: usize,
    pub name: String,
    pub workers: usize,
    pub connect: Vec<String>,
    pub serve: Option<String>,
    pub token: String,
    pub checkpoint: Option<PathBuf>,
    pub resume: bool,
    pub max_respawns: usize,
    pub jsonl: Option<PathBuf>,
    pub summary_only: bool,
    pub worker_mode: bool,
    pub assign_timeout: Option<Duration>,
    pub heartbeat: Option<Duration>,
    pub handshake_timeout: Option<Duration>,
    pub connect_timeout: Option<Duration>,
    pub speculative: bool,
    pub quarantine_after: Option<usize>,
    pub chaos_plan: Option<PathBuf>,
    pub chaos_seed: Option<u64>,
    pub chaos_json: Option<String>,
    pub metrics_out: Option<PathBuf>,
    pub trace_out: Option<PathBuf>,
    pub progress: bool,
    // --- service mode ---
    /// Run as a long-lived campaign-service daemon bound to this address.
    pub daemon: Option<String>,
    /// Daemon state directory (queue event log + per-job journals).
    pub state_dir: Option<PathBuf>,
    /// Daemon tenant credentials, `name=token` pairs.
    pub tenants: Vec<(String, String)>,
    /// Daemon report directory (default: the standard results dir).
    pub report_dir: Option<PathBuf>,
    /// Register as an elastic worker at this daemon address.
    pub register: Option<String>,
    /// Registered worker name (quarantine identity).
    pub worker_name: Option<String>,
    /// Voluntarily deregister after serving this many batches.
    pub deregister_after: Option<usize>,
    /// Client verb (first positional argument).
    pub command: Option<ClientVerb>,
    /// Client: daemon address to talk to.
    pub to: Option<String>,
    /// Client: submission priority (higher runs first).
    pub priority: i64,
    /// Client: job id for `cancel`.
    pub job: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            apps: vec![AppSpec::by_id(2).expect("App2")],
            machines: Vec::new(),
            schemes: vec![Scheme::Baseline, Scheme::Qismet],
            thresholds: Vec::new(),
            magnitudes: Vec::new(),
            iterations: scaled(500),
            trials: 1,
            seed: 7,
            threads: None,
            inner_threads: 1,
            batch_lanes: 1,
            name: "campaign".to_string(),
            workers: 0,
            connect: Vec::new(),
            serve: None,
            token: String::new(),
            checkpoint: None,
            resume: false,
            max_respawns: 2,
            jsonl: None,
            summary_only: false,
            worker_mode: false,
            assign_timeout: None,
            heartbeat: None,
            handshake_timeout: None,
            connect_timeout: None,
            speculative: false,
            quarantine_after: None,
            chaos_plan: None,
            chaos_seed: None,
            chaos_json: None,
            metrics_out: None,
            trace_out: None,
            progress: false,
            daemon: None,
            state_dir: None,
            tenants: Vec::new(),
            report_dir: None,
            register: None,
            worker_name: None,
            deregister_after: None,
            command: None,
            to: None,
            priority: 0,
            job: None,
        }
    }
}

/// Every cross-flag incompatibility `campaign` refuses, as data. The
/// [`std::fmt::Display`] impl is the operator-facing message; each variant
/// has a unit test pinning the flag combination that trips it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigConflict {
    /// No apps, or neither schemes nor thresholds: the grid is empty.
    EmptyGrid,
    /// `--serve` combined with `--workers`/`--connect`/`--worker`.
    ServeWithPool,
    /// Coordinator journaling/streaming flags on a `--serve` daemon.
    ServeWithJournal,
    /// `--resume` without `--checkpoint`.
    ResumeWithoutCheckpoint,
    /// `--checkpoint`/`--resume` on a plain in-process run.
    JournalNeedsSharding,
    /// `--summary-only` on a plain in-process run.
    SummaryOnlyNeedsSharding,
    /// `--summary-only` without `--jsonl`.
    SummaryOnlyNeedsJsonl,
    /// `--batch-lanes` with any cluster mode.
    BatchLanesDistributed,
    /// Coordinator resilience flags on a `--serve` daemon.
    ServeWithResilience,
    /// `--heartbeat` is not shorter than `--assign-timeout`.
    HeartbeatSlowerThanDeadline,
    /// Observability flags on a `--serve` daemon.
    ServeWithObservability,
    /// Both `--chaos-plan` and `--chaos-seed`.
    ChaosPlanAndSeed,
    /// Chaos flags without any workers to inject faults into.
    ChaosNeedsWorkers,
    /// `--daemon` combined with any other execution mode.
    DaemonWithPool,
    /// Coordinator journaling flags on a `--daemon` (jobs journal under
    /// `--state-dir` instead).
    DaemonWithJournal,
    /// `--register` combined with any other execution mode.
    RegisterWithPool,
    /// Coordinator journaling/streaming flags on a `--register` worker.
    RegisterWithJournal,
    /// A daemon-only flag (`--state-dir`/`--tenants`/`--report-dir`)
    /// without `--daemon`.
    DaemonFlagOutsideDaemon(&'static str),
    /// A register-only flag (`--worker-name`/`--deregister-after`)
    /// without `--register`.
    RegisterFlagOutsideRegister(&'static str),
    /// A client verb without `--to <addr>`.
    ClientNeedsTo,
    /// `cancel` without `--job <id>`.
    CancelNeedsJob,
    /// `--job` with a verb other than `cancel`.
    JobOutsideCancel,
}

impl std::fmt::Display for ConfigConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigConflict::EmptyGrid => {
                write!(f, "need at least one app and one scheme (or threshold percentile)")
            }
            ConfigConflict::ServeWithPool => write!(
                f,
                "--serve is a worker daemon mode; it cannot combine with --workers/--connect/--worker"
            ),
            ConfigConflict::ServeWithJournal => write!(
                f,
                "--checkpoint/--resume/--jsonl/--summary-only belong on the coordinator, not --serve"
            ),
            ConfigConflict::ResumeWithoutCheckpoint => {
                write!(f, "--resume requires --checkpoint <path>")
            }
            ConfigConflict::JournalNeedsSharding => write!(
                f,
                "--checkpoint/--resume need sharded execution: add --workers <n> or --connect <addrs>"
            ),
            ConfigConflict::SummaryOnlyNeedsSharding => write!(
                f,
                "--summary-only needs sharded execution: add --workers <n> or --connect <addrs>"
            ),
            ConfigConflict::SummaryOnlyNeedsJsonl => write!(
                f,
                "--summary-only requires --jsonl <path> (the series live in the stream)"
            ),
            ConfigConflict::BatchLanesDistributed => write!(
                f,
                "--batch-lanes applies to in-process execution; drop --workers/--connect/--serve"
            ),
            ConfigConflict::ServeWithResilience => write!(
                f,
                "--assign-timeout/--connect-timeout/--speculative/--quarantine-after belong on the coordinator, not --serve"
            ),
            ConfigConflict::HeartbeatSlowerThanDeadline => {
                write!(f, "--heartbeat must be shorter than --assign-timeout")
            }
            ConfigConflict::ServeWithObservability => write!(
                f,
                "--metrics-out/--trace-out/--progress belong on the coordinator, not --serve"
            ),
            ConfigConflict::ChaosPlanAndSeed => {
                write!(f, "--chaos-plan and --chaos-seed are mutually exclusive")
            }
            ConfigConflict::ChaosNeedsWorkers => write!(
                f,
                "--chaos-plan/--chaos-seed inject faults into workers: add --workers/--connect or --serve"
            ),
            ConfigConflict::DaemonWithPool => write!(
                f,
                "--daemon is a service mode; it cannot combine with --workers/--connect/--serve/--worker/--register or a client verb"
            ),
            ConfigConflict::DaemonWithJournal => write!(
                f,
                "--checkpoint/--resume/--jsonl/--summary-only do not apply to --daemon; jobs journal under --state-dir"
            ),
            ConfigConflict::RegisterWithPool => write!(
                f,
                "--register is a worker mode; it cannot combine with --workers/--connect/--serve/--worker/--daemon or a client verb"
            ),
            ConfigConflict::RegisterWithJournal => write!(
                f,
                "--checkpoint/--resume/--jsonl/--summary-only belong on the daemon/client side, not --register"
            ),
            ConfigConflict::DaemonFlagOutsideDaemon(flag) => {
                write!(f, "{flag} requires --daemon <addr>")
            }
            ConfigConflict::RegisterFlagOutsideRegister(flag) => {
                write!(f, "{flag} requires --register <addr>")
            }
            ConfigConflict::ClientNeedsTo => {
                write!(f, "submit/status/cancel/drain require --to <addr>")
            }
            ConfigConflict::CancelNeedsJob => write!(f, "cancel requires --job <id>"),
            ConfigConflict::JobOutsideCancel => write!(f, "--job only applies to cancel"),
        }
    }
}

/// A failed parse: `--help`, a malformed flag value, or a typed
/// cross-flag conflict. All except `Help` exit with [`EXIT_USAGE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `-h`/`--help` was given.
    Help,
    /// A flag value failed to parse (message is operator-facing).
    Usage(String),
    /// A typed flag-compatibility conflict.
    Conflict(ConfigConflict),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "help requested"),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Conflict(conflict) => write!(f, "{conflict}"),
        }
    }
}

impl std::error::Error for CliError {}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn parse_list<T>(
    value: &str,
    what: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, CliError> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()).ok_or_else(|| usage(format!("invalid {what}: `{s}`"))))
        .collect()
}

/// Parses a duration flag as seconds; zero, negative, and non-numeric
/// values are configuration errors, not clamps.
fn parse_secs(flag: &str, value: &str) -> Result<Duration, CliError> {
    match value.parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs > 0.0 => Ok(Duration::from_secs_f64(secs)),
        _ => Err(usage(format!(
            "invalid {flag} `{value}`: must be a positive number of seconds"
        ))),
    }
}

/// Parses `name=token` tenant credential pairs.
fn parse_tenants(value: &str) -> Result<Vec<(String, String)>, CliError> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (name, token) = pair
                .split_once('=')
                .ok_or_else(|| usage(format!("invalid tenant `{pair}`: expected name=token")))?;
            if name.is_empty() || token.is_empty() {
                return Err(usage(format!(
                    "invalid tenant `{pair}`: name and token must be non-empty"
                )));
            }
            Ok((name.trim().to_string(), token.to_string()))
        })
        .collect()
}

/// Parses the full argv (program name already stripped) into [`Args`],
/// then runs the single [`validate`] pass.
pub fn parse_args(argv: &[String]) -> Result<Args, CliError> {
    let mut args = Args::default();
    let mut i = 0;
    // First positional word = client verb.
    if let Some(word) = argv.first() {
        if !word.starts_with('-') {
            args.command = Some(
                ClientVerb::parse(word)
                    .ok_or_else(|| usage(format!("unknown command `{word}`")))?,
            );
            i = 1;
        }
    }
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "-h" | "--help" => return Err(CliError::Help),
            // Boolean flags.
            "--resume" => {
                args.resume = true;
                i += 1;
                continue;
            }
            "--summary-only" => {
                args.summary_only = true;
                i += 1;
                continue;
            }
            "--worker" => {
                args.worker_mode = true;
                i += 1;
                continue;
            }
            "--progress" => {
                args.progress = true;
                i += 1;
                continue;
            }
            "--speculative" => {
                args.speculative = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| usage(format!("missing value for `{flag}`")))?;
        match flag {
            "--apps" => {
                args.apps = parse_list(value, "app id", |s| {
                    s.parse::<u8>().ok().and_then(AppSpec::by_id)
                })?;
            }
            "--machines" => {
                args.machines = parse_list(value, "machine", machine_by_name)?;
            }
            "--schemes" => {
                args.schemes = parse_list(value, "scheme", parse_scheme)?;
            }
            "--thresholds" => {
                args.thresholds = parse_list(value, "threshold percentile", parse_threshold)?;
            }
            "--magnitudes" => {
                args.magnitudes = parse_list(value, "magnitude", |s| s.parse::<f64>().ok())?;
            }
            "--iterations" => {
                args.iterations = value
                    .parse()
                    .map_err(|_| usage(format!("invalid iteration count `{value}`")))?;
            }
            "--trials" => {
                args.trials = value
                    .parse()
                    .map_err(|_| usage(format!("invalid trial count `{value}`")))?;
            }
            "--seed" => {
                args.seed = value
                    .parse()
                    .map_err(|_| usage(format!("invalid seed `{value}`")))?;
            }
            "--threads" => {
                args.threads = Some(
                    value
                        .parse()
                        .map_err(|_| usage(format!("invalid thread count `{value}`")))?,
                );
            }
            "--inner-threads" => {
                args.inner_threads = value
                    .parse()
                    .map_err(|_| usage(format!("invalid inner-thread count `{value}`")))?;
            }
            "--batch-lanes" => {
                // The SoA engine is built for lane widths 4 and 8 (half and
                // full register); anything else silently degrades, so it is
                // a hard error rather than a clamp.
                args.batch_lanes = match value.parse::<usize>() {
                    Ok(n @ (1 | 4 | 8)) => n,
                    _ => {
                        return Err(usage(format!(
                            "invalid --batch-lanes `{value}`: must be 1, 4, or 8"
                        )))
                    }
                };
            }
            "--workers" => {
                args.workers = value
                    .parse()
                    .map_err(|_| usage(format!("invalid worker count `{value}`")))?;
            }
            "--connect" => {
                args.connect = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--serve" => {
                args.serve = Some(value.clone());
            }
            "--token" => {
                args.token = value.clone();
            }
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(value));
            }
            "--max-respawns" => {
                args.max_respawns = value
                    .parse()
                    .map_err(|_| usage(format!("invalid respawn budget `{value}`")))?;
            }
            "--jsonl" => {
                args.jsonl = Some(PathBuf::from(value));
            }
            "--assign-timeout" => {
                args.assign_timeout = Some(parse_secs(flag, value)?);
            }
            "--heartbeat" => {
                args.heartbeat = Some(parse_secs(flag, value)?);
            }
            "--handshake-timeout" => {
                args.handshake_timeout = Some(parse_secs(flag, value)?);
            }
            "--connect-timeout" => {
                args.connect_timeout = Some(parse_secs(flag, value)?);
            }
            "--quarantine-after" => {
                args.quarantine_after = match value.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        return Err(usage(format!(
                            "invalid --quarantine-after `{value}`: must be a positive strike count"
                        )))
                    }
                };
            }
            "--chaos-plan" => {
                args.chaos_plan = Some(PathBuf::from(value));
            }
            "--chaos-seed" => {
                args.chaos_seed = Some(
                    value
                        .parse()
                        .map_err(|_| usage(format!("invalid chaos seed `{value}`")))?,
                );
            }
            // Hidden: a concrete fault plan the coordinator resolved and
            // forwarded to its spawned workers (never needed by hand).
            "--chaos-json" => {
                args.chaos_json = Some(value.clone());
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(value));
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(value));
            }
            "--name" => {
                args.name = value.clone();
            }
            "--daemon" => {
                args.daemon = Some(value.clone());
            }
            "--state-dir" => {
                args.state_dir = Some(PathBuf::from(value));
            }
            "--tenants" => {
                args.tenants = parse_tenants(value)?;
            }
            "--report-dir" => {
                args.report_dir = Some(PathBuf::from(value));
            }
            "--register" => {
                args.register = Some(value.clone());
            }
            "--worker-name" => {
                args.worker_name = Some(value.clone());
            }
            "--deregister-after" => {
                args.deregister_after = Some(value.parse().map_err(|_| {
                    usage(format!("invalid --deregister-after `{value}`: batch count"))
                })?);
            }
            "--to" => {
                args.to = Some(value.clone());
            }
            "--priority" => {
                args.priority = value
                    .parse()
                    .map_err(|_| usage(format!("invalid priority `{value}`")))?;
            }
            "--job" => {
                args.job = Some(
                    value
                        .parse()
                        .map_err(|_| usage(format!("invalid job id `{value}`")))?,
                );
            }
            other => return Err(usage(format!("unknown flag `{other}`"))),
        }
        i += 2;
    }
    validate(&args).map_err(CliError::Conflict)?;
    Ok(args)
}

/// The single typed flag-compatibility pass: every cross-flag rule the
/// binary enforces, checked over the fully-parsed [`Args`]. Returns the
/// first conflict in a fixed order, so error messages are deterministic.
pub fn validate(args: &Args) -> Result<(), ConfigConflict> {
    use ConfigConflict as C;
    let distributed = args.workers > 0 || !args.connect.is_empty();
    let any_pool = distributed || args.serve.is_some() || args.worker_mode;
    // A grid is required by every mode that expands one (everything except
    // the client verbs that carry no grid: status/cancel/drain).
    let needs_grid = !matches!(
        args.command,
        Some(ClientVerb::Status) | Some(ClientVerb::Cancel) | Some(ClientVerb::Drain)
    );
    if needs_grid
        && (args.apps.is_empty() || (args.schemes.is_empty() && args.thresholds.is_empty()))
    {
        return Err(C::EmptyGrid);
    }
    // --- mutually exclusive top-level modes ---
    if args.daemon.is_some() && (any_pool || args.register.is_some() || args.command.is_some()) {
        return Err(C::DaemonWithPool);
    }
    if args.register.is_some() && (any_pool || args.command.is_some()) {
        return Err(C::RegisterWithPool);
    }
    if args.serve.is_some() && (distributed || args.worker_mode) {
        return Err(C::ServeWithPool);
    }
    // --- journaling/streaming placement ---
    let journal_flags =
        args.checkpoint.is_some() || args.resume || args.jsonl.is_some() || args.summary_only;
    if args.serve.is_some() && journal_flags {
        // Journaling and streaming live on the coordinator; a daemon that
        // silently ignored them would fake durability.
        return Err(C::ServeWithJournal);
    }
    if args.daemon.is_some() && journal_flags {
        return Err(C::DaemonWithJournal);
    }
    if args.register.is_some() && journal_flags {
        return Err(C::RegisterWithJournal);
    }
    if args.resume && args.checkpoint.is_none() {
        return Err(C::ResumeWithoutCheckpoint);
    }
    let plain_run =
        !any_pool && args.daemon.is_none() && args.register.is_none() && args.command.is_none();
    if plain_run {
        if args.checkpoint.is_some() || args.resume {
            // Only the sharded coordinator journals; refusing beats silently
            // running an unresumable campaign.
            return Err(C::JournalNeedsSharding);
        }
        if args.summary_only {
            return Err(C::SummaryOnlyNeedsSharding);
        }
    }
    if args.summary_only && args.jsonl.is_none() {
        return Err(C::SummaryOnlyNeedsJsonl);
    }
    if args.batch_lanes > 1 && (any_pool || args.daemon.is_some() || args.register.is_some()) {
        // Cluster workers execute arbitrary spec subsets one at a time, so
        // lane grouping cannot apply there; refusing beats silently running
        // without the requested batching.
        return Err(C::BatchLanesDistributed);
    }
    // --- flags that only configure one side ---
    if args.serve.is_some()
        && (args.assign_timeout.is_some()
            || args.connect_timeout.is_some()
            || args.speculative
            || args.quarantine_after.is_some())
    {
        return Err(C::ServeWithResilience);
    }
    if let (Some(heartbeat), Some(deadline)) = (args.heartbeat, args.assign_timeout) {
        if heartbeat >= deadline {
            // A keepalive slower than the deadline can never land in time,
            // so every slow batch would be misread as a hang.
            return Err(C::HeartbeatSlowerThanDeadline);
        }
    }
    if args.serve.is_some()
        && (args.metrics_out.is_some() || args.trace_out.is_some() || args.progress)
    {
        // A daemon never "completes": there is no natural point to write
        // artifacts, and its stdout belongs to operators' scripts.
        return Err(C::ServeWithObservability);
    }
    // --- chaos ---
    if args.chaos_plan.is_some() && args.chaos_seed.is_some() {
        return Err(C::ChaosPlanAndSeed);
    }
    let chaos_requested =
        args.chaos_plan.is_some() || args.chaos_seed.is_some() || args.chaos_json.is_some();
    if chaos_requested && !any_pool {
        return Err(C::ChaosNeedsWorkers);
    }
    // --- service-mode flag placement ---
    if args.daemon.is_none() {
        if args.state_dir.is_some() {
            return Err(C::DaemonFlagOutsideDaemon("--state-dir"));
        }
        if !args.tenants.is_empty() {
            return Err(C::DaemonFlagOutsideDaemon("--tenants"));
        }
        if args.report_dir.is_some() {
            return Err(C::DaemonFlagOutsideDaemon("--report-dir"));
        }
    }
    if args.register.is_none() {
        if args.worker_name.is_some() {
            return Err(C::RegisterFlagOutsideRegister("--worker-name"));
        }
        if args.deregister_after.is_some() {
            return Err(C::RegisterFlagOutsideRegister("--deregister-after"));
        }
    }
    // --- client verbs ---
    match args.command {
        Some(verb) => {
            if args.to.is_none() {
                return Err(C::ClientNeedsTo);
            }
            if verb == ClientVerb::Cancel && args.job.is_none() {
                return Err(C::CancelNeedsJob);
            }
            if verb != ClientVerb::Cancel && args.job.is_some() {
                return Err(C::JobOutsideCancel);
            }
        }
        None => {
            if args.to.is_some() {
                // `--to` names a daemon to talk to; without a verb there is
                // nothing to say to it.
                return Err(C::ClientNeedsTo);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Args, CliError> {
        let argv: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        parse_args(&argv)
    }

    fn conflict(line: &str) -> ConfigConflict {
        match parse(line) {
            Err(CliError::Conflict(c)) => c,
            other => panic!("expected a conflict for `{line}`, got {other:?}"),
        }
    }

    #[test]
    fn defaults_parse_clean() {
        let args = parse("").unwrap();
        assert_eq!(args.trials, 1);
        assert!(args.command.is_none());
    }

    #[test]
    fn empty_grid_conflicts() {
        assert_eq!(
            conflict("--schemes , --thresholds ,"),
            ConfigConflict::EmptyGrid
        );
    }

    #[test]
    fn serve_with_pool_conflicts() {
        assert_eq!(
            conflict("--serve 0:0 --workers 2"),
            ConfigConflict::ServeWithPool
        );
        assert_eq!(
            conflict("--serve 0:0 --connect a:1"),
            ConfigConflict::ServeWithPool
        );
        assert_eq!(
            conflict("--serve 0:0 --worker"),
            ConfigConflict::ServeWithPool
        );
    }

    #[test]
    fn serve_with_journal_conflicts() {
        assert_eq!(
            conflict("--serve 0:0 --checkpoint c.jsonl"),
            ConfigConflict::ServeWithJournal
        );
    }

    #[test]
    fn resume_without_checkpoint_conflicts() {
        assert_eq!(
            conflict("--workers 2 --resume"),
            ConfigConflict::ResumeWithoutCheckpoint
        );
    }

    #[test]
    fn journal_needs_sharding_conflicts() {
        assert_eq!(
            conflict("--checkpoint c.jsonl"),
            ConfigConflict::JournalNeedsSharding
        );
    }

    #[test]
    fn summary_only_needs_sharding_conflicts() {
        assert_eq!(
            conflict("--summary-only"),
            ConfigConflict::SummaryOnlyNeedsSharding
        );
    }

    #[test]
    fn summary_only_needs_jsonl_conflicts() {
        assert_eq!(
            conflict("--workers 2 --summary-only"),
            ConfigConflict::SummaryOnlyNeedsJsonl
        );
    }

    #[test]
    fn batch_lanes_distributed_conflicts() {
        assert_eq!(
            conflict("--batch-lanes 4 --workers 2"),
            ConfigConflict::BatchLanesDistributed
        );
        assert_eq!(
            conflict("--batch-lanes 4 --register h:1"),
            ConfigConflict::BatchLanesDistributed
        );
    }

    #[test]
    fn serve_with_resilience_conflicts() {
        assert_eq!(
            conflict("--serve 0:0 --speculative"),
            ConfigConflict::ServeWithResilience
        );
        assert_eq!(
            conflict("--serve 0:0 --quarantine-after 2"),
            ConfigConflict::ServeWithResilience
        );
    }

    #[test]
    fn heartbeat_slower_than_deadline_conflicts() {
        assert_eq!(
            conflict("--workers 1 --heartbeat 5 --assign-timeout 5"),
            ConfigConflict::HeartbeatSlowerThanDeadline
        );
        assert!(parse("--workers 1 --heartbeat 1 --assign-timeout 5").is_ok());
    }

    #[test]
    fn serve_with_observability_conflicts() {
        assert_eq!(
            conflict("--serve 0:0 --progress"),
            ConfigConflict::ServeWithObservability
        );
    }

    #[test]
    fn chaos_plan_and_seed_conflicts() {
        assert_eq!(
            conflict("--workers 1 --chaos-plan p.json --chaos-seed 3"),
            ConfigConflict::ChaosPlanAndSeed
        );
    }

    #[test]
    fn chaos_needs_workers_conflicts() {
        assert_eq!(
            conflict("--chaos-seed 3"),
            ConfigConflict::ChaosNeedsWorkers
        );
    }

    #[test]
    fn daemon_with_pool_conflicts() {
        assert_eq!(
            conflict("--daemon 0:0 --workers 2"),
            ConfigConflict::DaemonWithPool
        );
        assert_eq!(
            conflict("--daemon 0:0 --serve 0:0"),
            ConfigConflict::DaemonWithPool
        );
        assert_eq!(
            conflict("--daemon 0:0 --register h:1"),
            ConfigConflict::DaemonWithPool
        );
        assert_eq!(
            conflict("status --daemon 0:0 --to h:1"),
            ConfigConflict::DaemonWithPool
        );
    }

    #[test]
    fn daemon_with_journal_conflicts() {
        assert_eq!(
            conflict("--daemon 0:0 --checkpoint c.jsonl"),
            ConfigConflict::DaemonWithJournal
        );
    }

    #[test]
    fn register_with_pool_conflicts() {
        assert_eq!(
            conflict("--register h:1 --workers 2"),
            ConfigConflict::RegisterWithPool
        );
        assert_eq!(
            conflict("status --register h:1 --to h:1"),
            ConfigConflict::RegisterWithPool
        );
    }

    #[test]
    fn register_with_journal_conflicts() {
        assert_eq!(
            conflict("--register h:1 --jsonl out.jsonl"),
            ConfigConflict::RegisterWithJournal
        );
    }

    #[test]
    fn daemon_flags_outside_daemon_conflict() {
        assert_eq!(
            conflict("--state-dir d"),
            ConfigConflict::DaemonFlagOutsideDaemon("--state-dir")
        );
        assert_eq!(
            conflict("--tenants a=b"),
            ConfigConflict::DaemonFlagOutsideDaemon("--tenants")
        );
        assert_eq!(
            conflict("--report-dir d"),
            ConfigConflict::DaemonFlagOutsideDaemon("--report-dir")
        );
    }

    #[test]
    fn register_flags_outside_register_conflict() {
        assert_eq!(
            conflict("--worker-name w"),
            ConfigConflict::RegisterFlagOutsideRegister("--worker-name")
        );
        assert_eq!(
            conflict("--deregister-after 1"),
            ConfigConflict::RegisterFlagOutsideRegister("--deregister-after")
        );
    }

    #[test]
    fn client_needs_to_conflicts() {
        assert_eq!(conflict("status"), ConfigConflict::ClientNeedsTo);
        assert_eq!(conflict("--to h:1"), ConfigConflict::ClientNeedsTo);
    }

    #[test]
    fn cancel_needs_job_conflicts() {
        assert_eq!(conflict("cancel --to h:1"), ConfigConflict::CancelNeedsJob);
        assert!(parse("cancel --to h:1 --job 3").is_ok());
    }

    #[test]
    fn job_outside_cancel_conflicts() {
        assert_eq!(
            conflict("status --to h:1 --job 3"),
            ConfigConflict::JobOutsideCancel
        );
    }

    #[test]
    fn valid_modes_parse_clean() {
        assert!(parse("--daemon 0:0 --tenants alice=a,bob=b --state-dir d --report-dir r").is_ok());
        assert!(parse("--register h:1 --worker-name w1 --deregister-after 2").is_ok());
        assert!(
            parse("submit --to h:1 --token t --priority 5 --apps 2 --schemes baseline").is_ok()
        );
        assert!(parse("drain --to h:1 --token t").is_ok());
        assert!(parse("--workers 2 --checkpoint c.jsonl --resume").is_ok());
    }

    #[test]
    fn tenant_pairs_parse_and_reject_malformed() {
        let args = parse("--daemon 0:0 --tenants alice=s3cret,bob=hunter2").unwrap();
        assert_eq!(
            args.tenants,
            vec![
                ("alice".to_string(), "s3cret".to_string()),
                ("bob".to_string(), "hunter2".to_string())
            ]
        );
        assert!(matches!(
            parse("--daemon 0:0 --tenants alice"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse("--daemon 0:0 --tenants =tok"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn exit_codes_are_typed() {
        let poisoned = ClusterError::PoisonedSpecs {
            indices: vec![1],
            completed: 3,
        };
        assert_eq!(exit_code_for(&poisoned), EXIT_POISONED);
        let rejected = ClusterError::Rejected {
            worker: 0,
            reason: "bad token".into(),
        };
        assert_eq!(exit_code_for(&rejected), EXIT_REJECTED);
        assert_eq!(exit_code_for(&ClusterError::Io("x".into())), EXIT_FAILURE);
        use crate::service::ServiceError;
        use qismet_cluster::ServiceErrKind;
        let bad = ServiceError::Refused {
            kind: ServiceErrKind::BadToken,
            detail: String::new(),
        };
        assert_eq!(exit_code_for_service(&bad), EXIT_REJECTED);
        let dup = ServiceError::Refused {
            kind: ServiceErrKind::DuplicateFingerprint,
            detail: String::new(),
        };
        assert_eq!(exit_code_for_service(&dup), EXIT_FAILURE);
    }

    #[test]
    fn help_is_not_a_conflict() {
        assert_eq!(parse("--help").unwrap_err(), CliError::Help);
    }
}

//! Shared harness utilities for the per-figure/table benchmark binaries.
//!
//! Every figure and table in the paper's evaluation has a bench target in
//! `benches/` that declares its sweep as a [`Campaign`] (or a custom spec
//! list for non-scheme workloads) and runs it through the [`SweepExecutor`]
//! — sequentially, or across threads under the `parallel` feature. This
//! crate hosts the engine ([`scenario`], [`executor`], [`report`]), the
//! scheme runners, and the iteration-scale control (`QISMET_BENCH_SCALE`)
//! for quick smoke runs.

pub mod cli;
pub mod distributed;
pub mod executor;
pub mod report;
pub mod scenario;
pub mod service;

pub use distributed::{
    run_campaign_distributed, serve_campaign, serve_session, serve_worker, DistributedOptions,
    DistributedStats, SessionOutcome, WorkerOptions, DROP_AFTER_ENV, EXIT_AFTER_ENV,
    MAX_SESSIONS_ENV,
};
pub use executor::{run_campaign, run_one, try_run_one, ExecutorError, SweepExecutor};
pub use report::{
    bootstrap_ci, downsample, f2, f4, final_window, geomean_ratios, paired_scheme_test,
    print_table, read_runs_jsonl, reaggregate_runs_jsonl, results_dir, trailing_mean, write_csv,
    BootstrapCi, CampaignReport, PairedTest, ReportMeta, RunRecord, RunsJsonlWriter,
};
pub use scenario::{
    parse_scheme, parse_threshold, run_seed, Campaign, CampaignGrid, RunKind, RunSpec,
    ScenarioSpec, SeedSpec,
};
pub use service::{
    cancel_job, drain_service, job_status, machine_by_name, register_worker, scheme_cli_name,
    submit_job, CampaignPlanner, GridSpec, RegisterOptions, RegisterStats, ServiceError,
};

use qismet::{
    run_filtered_baseline, run_only_transients_budgeted, run_qismet_budgeted, QismetConfig,
};
use qismet_filters::{KalmanFilter, OnlyTransientsPolicy};
use qismet_optim::{BlockingPolicy, GainSchedule, Proposer, SecondOrderSpsa, Spsa};
use qismet_qsim::BackendPool;
use qismet_vqa::{
    run_tuning, run_tuning_lockstep, AppInstance, AppSpec, NoisyObjective, TuningLane, TuningScheme,
};
use std::cell::RefCell;

thread_local! {
    // One backend pool per worker thread (the sweep executor's workers are
    // plain scoped threads, so `thread_local!` is exactly per-worker): every
    // run on a worker shares one scratch statevector and one compiled-plan
    // cache per qubit count, instead of allocating a fresh
    // CachedStatevectorBackend per run (ROADMAP "cross-run backend
    // sharing"). Results are unchanged by the sharing — the Backend
    // contract — which `campaign_engine` pins by test.
    static WORKER_BACKENDS: RefCell<BackendPool> = RefCell::new(BackendPool::new());
}

/// Sets the in-state (statevector kernel) thread count for every backend the
/// *current worker thread* hands out from here on. The sweep executor calls
/// this on each worker before it starts pulling specs, which is how the
/// `--inner-threads` knob splits run-level parallelism (executor workers)
/// from state-level parallelism (threaded apply/expectation inside one run).
///
/// `0` and `1` both mean sequential kernels. Rebuilding the pool drops the
/// cached plans/scratch, so this is meant to be called once per worker, not
/// per run. Results are unchanged by the setting — the threaded kernels are
/// bit-identical to the sequential sweep, which the qsim suite pins.
pub fn set_worker_inner_threads(inner_threads: usize) {
    WORKER_BACKENDS.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.inner_threads() != inner_threads {
            *pool = BackendPool::with_inner_threads(inner_threads);
        }
    });
}

/// Scale factor for iteration counts, read from `QISMET_BENCH_SCALE`
/// (e.g. `0.1` for a 10x faster smoke run). Defaults to 1.
pub fn bench_scale() -> f64 {
    std::env::var("QISMET_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Applies the bench scale to an iteration count (minimum 20).
pub fn scaled(iterations: usize) -> usize {
    ((iterations as f64 * bench_scale()) as usize).max(20)
}

/// The comparison schemes of Section 6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Traditional VQA (measurement-error-mitigated, no transient handling).
    Baseline,
    /// QISMET at the paper's default 90p threshold.
    Qismet,
    /// QISMET-conservative (99p).
    QismetConservative,
    /// QISMET-aggressive (75p).
    QismetAggressive,
    /// Blocking SPSA.
    Blocking,
    /// Resampling SPSA (2 gradient samples).
    Resampling,
    /// 2nd-order SPSA.
    SecondOrder,
    /// Best Kalman instance from the Fig. 16 grid (oracle-tuned).
    KalmanBest,
    /// Only-Transients skipping at a percentile.
    OnlyTransients(u32),
    /// QISMET at an arbitrary |Tm| threshold percentile in `1..=99` (the
    /// Fig. 19 sensitivity axis, generalized). The paper's named points
    /// map onto their presets exactly: `QismetAt(90)` runs bit-identically
    /// to [`Scheme::Qismet`], 99 to conservative, 75 to aggressive.
    QismetAt(u32),
}

impl Scheme {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            Scheme::Baseline => "Baseline".into(),
            Scheme::Qismet => "QISMET".into(),
            Scheme::QismetConservative => "QISMET-conservative (99p)".into(),
            Scheme::QismetAggressive => "QISMET-aggressive (75p)".into(),
            Scheme::Blocking => "Blocking".into(),
            Scheme::Resampling => "Resampling".into(),
            Scheme::SecondOrder => "2nd-order".into(),
            Scheme::KalmanBest => "Kalman (Best)".into(),
            Scheme::OnlyTransients(p) => format!("Only-transients {p}p"),
            Scheme::QismetAt(p) => format!("QISMET ({p}p)"),
        }
    }
}

/// Outcome of one scheme run.
#[derive(Debug, Clone)]
pub struct SchemeOutcome {
    /// Scheme identity.
    pub scheme: Scheme,
    /// Per-iteration measured (or filtered, for Kalman) energies.
    pub series: Vec<f64>,
    /// Final energy (trailing-window mean of `series`).
    pub final_energy: f64,
    /// Quantum jobs consumed.
    pub jobs: usize,
    /// Circuit-level evaluations consumed.
    pub evals: u64,
    /// Skipped/rejected attempts.
    pub skips: usize,
}

fn fresh_app(spec: &AppSpec, iterations: usize, magnitude: Option<f64>, seed: u64) -> AppInstance {
    // Trace capacity: every iteration may burn 1 + retry_budget jobs.
    let capacity = iterations * 7 + 16;
    let backend = WORKER_BACKENDS.with(|pool| pool.borrow_mut().backend_for(spec.n_qubits));
    spec.build_with_backend(capacity, magnitude, seed, backend)
}

fn spsa_for(app: &AppInstance, seed: u64) -> Spsa {
    Spsa::new(app.theta0.len(), GainSchedule::vqa_paper(), seed)
}

/// Runs one scheme on a fresh instance of `spec` (same seed => same
/// transient trace and theta0 across schemes, so results are directly
/// comparable).
pub fn run_scheme(
    spec: &AppSpec,
    scheme: Scheme,
    iterations: usize,
    magnitude: Option<f64>,
    seed: u64,
) -> SchemeOutcome {
    let window = final_window(iterations);
    let mut app = fresh_app(spec, iterations, magnitude, seed);
    let opt_seed = qismet_mathkit::derive_seed(seed, 0xa11);
    match scheme {
        Scheme::Baseline => {
            let mut spsa = spsa_for(&app, opt_seed);
            let rec = run_tuning(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Baseline,
            );
            outcome(scheme, rec.measured.clone(), window, rec.jobs, rec.evals, 0)
        }
        Scheme::Qismet
        | Scheme::QismetConservative
        | Scheme::QismetAggressive
        | Scheme::QismetAt(_) => {
            let cfg = match scheme {
                Scheme::QismetConservative => QismetConfig::conservative(),
                Scheme::QismetAggressive => QismetConfig::aggressive(),
                // The paper's named percentiles snap to their presets so
                // e.g. QismetAt(90) is bit-identical to Qismet; other
                // percentiles become custom skip targets.
                Scheme::QismetAt(99) => QismetConfig::conservative(),
                Scheme::QismetAt(75) => QismetConfig::aggressive(),
                Scheme::QismetAt(p) if p != 90 => QismetConfig {
                    skip_target: qismet::SkipTarget::Custom((100 - p.clamp(1, 99)) as f64 / 100.0),
                    ..QismetConfig::paper_default()
                },
                _ => QismetConfig::paper_default(),
            };
            let mut spsa = spsa_for(&app, opt_seed);
            // Job-budgeted: skipped (repeated) jobs consume the same device
            // budget as productive iterations, as in the paper's accounting.
            let rec = run_qismet_budgeted(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                iterations + 1,
                cfg,
            );
            outcome(
                scheme,
                rec.record.measured.clone(),
                window,
                rec.record.jobs,
                rec.record.evals,
                rec.skips,
            )
        }
        Scheme::Blocking => {
            let mut spsa = spsa_for(&app, opt_seed);
            let rec = run_tuning(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Blocking(BlockingPolicy::adaptive(0.05)),
            );
            outcome(
                scheme,
                rec.measured.clone(),
                window,
                rec.jobs,
                rec.evals,
                rec.rejected,
            )
        }
        Scheme::Resampling => {
            let mut spsa =
                Spsa::with_resampling(app.theta0.len(), GainSchedule::vqa_paper(), opt_seed, 2);
            let rec = run_tuning(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Baseline,
            );
            outcome(scheme, rec.measured.clone(), window, rec.jobs, rec.evals, 0)
        }
        Scheme::SecondOrder => {
            let mut opt =
                SecondOrderSpsa::new(app.theta0.len(), GainSchedule::vqa_paper(), opt_seed);
            let rec = run_tuning(
                &mut opt,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Baseline,
            );
            outcome(scheme, rec.measured.clone(), window, rec.jobs, rec.evals, 0)
        }
        Scheme::KalmanBest => {
            let mut best: Option<SchemeOutcome> = None;
            for filter in KalmanFilter::fig16_grid() {
                let out = run_kalman_instance(spec, filter, iterations, magnitude, seed);
                if best
                    .as_ref()
                    .map(|b| out.final_energy < b.final_energy)
                    .unwrap_or(true)
                {
                    best = Some(out);
                }
            }
            let mut b = best.expect("non-empty grid");
            b.scheme = Scheme::KalmanBest;
            b
        }
        Scheme::OnlyTransients(pct) => {
            let mut spsa = spsa_for(&app, opt_seed);
            let rec = run_only_transients_budgeted(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                iterations + 1,
                OnlyTransientsPolicy::new(pct as f64),
                5,
            );
            outcome(
                scheme,
                rec.record.measured.clone(),
                window,
                rec.record.jobs,
                rec.record.evals,
                rec.skips,
            )
        }
    }
}

/// Whether `scheme` can run its independent trials in lockstep through the
/// lane-batched statevector engine. True for the plain [`run_tuning`]-driven
/// schemes (Baseline, Blocking, Resampling, 2nd-order); the QISMET /
/// Only-Transients / Kalman loops have per-iteration retry control flow that
/// stays on the scalar path for now.
pub fn lockstep_capable(scheme: Scheme) -> bool {
    matches!(
        scheme,
        Scheme::Baseline | Scheme::Blocking | Scheme::Resampling | Scheme::SecondOrder
    )
}

/// Runs `seeds.len()` independent trials of `scheme` on `spec` in
/// **lockstep**: one trajectory per lane, every evaluation site a cross-lane
/// batch the SoA engine executes in one lane-batched state. Each outcome is
/// bitwise identical to [`run_scheme`] at the same seed — lanes keep their
/// own transient trace, RNG, and optimizer state — so this is purely a
/// throughput knob. Schemes that are not [`lockstep_capable`] (and
/// single-seed calls) fall back to sequential [`run_scheme`] calls.
pub fn run_scheme_lockstep(
    spec: &AppSpec,
    scheme: Scheme,
    iterations: usize,
    magnitude: Option<f64>,
    seeds: &[u64],
) -> Vec<SchemeOutcome> {
    if !lockstep_capable(scheme) || seeds.len() <= 1 {
        return seeds
            .iter()
            .map(|&s| run_scheme(spec, scheme, iterations, magnitude, s))
            .collect();
    }
    let window = final_window(iterations);
    let mut apps: Vec<AppInstance> = seeds
        .iter()
        .map(|&s| fresh_app(spec, iterations, magnitude, s))
        .collect();
    let mut proposers: Vec<Box<dyn Proposer>> = seeds
        .iter()
        .zip(&apps)
        .map(|(&s, app)| {
            let opt_seed = qismet_mathkit::derive_seed(s, 0xa11);
            let n = app.theta0.len();
            match scheme {
                Scheme::Resampling => Box::new(Spsa::with_resampling(
                    n,
                    GainSchedule::vqa_paper(),
                    opt_seed,
                    2,
                )) as Box<dyn Proposer>,
                Scheme::SecondOrder => {
                    Box::new(SecondOrderSpsa::new(n, GainSchedule::vqa_paper(), opt_seed))
                }
                _ => Box::new(Spsa::new(n, GainSchedule::vqa_paper(), opt_seed)),
            }
        })
        .collect();
    let tuning = match scheme {
        Scheme::Blocking => TuningScheme::Blocking(BlockingPolicy::adaptive(0.05)),
        _ => TuningScheme::Baseline,
    };
    let mut lanes: Vec<TuningLane<'_>> = proposers
        .iter_mut()
        .zip(apps.iter_mut())
        .map(|(p, app)| TuningLane {
            proposer: p.as_mut(),
            objective: &mut app.objective,
            theta0: app.theta0.clone(),
        })
        .collect();
    let records = run_tuning_lockstep(&mut lanes, iterations, tuning);
    drop(lanes);
    records
        .into_iter()
        .map(|rec| {
            let skips = if scheme == Scheme::Blocking {
                rec.rejected
            } else {
                0
            };
            outcome(scheme, rec.measured, window, rec.jobs, rec.evals, skips)
        })
        .collect()
}

/// Runs one specific Kalman instance (for the Fig. 16 grid plot).
pub fn run_kalman_instance(
    spec: &AppSpec,
    mut filter: KalmanFilter,
    iterations: usize,
    magnitude: Option<f64>,
    seed: u64,
) -> SchemeOutcome {
    let window = final_window(iterations);
    let mut app = fresh_app(spec, iterations, magnitude, seed);
    let opt_seed = qismet_mathkit::derive_seed(seed, 0xa11);
    let mut spsa = spsa_for(&app, opt_seed);
    let (rec, filtered) = run_filtered_baseline(
        &mut spsa,
        &mut app.objective,
        app.theta0.clone(),
        iterations,
        &mut filter,
    );
    outcome(Scheme::KalmanBest, filtered, window, rec.jobs, rec.evals, 0)
}

fn outcome(
    scheme: Scheme,
    series: Vec<f64>,
    window: usize,
    jobs: usize,
    evals: u64,
    skips: usize,
) -> SchemeOutcome {
    let n = series.len();
    let final_energy = qismet_mathkit::mean(&series[n.saturating_sub(window)..]);
    SchemeOutcome {
        scheme,
        series,
        final_energy,
        jobs,
        evals,
        skips,
    }
}

/// Exposes the underlying noisy objective for custom harnesses.
pub fn build_objective(
    spec: &AppSpec,
    iterations: usize,
    magnitude: Option<f64>,
    seed: u64,
) -> NoisyObjective {
    fresh_app(spec, iterations, magnitude, seed).objective
}

//! Shared harness utilities for the per-figure/table benchmark binaries.
//!
//! Every figure and table in the paper's evaluation has a bench target in
//! `benches/` that prints the corresponding series/rows and writes a CSV
//! under `target/paper_results/`. This crate hosts the common machinery:
//! scheme runners, table printing, CSV output, and the iteration-scale
//! control (`QISMET_BENCH_SCALE`) for quick smoke runs.

use qismet::{
    run_filtered_baseline, run_only_transients_budgeted, run_qismet_budgeted, QismetConfig,
};
use qismet_filters::{KalmanFilter, OnlyTransientsPolicy};
use qismet_optim::{BlockingPolicy, GainSchedule, SecondOrderSpsa, Spsa};
use qismet_vqa::{run_tuning, AppInstance, AppSpec, NoisyObjective, TuningScheme};
use std::io::Write as _;
use std::path::PathBuf;

/// Scale factor for iteration counts, read from `QISMET_BENCH_SCALE`
/// (e.g. `0.1` for a 10x faster smoke run). Defaults to 1.
pub fn bench_scale() -> f64 {
    std::env::var("QISMET_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Applies the bench scale to an iteration count (minimum 20).
pub fn scaled(iterations: usize) -> usize {
    ((iterations as f64 * bench_scale()) as usize).max(20)
}

/// Trailing window used for "final expectation" summaries: 5% of the run,
/// at least 10 iterations.
pub fn final_window(iterations: usize) -> usize {
    (iterations / 20).max(10)
}

/// The comparison schemes of Section 6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Traditional VQA (measurement-error-mitigated, no transient handling).
    Baseline,
    /// QISMET at the paper's default 90p threshold.
    Qismet,
    /// QISMET-conservative (99p).
    QismetConservative,
    /// QISMET-aggressive (75p).
    QismetAggressive,
    /// Blocking SPSA.
    Blocking,
    /// Resampling SPSA (2 gradient samples).
    Resampling,
    /// 2nd-order SPSA.
    SecondOrder,
    /// Best Kalman instance from the Fig. 16 grid (oracle-tuned).
    KalmanBest,
    /// Only-Transients skipping at a percentile.
    OnlyTransients(u32),
}

impl Scheme {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            Scheme::Baseline => "Baseline".into(),
            Scheme::Qismet => "QISMET".into(),
            Scheme::QismetConservative => "QISMET-conservative (99p)".into(),
            Scheme::QismetAggressive => "QISMET-aggressive (75p)".into(),
            Scheme::Blocking => "Blocking".into(),
            Scheme::Resampling => "Resampling".into(),
            Scheme::SecondOrder => "2nd-order".into(),
            Scheme::KalmanBest => "Kalman (Best)".into(),
            Scheme::OnlyTransients(p) => format!("Only-transients {p}p"),
        }
    }
}

/// Outcome of one scheme run.
#[derive(Debug, Clone)]
pub struct SchemeOutcome {
    /// Scheme identity.
    pub scheme: Scheme,
    /// Per-iteration measured (or filtered, for Kalman) energies.
    pub series: Vec<f64>,
    /// Final energy (trailing-window mean of `series`).
    pub final_energy: f64,
    /// Quantum jobs consumed.
    pub jobs: usize,
    /// Circuit-level evaluations consumed.
    pub evals: u64,
    /// Skipped/rejected attempts.
    pub skips: usize,
}

fn fresh_app(spec: &AppSpec, iterations: usize, magnitude: Option<f64>, seed: u64) -> AppInstance {
    // Trace capacity: every iteration may burn 1 + retry_budget jobs.
    let capacity = iterations * 7 + 16;
    spec.build(capacity, magnitude, seed)
}

fn spsa_for(app: &AppInstance, seed: u64) -> Spsa {
    Spsa::new(app.theta0.len(), GainSchedule::vqa_paper(), seed)
}

/// Runs one scheme on a fresh instance of `spec` (same seed => same
/// transient trace and theta0 across schemes, so results are directly
/// comparable).
pub fn run_scheme(
    spec: &AppSpec,
    scheme: Scheme,
    iterations: usize,
    magnitude: Option<f64>,
    seed: u64,
) -> SchemeOutcome {
    let window = final_window(iterations);
    let mut app = fresh_app(spec, iterations, magnitude, seed);
    let opt_seed = qismet_mathkit::derive_seed(seed, 0xa11);
    match scheme {
        Scheme::Baseline => {
            let mut spsa = spsa_for(&app, opt_seed);
            let rec = run_tuning(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Baseline,
            );
            outcome(scheme, rec.measured.clone(), window, rec.jobs, rec.evals, 0)
        }
        Scheme::Qismet | Scheme::QismetConservative | Scheme::QismetAggressive => {
            let cfg = match scheme {
                Scheme::QismetConservative => QismetConfig::conservative(),
                Scheme::QismetAggressive => QismetConfig::aggressive(),
                _ => QismetConfig::paper_default(),
            };
            let mut spsa = spsa_for(&app, opt_seed);
            // Job-budgeted: skipped (repeated) jobs consume the same device
            // budget as productive iterations, as in the paper's accounting.
            let rec = run_qismet_budgeted(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                iterations + 1,
                cfg,
            );
            outcome(
                scheme,
                rec.record.measured.clone(),
                window,
                rec.record.jobs,
                rec.record.evals,
                rec.skips,
            )
        }
        Scheme::Blocking => {
            let mut spsa = spsa_for(&app, opt_seed);
            let rec = run_tuning(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Blocking(BlockingPolicy::adaptive(0.05)),
            );
            outcome(
                scheme,
                rec.measured.clone(),
                window,
                rec.jobs,
                rec.evals,
                rec.rejected,
            )
        }
        Scheme::Resampling => {
            let mut spsa =
                Spsa::with_resampling(app.theta0.len(), GainSchedule::vqa_paper(), opt_seed, 2);
            let rec = run_tuning(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Baseline,
            );
            outcome(scheme, rec.measured.clone(), window, rec.jobs, rec.evals, 0)
        }
        Scheme::SecondOrder => {
            let mut opt =
                SecondOrderSpsa::new(app.theta0.len(), GainSchedule::vqa_paper(), opt_seed);
            let rec = run_tuning(
                &mut opt,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                TuningScheme::Baseline,
            );
            outcome(scheme, rec.measured.clone(), window, rec.jobs, rec.evals, 0)
        }
        Scheme::KalmanBest => {
            let mut best: Option<SchemeOutcome> = None;
            for filter in KalmanFilter::fig16_grid() {
                let out = run_kalman_instance(spec, filter, iterations, magnitude, seed);
                if best
                    .as_ref()
                    .map(|b| out.final_energy < b.final_energy)
                    .unwrap_or(true)
                {
                    best = Some(out);
                }
            }
            let mut b = best.expect("non-empty grid");
            b.scheme = Scheme::KalmanBest;
            b
        }
        Scheme::OnlyTransients(pct) => {
            let mut spsa = spsa_for(&app, opt_seed);
            let rec = run_only_transients_budgeted(
                &mut spsa,
                &mut app.objective,
                app.theta0.clone(),
                iterations,
                iterations + 1,
                OnlyTransientsPolicy::new(pct as f64),
                5,
            );
            outcome(
                scheme,
                rec.record.measured.clone(),
                window,
                rec.record.jobs,
                rec.record.evals,
                rec.skips,
            )
        }
    }
}

/// Runs one specific Kalman instance (for the Fig. 16 grid plot).
pub fn run_kalman_instance(
    spec: &AppSpec,
    mut filter: KalmanFilter,
    iterations: usize,
    magnitude: Option<f64>,
    seed: u64,
) -> SchemeOutcome {
    let window = final_window(iterations);
    let mut app = fresh_app(spec, iterations, magnitude, seed);
    let opt_seed = qismet_mathkit::derive_seed(seed, 0xa11);
    let mut spsa = spsa_for(&app, opt_seed);
    let (rec, filtered) = run_filtered_baseline(
        &mut spsa,
        &mut app.objective,
        app.theta0.clone(),
        iterations,
        &mut filter,
    );
    outcome(Scheme::KalmanBest, filtered, window, rec.jobs, rec.evals, 0)
}

fn outcome(
    scheme: Scheme,
    series: Vec<f64>,
    window: usize,
    jobs: usize,
    evals: u64,
    skips: usize,
) -> SchemeOutcome {
    let n = series.len();
    let final_energy = qismet_mathkit::mean(&series[n.saturating_sub(window)..]);
    SchemeOutcome {
        scheme,
        series,
        final_energy,
        jobs,
        evals,
        skips,
    }
}

/// Exposes the underlying noisy objective for custom harnesses.
pub fn build_objective(
    spec: &AppSpec,
    iterations: usize,
    magnitude: Option<f64>,
    seed: u64,
) -> NoisyObjective {
    fresh_app(spec, iterations, magnitude, seed).objective
}

/// Directory where harnesses drop their CSV artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/paper_results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file under [`results_dir`].
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("[csv] wrote {}", path.display());
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Downsamples a series to at most ~`points` entries for compact printing.
pub fn downsample(series: &[f64], points: usize) -> Vec<(usize, f64)> {
    if series.is_empty() || points == 0 {
        return Vec::new();
    }
    let stride = (series.len() / points).max(1);
    series
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i == series.len() - 1)
        .map(|(i, &v)| (i, v))
        .collect()
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a ratio with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

//! Campaign result records, aggregation helpers, and artifact writers.
//!
//! Every run executed by the sweep engine produces one serializable
//! [`RunRecord`]; a whole campaign's worth is a [`CampaignReport`] that can
//! be written as JSON (full fidelity, including series) or CSV (summary
//! rows) under `target/paper_results/`. The aggregation helpers
//! (trailing-window means, geometric means over grouped ratios) replace the
//! per-figure copies of that logic the bench binaries used to hand-roll.

use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::PathBuf;

/// Outcome of one campaign run, with enough identity (app, machine, scheme,
/// grid coordinates, seed) to regroup and re-aggregate offline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Scenario label (defaults to the scheme display name).
    pub label: String,
    /// Application name (`"App2"`).
    pub app: String,
    /// Machine profile name.
    pub machine: String,
    /// Scheme display name.
    pub scheme: String,
    /// Scenario index within the campaign.
    pub scenario: usize,
    /// Trial index within the scenario.
    pub trial: usize,
    /// Iterations the run was granted.
    pub iterations: usize,
    /// Transient magnitude override (`None` = machine native).
    pub magnitude: Option<f64>,
    /// The fully-resolved seed this run executed with.
    pub seed: u64,
    /// Final energy (trailing-window mean of `series`).
    pub final_energy: f64,
    /// Quantum jobs consumed.
    pub jobs: usize,
    /// Circuit-level evaluations consumed.
    pub evals: u64,
    /// Skipped/rejected attempts.
    pub skips: usize,
    /// Per-iteration measured (or filtered) energies.
    pub series: Vec<f64>,
}

/// A campaign's complete result set, in grid-expansion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name (used for artifact file names).
    pub name: String,
    /// Campaign master seed.
    pub seed: u64,
    /// One record per expanded run, in expansion order.
    pub records: Vec<RunRecord>,
}

impl CampaignReport {
    /// Records of one scenario, in trial order.
    pub fn scenario(&self, index: usize) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.scenario == index)
            .collect()
    }

    /// The single record of a one-trial scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has zero or multiple records.
    pub fn single(&self, index: usize) -> &RunRecord {
        let runs = self.scenario(index);
        assert_eq!(runs.len(), 1, "scenario {index} has {} runs", runs.len());
        runs[0]
    }

    /// Mean final energy across a scenario's trials.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no records.
    pub fn mean_final(&self, index: usize) -> f64 {
        let finals: Vec<f64> = self
            .scenario(index)
            .iter()
            .map(|r| r.final_energy)
            .collect();
        assert!(!finals.is_empty(), "scenario {index} has no records");
        qismet_mathkit::mean(&finals)
    }

    /// Total skips across a scenario's trials.
    pub fn total_skips(&self, index: usize) -> usize {
        self.scenario(index).iter().map(|r| r.skips).sum()
    }

    /// Writes the full report (series included) as pretty JSON under
    /// [`results_dir`], named `<name>.json` unless overridden.
    pub fn write_json(&self, file_name: Option<&str>) -> PathBuf {
        let name = file_name
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.json", self.name));
        let path = results_dir().join(name);
        let json = serde_json::to_string_pretty(self).expect("serialize report");
        std::fs::write(&path, json).expect("write json report");
        println!("[json] wrote {}", path.display());
        path
    }

    /// Writes one summary row per record (no series) as CSV under
    /// [`results_dir`], named `<name>_runs.csv` unless overridden.
    pub fn write_runs_csv(&self, file_name: Option<&str>) -> PathBuf {
        let name = file_name
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}_runs.csv", self.name));
        let rows: Vec<Vec<String>> = self
            .records
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.app.clone(),
                    r.machine.clone(),
                    r.scheme.clone(),
                    r.trial.to_string(),
                    r.iterations.to_string(),
                    r.magnitude.map(|m| format!("{m}")).unwrap_or_default(),
                    r.seed.to_string(),
                    format!("{:.6}", r.final_energy),
                    r.jobs.to_string(),
                    r.evals.to_string(),
                    r.skips.to_string(),
                ]
            })
            .collect();
        write_csv_at(
            &name,
            &[
                "label",
                "app",
                "machine",
                "scheme",
                "trial",
                "iterations",
                "magnitude",
                "seed",
                "final_energy",
                "jobs",
                "evals",
                "skips",
            ],
            &rows,
        )
    }
}

/// Trailing window used for "final expectation" summaries: 5% of the run,
/// at least 10 iterations.
pub fn final_window(iterations: usize) -> usize {
    (iterations / 20).max(10)
}

/// Mean over the trailing `window` entries of a series (the whole series if
/// shorter).
///
/// # Panics
///
/// Panics if the series is empty.
pub fn trailing_mean(series: &[f64], window: usize) -> f64 {
    assert!(!series.is_empty(), "trailing_mean of empty series");
    let n = series.len();
    qismet_mathkit::mean(&series[n.saturating_sub(window)..])
}

/// Geometric mean of per-record ratios against a baseline value.
pub fn geomean_ratios(finals: &[f64], baseline: f64) -> f64 {
    let ratios: Vec<f64> = finals.iter().map(|&f| f / baseline).collect();
    qismet_mathkit::geomean(&ratios)
}

/// Directory where harnesses drop their artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/paper_results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file under [`results_dir`].
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    write_csv_at(name, headers, rows);
}

fn write_csv_at(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("[csv] wrote {}", path.display());
    path
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Downsamples a series to at most ~`points` entries for compact printing.
pub fn downsample(series: &[f64], points: usize) -> Vec<(usize, f64)> {
    if series.is_empty() || points == 0 {
        return Vec::new();
    }
    let stride = (series.len() / points).max(1);
    series
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i == series.len() - 1)
        .map(|(i, &v)| (i, v))
        .collect()
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a ratio with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(scenario: usize, trial: usize, final_energy: f64) -> RunRecord {
        RunRecord {
            label: "QISMET".into(),
            app: "App2".into(),
            machine: "Guadalupe".into(),
            scheme: "QISMET".into(),
            scenario,
            trial,
            iterations: 100,
            magnitude: Some(0.25),
            seed: 7,
            final_energy,
            jobs: 100,
            evals: 700,
            skips: 3,
            series: vec![final_energy; 4],
        }
    }

    #[test]
    fn report_groups_and_aggregates() {
        let report = CampaignReport {
            name: "t".into(),
            seed: 1,
            records: vec![record(0, 0, -4.0), record(0, 1, -6.0), record(1, 0, -5.0)],
        };
        assert_eq!(report.scenario(0).len(), 2);
        assert!((report.mean_final(0) + 5.0).abs() < 1e-12);
        assert_eq!(report.single(1).final_energy, -5.0);
        assert_eq!(report.total_skips(0), 6);
    }

    #[test]
    fn record_json_roundtrip_is_exact() {
        let report = CampaignReport {
            name: "t".into(),
            seed: u64::MAX - 5,
            records: vec![record(0, 0, -4.125), record(2, 3, 0.1 + 0.2)],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(
            back.records[1].final_energy.to_bits(),
            report.records[1].final_energy.to_bits()
        );
    }

    #[test]
    fn trailing_mean_windows() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert!((trailing_mean(&s, 2) - 3.5).abs() < 1e-12);
        assert!((trailing_mean(&s, 10) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn final_window_floor() {
        assert_eq!(final_window(40), 10);
        assert_eq!(final_window(2000), 100);
    }
}

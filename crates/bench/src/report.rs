//! Campaign result records, aggregation helpers, and artifact writers.
//!
//! Every run executed by the sweep engine produces one serializable
//! [`RunRecord`]; a whole campaign's worth is a [`CampaignReport`] that can
//! be written as JSON (full fidelity, including series) or CSV (summary
//! rows) under `target/paper_results/`. The aggregation helpers
//! (trailing-window means, geometric means over grouped ratios) replace the
//! per-figure copies of that logic the bench binaries used to hand-roll.

use rand::Rng as _;
use serde::{Deserialize, Serialize};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Outcome of one campaign run, with enough identity (app, machine, scheme,
/// grid coordinates, seed) to regroup and re-aggregate offline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Scenario label (defaults to the scheme display name).
    pub label: String,
    /// Application name (`"App2"`).
    pub app: String,
    /// Machine profile name.
    pub machine: String,
    /// Scheme display name.
    pub scheme: String,
    /// Scenario index within the campaign.
    pub scenario: usize,
    /// Trial index within the scenario.
    pub trial: usize,
    /// Iterations the run was granted.
    pub iterations: usize,
    /// Transient magnitude override (`None` = machine native).
    pub magnitude: Option<f64>,
    /// The fully-resolved seed this run executed with.
    pub seed: u64,
    /// Final energy (trailing-window mean of `series`).
    pub final_energy: f64,
    /// Quantum jobs consumed.
    pub jobs: usize,
    /// Circuit-level evaluations consumed.
    pub evals: u64,
    /// Skipped/rejected attempts.
    pub skips: usize,
    /// Per-iteration measured (or filtered) energies.
    pub series: Vec<f64>,
}

/// Build provenance stamped into every report so archived artifacts record
/// what produced them. Deterministic for a given binary — reports from
/// different topologies of the same build stay byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportMeta {
    /// Workspace crate version.
    pub version: String,
    /// Short git commit hash at compile time (`"unknown"` outside git).
    pub git_hash: String,
    /// Enabled codegen target features (e.g. from `-C target-cpu=native`).
    pub target_features: String,
    /// Whether the harness was built with the `parallel` feature.
    pub parallel: bool,
}

impl ReportMeta {
    /// The stamp for this build of the bench harness.
    pub fn current() -> Self {
        let b = qismet_telemetry::BuildInfo::current(cfg!(feature = "parallel"));
        Self {
            version: b.version,
            git_hash: b.git_hash,
            target_features: b.target_features,
            parallel: b.parallel,
        }
    }
}

/// A campaign's complete result set, in grid-expansion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name (used for artifact file names).
    pub name: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Build provenance of the producing harness.
    pub meta: ReportMeta,
    /// One record per expanded run, in expansion order.
    pub records: Vec<RunRecord>,
}

impl CampaignReport {
    /// Records of one scenario, in trial order.
    pub fn scenario(&self, index: usize) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.scenario == index)
            .collect()
    }

    /// The single record of a one-trial scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has zero or multiple records.
    pub fn single(&self, index: usize) -> &RunRecord {
        let runs = self.scenario(index);
        assert_eq!(runs.len(), 1, "scenario {index} has {} runs", runs.len());
        runs[0]
    }

    /// Mean final energy across a scenario's trials.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no records.
    pub fn mean_final(&self, index: usize) -> f64 {
        let finals: Vec<f64> = self
            .scenario(index)
            .iter()
            .map(|r| r.final_energy)
            .collect();
        assert!(!finals.is_empty(), "scenario {index} has no records");
        qismet_mathkit::mean(&finals)
    }

    /// Total skips across a scenario's trials.
    pub fn total_skips(&self, index: usize) -> usize {
        self.scenario(index).iter().map(|r| r.skips).sum()
    }

    /// Loads a report previously written by [`CampaignReport::write_json`]
    /// (or any JSON with the same shape). The loader counterpart exists so
    /// downstream aggregation — and the campaign resume path — can rehydrate
    /// full-fidelity records; floats round-trip bit-exactly through the
    /// shortest-representation JSON writer.
    ///
    /// # Errors
    ///
    /// Propagates file-read failures; malformed JSON or a mismatched shape
    /// surfaces as [`io::ErrorKind::InvalidData`].
    pub fn read_json(path: &Path) -> io::Result<CampaignReport> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Bootstrap confidence interval of a scenario's mean final energy
    /// (over its trials' trailing-window finals). Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no records or `resamples` is zero.
    pub fn scenario_ci(&self, index: usize, resamples: usize, seed: u64) -> BootstrapCi {
        let finals: Vec<f64> = self
            .scenario(index)
            .iter()
            .map(|r| r.final_energy)
            .collect();
        assert!(!finals.is_empty(), "scenario {index} has no records");
        bootstrap_ci(&finals, resamples, seed)
    }

    /// Paired cross-scheme significance test between scenarios `a` and `b`
    /// (see [`paired_scheme_test`]): trials are paired by trial index,
    /// which is an exact pairing for grid campaigns because every scheme
    /// within one (app, machine, magnitude) cell runs trial `t` from the
    /// same seed.
    ///
    /// # Panics
    ///
    /// Panics if the scenarios share no trial indices or `resamples` is
    /// zero.
    pub fn paired_scenario_test(
        &self,
        a: usize,
        b: usize,
        resamples: usize,
        seed: u64,
    ) -> PairedTest {
        let finals = |index: usize| -> Vec<f64> {
            self.scenario(index)
                .iter()
                .map(|r| r.final_energy)
                .collect()
        };
        let xs = finals(a);
        let ys = finals(b);
        let n = xs.len().min(ys.len());
        assert!(n > 0, "scenarios {a}/{b} share no trials to pair");
        paired_scheme_test(&xs[..n], &ys[..n], resamples, seed)
    }

    /// Writes the full report (series included) as pretty JSON under
    /// [`results_dir`], named `<name>.json` unless overridden.
    pub fn write_json(&self, file_name: Option<&str>) -> PathBuf {
        let path = self
            .write_json_in(&results_dir(), file_name)
            .expect("write json report");
        println!("[json] wrote {}", path.display());
        path
    }

    /// Writes the full report as pretty JSON into `dir` (created if
    /// missing), named `<name>.json` unless overridden. The fallible form
    /// behind [`CampaignReport::write_json`], used directly by the service
    /// daemon so a bad report directory fails the *job*, not the process.
    /// Byte-for-byte the same artifact whichever entry point writes it.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures.
    pub fn write_json_in(
        &self,
        dir: &std::path::Path,
        file_name: Option<&str>,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let name = file_name
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.json", self.name));
        let path = dir.join(name);
        let json = serde_json::to_string_pretty(self).expect("serialize report");
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Writes one summary row per record (no series) as CSV under
    /// [`results_dir`], named `<name>_runs.csv` unless overridden.
    pub fn write_runs_csv(&self, file_name: Option<&str>) -> PathBuf {
        let name = file_name
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}_runs.csv", self.name));
        let rows: Vec<Vec<String>> = self
            .records
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.app.clone(),
                    r.machine.clone(),
                    r.scheme.clone(),
                    r.trial.to_string(),
                    r.iterations.to_string(),
                    r.magnitude.map(|m| format!("{m}")).unwrap_or_default(),
                    r.seed.to_string(),
                    format!("{:.6}", r.final_energy),
                    r.jobs.to_string(),
                    r.evals.to_string(),
                    r.skips.to_string(),
                ]
            })
            .collect();
        write_csv_at(
            &name,
            &[
                "label",
                "app",
                "machine",
                "scheme",
                "trial",
                "iterations",
                "magnitude",
                "seed",
                "final_energy",
                "jobs",
                "evals",
                "skips",
            ],
            &rows,
        )
    }
}

/// Trailing window used for "final expectation" summaries: 5% of the run,
/// at least 10 iterations.
pub fn final_window(iterations: usize) -> usize {
    (iterations / 20).max(10)
}

/// Mean over the trailing `window` entries of a series (the whole series if
/// shorter).
///
/// # Panics
///
/// Panics if the series is empty.
pub fn trailing_mean(series: &[f64], window: usize) -> f64 {
    assert!(!series.is_empty(), "trailing_mean of empty series");
    let n = series.len();
    qismet_mathkit::mean(&series[n.saturating_sub(window)..])
}

/// Geometric mean of per-record ratios against a baseline value.
pub fn geomean_ratios(finals: &[f64], baseline: f64) -> f64 {
    let ratios: Vec<f64> = finals.iter().map(|&f| f / baseline).collect();
    qismet_mathkit::geomean(&ratios)
}

/// A percentile-bootstrap confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// The plain sample mean.
    pub mean: f64,
    /// Lower 95% bound (2.5th percentile of resampled means).
    pub lo: f64,
    /// Upper 95% bound (97.5th percentile of resampled means).
    pub hi: f64,
}

/// Percentile-bootstrap 95% confidence interval of the mean of
/// `series_finals` (a scenario's per-trial trailing-window finals):
/// `resamples` resamples with replacement, each of the original size, and
/// the 2.5/97.5 percentiles of the resampled means. Fully deterministic in
/// `seed`, so figure shape checks built on it stay reproducible.
///
/// # Panics
///
/// Panics if `series_finals` is empty or `resamples` is zero.
pub fn bootstrap_ci(series_finals: &[f64], resamples: usize, seed: u64) -> BootstrapCi {
    assert!(!series_finals.is_empty(), "bootstrap_ci of empty sample");
    assert!(resamples > 0, "bootstrap_ci needs at least one resample");
    let n = series_finals.len();
    let mut rng = qismet_mathkit::rng_from_seed(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += series_finals[(rng.gen::<u64>() % n as u64) as usize];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let last = resamples - 1;
    let lo = means[(last as f64 * 0.025).floor() as usize];
    let hi = means[(last as f64 * 0.975).ceil() as usize];
    BootstrapCi {
        mean: qismet_mathkit::mean(series_finals),
        lo,
        hi,
    }
}

/// Result of a paired cross-scheme significance test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedTest {
    /// Number of trial pairs.
    pub pairs: usize,
    /// Mean of the paired differences `a[t] - b[t]`.
    pub mean_diff: f64,
    /// Two-sided sign-flip permutation p-value for "mean difference is 0".
    pub p_value: f64,
}

/// Paired significance test between two same-length samples whose entries
/// are paired by position (same-seed trials of two schemes in one grid
/// cell are paired by construction: trial `t` of each scheme sees the same
/// transient trace and starting parameters).
///
/// The test is a deterministic-seed sign-flip permutation test on the
/// paired differences `d[t] = a[t] - b[t]`: under the null hypothesis the
/// schemes are exchangeable within a pair, so each `d[t]` is equally
/// likely to carry either sign. `resamples` random sign assignments are
/// drawn, and the two-sided p-value is the add-one-smoothed fraction of
/// resampled `|mean|`s at or above the observed `|mean|` — so `p` is
/// always in `(0, 1]` and fully reproducible in `seed`.
///
/// # Panics
///
/// Panics if the samples are empty, their lengths differ, or `resamples`
/// is zero.
pub fn paired_scheme_test(a: &[f64], b: &[f64], resamples: usize, seed: u64) -> PairedTest {
    assert!(!a.is_empty(), "paired_scheme_test of empty samples");
    assert_eq!(a.len(), b.len(), "paired samples must have equal lengths");
    assert!(resamples > 0, "paired_scheme_test needs resamples");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let observed = qismet_mathkit::mean(&diffs);
    let mut rng = qismet_mathkit::rng_from_seed(seed);
    let mut at_least_as_extreme = 0usize;
    for _ in 0..resamples {
        let mut acc = 0.0;
        for &d in &diffs {
            // One RNG draw per pair: bit 0 decides the sign flip.
            if rng.gen::<u64>() & 1 == 0 {
                acc += d;
            } else {
                acc -= d;
            }
        }
        if (acc / n as f64).abs() >= observed.abs() {
            at_least_as_extreme += 1;
        }
    }
    PairedTest {
        pairs: n,
        mean_diff: observed,
        p_value: (at_least_as_extreme + 1) as f64 / (resamples + 1) as f64,
    }
}

/// Streams [`RunRecord`]s to a JSONL file, one compact line per record,
/// flushed as each run completes. This is the durable output path for
/// 10k+-run campaigns: every record (series included) is on disk the
/// moment it finishes, so downstream aggregation can read the JSONL
/// instead of the in-memory report. (The executors themselves still
/// build a full `CampaignReport`; a summary-only merge that drops series
/// from residency after streaming is the roadmap's next rung.)
#[derive(Debug)]
pub struct RunsJsonlWriter {
    file: std::fs::File,
    path: PathBuf,
    written: usize,
}

impl RunsJsonlWriter {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the create failure.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(RunsJsonlWriter {
            file: std::fs::File::create(path)?,
            path: path.to_path_buf(),
            written: 0,
        })
    }

    /// Appends one record as a compact JSON line and flushes it.
    ///
    /// Records appear in completion order (not necessarily expansion
    /// order when produced by parallel or sharded executors); each line
    /// carries its full grid identity (`scenario`, `trial`, `seed`), so
    /// readers regroup without positional assumptions.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures.
    pub fn append(&mut self, record: &RunRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.written += 1;
        Ok(())
    }

    /// How many records have been appended.
    pub fn written(&self) -> usize {
        self.written
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads back a JSONL record stream written by [`RunsJsonlWriter`].
///
/// # Errors
///
/// Propagates read failures; an unparsable line surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_runs_jsonl(path: &Path) -> io::Result<Vec<RunRecord>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })
        })
        .collect()
}

/// Rebuilds a full-fidelity [`CampaignReport`] from a streamed JSONL file
/// by re-sorting the records (which arrive in completion order) into
/// campaign expansion order — `(scenario, trial)` lexicographic, which is
/// exactly how [`crate::scenario::Campaign::expand`] orders runs. This is
/// the summary-only merge's counterpart: the resident report keeps only
/// aggregates, and downstream consumers that need series re-aggregate from
/// the stream.
///
/// # Errors
///
/// Propagates read failures; an unparsable line surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn reaggregate_runs_jsonl(path: &Path, name: &str, seed: u64) -> io::Result<CampaignReport> {
    let mut records = read_runs_jsonl(path)?;
    records.sort_by_key(|r| (r.scenario, r.trial));
    Ok(CampaignReport {
        name: name.to_string(),
        seed,
        meta: ReportMeta::current(),
        records,
    })
}

/// Directory where harnesses drop their artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/paper_results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file under [`results_dir`].
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    write_csv_at(name, headers, rows);
}

fn write_csv_at(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("[csv] wrote {}", path.display());
    path
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Downsamples a series to at most ~`points` entries for compact printing.
pub fn downsample(series: &[f64], points: usize) -> Vec<(usize, f64)> {
    if series.is_empty() || points == 0 {
        return Vec::new();
    }
    let stride = (series.len() / points).max(1);
    series
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i == series.len() - 1)
        .map(|(i, &v)| (i, v))
        .collect()
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a ratio with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(scenario: usize, trial: usize, final_energy: f64) -> RunRecord {
        RunRecord {
            label: "QISMET".into(),
            app: "App2".into(),
            machine: "Guadalupe".into(),
            scheme: "QISMET".into(),
            scenario,
            trial,
            iterations: 100,
            magnitude: Some(0.25),
            seed: 7,
            final_energy,
            jobs: 100,
            evals: 700,
            skips: 3,
            series: vec![final_energy; 4],
        }
    }

    #[test]
    fn report_groups_and_aggregates() {
        let report = CampaignReport {
            name: "t".into(),
            seed: 1,
            meta: ReportMeta::current(),
            records: vec![record(0, 0, -4.0), record(0, 1, -6.0), record(1, 0, -5.0)],
        };
        assert_eq!(report.scenario(0).len(), 2);
        assert!((report.mean_final(0) + 5.0).abs() < 1e-12);
        assert_eq!(report.single(1).final_energy, -5.0);
        assert_eq!(report.total_skips(0), 6);
    }

    #[test]
    fn record_json_roundtrip_is_exact() {
        let report = CampaignReport {
            name: "t".into(),
            seed: u64::MAX - 5,
            meta: ReportMeta::current(),
            records: vec![record(0, 0, -4.125), record(2, 3, 0.1 + 0.2)],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(
            back.records[1].final_energy.to_bits(),
            report.records[1].final_energy.to_bits()
        );
    }

    #[test]
    fn write_then_read_json_roundtrips_exactly() {
        let report = CampaignReport {
            name: format!("roundtrip-{}", std::process::id()),
            seed: 0xfeed,
            meta: ReportMeta::current(),
            records: vec![record(0, 0, 0.1 + 0.2), record(1, 0, -7.25)],
        };
        let path = report.write_json(None);
        let back = CampaignReport::read_json(&path).unwrap();
        assert_eq!(back, report);
        assert_eq!(
            back.records[0].final_energy.to_bits(),
            report.records[0].final_energy.to_bits()
        );
        std::fs::remove_file(&path).unwrap();
        assert!(CampaignReport::read_json(&path).is_err());
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_ordered() {
        let finals = [-5.1, -5.3, -4.9, -5.6, -5.0, -5.2, -4.8, -5.4];
        let a = bootstrap_ci(&finals, 500, 42);
        let b = bootstrap_ci(&finals, 500, 42);
        assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        assert!(a.lo <= a.mean && a.mean <= a.hi, "{a:?}");
        // A different seed resamples differently but stays a sane interval.
        let c = bootstrap_ci(&finals, 500, 43);
        assert!(c.lo <= c.mean && c.mean <= c.hi, "{c:?}");
        assert!(a.lo >= -5.6 && a.hi <= -4.8, "bounds within sample range");
    }

    #[test]
    fn bootstrap_ci_degenerate_sample_collapses() {
        let ci = bootstrap_ci(&[2.5, 2.5, 2.5], 100, 7);
        assert_eq!(ci.lo, 2.5);
        assert_eq!(ci.hi, 2.5);
        assert_eq!(ci.mean, 2.5);
    }

    #[test]
    fn scenario_ci_bootstraps_trial_finals() {
        let report = CampaignReport {
            name: "ci".into(),
            seed: 1,
            meta: ReportMeta::current(),
            records: vec![
                record(0, 0, -4.0),
                record(0, 1, -6.0),
                record(0, 2, -5.0),
                record(1, 0, -1.0),
            ],
        };
        let ci = report.scenario_ci(0, 400, 9);
        assert!((ci.mean + 5.0).abs() < 1e-12);
        assert!(ci.lo >= -6.0 && ci.hi <= -4.0);
        assert!(ci.lo <= ci.hi);
    }

    #[test]
    fn jsonl_stream_roundtrips_in_append_order() {
        let path = std::env::temp_dir().join(format!("qismet-runs-{}.jsonl", std::process::id()));
        let records = [
            record(0, 0, 0.1 + 0.2),
            record(0, 1, -3.5),
            record(1, 0, 9.0),
        ];
        {
            let mut w = RunsJsonlWriter::create(&path).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            assert_eq!(w.written(), 3);
            assert_eq!(w.path(), path.as_path());
        }
        let back = read_runs_jsonl(&path).unwrap();
        assert_eq!(back, records.to_vec());
        assert_eq!(
            back[0].final_energy.to_bits(),
            records[0].final_energy.to_bits()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn paired_test_is_deterministic_and_two_sided() {
        let a = [-5.2, -5.4, -5.1, -5.3, -5.5, -5.2, -5.35, -5.25];
        let b = [-4.1, -4.3, -4.0, -4.2, -4.4, -4.1, -4.25, -4.15];
        let t1 = paired_scheme_test(&a, &b, 999, 7);
        let t2 = paired_scheme_test(&a, &b, 999, 7);
        assert_eq!(t1, t2, "same seed must resample identically");
        assert_eq!(t1.pairs, 8);
        assert!((t1.mean_diff + 1.1).abs() < 1e-9);
        // Every pair moves the same direction by ~1.1: strongly significant.
        assert!(t1.p_value <= 0.05, "p = {}", t1.p_value);
        // Swapping the samples flips the sign but not the significance.
        let flipped = paired_scheme_test(&b, &a, 999, 7);
        assert_eq!(flipped.mean_diff.to_bits(), (-t1.mean_diff).to_bits());
        assert_eq!(flipped.p_value.to_bits(), t1.p_value.to_bits());
    }

    #[test]
    fn paired_test_on_identical_samples_is_insignificant() {
        let a = [-5.0, -5.1, -4.9, -5.05];
        let t = paired_scheme_test(&a, &a, 500, 3);
        assert_eq!(t.mean_diff, 0.0);
        // Every resampled mean is 0 >= |0|, so p collapses to 1.
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn paired_test_p_value_stays_in_unit_interval() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 1.0, 3.5];
        let t = paired_scheme_test(&a, &b, 200, 11);
        assert!(t.p_value > 0.0 && t.p_value <= 1.0, "{t:?}");
    }

    #[test]
    fn scenario_pairing_truncates_to_common_trials() {
        let report = CampaignReport {
            name: "p".into(),
            seed: 1,
            meta: ReportMeta::current(),
            records: vec![
                record(0, 0, -4.0),
                record(0, 1, -4.2),
                record(0, 2, -4.1),
                record(1, 0, -5.0),
                record(1, 1, -5.2),
            ],
        };
        let t = report.paired_scenario_test(0, 1, 300, 9);
        assert_eq!(t.pairs, 2);
        assert!((t.mean_diff - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reaggregated_jsonl_restores_expansion_order() {
        let path = std::env::temp_dir().join(format!("qismet-reagg-{}.jsonl", std::process::id()));
        // Completion order scrambles the expansion order.
        let scrambled = [
            record(1, 0, 9.0),
            record(0, 1, -3.5),
            record(0, 0, 0.1 + 0.2),
        ];
        {
            let mut w = RunsJsonlWriter::create(&path).unwrap();
            for r in &scrambled {
                w.append(r).unwrap();
            }
        }
        let report = reaggregate_runs_jsonl(&path, "t", 42).unwrap();
        assert_eq!(report.name, "t");
        assert_eq!(report.seed, 42);
        assert_eq!(
            report
                .records
                .iter()
                .map(|r| (r.scenario, r.trial))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0)]
        );
        assert_eq!(
            report.records[0].final_energy.to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trailing_mean_windows() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert!((trailing_mean(&s, 2) - 3.5).abs() < 1e-12);
        assert!((trailing_mean(&s, 10) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn final_window_floor() {
        assert_eq!(final_window(40), 10);
        assert_eq!(final_window(2000), 100);
    }
}

//! The sweep executor: runs a campaign's independent grid points
//! sequentially or — behind the `parallel` feature — fanned across
//! `std::thread::scope` workers.
//!
//! Determinism contract: every [`RunSpec`] is pure data (its seed is
//! resolved at expansion time from the campaign seed and grid coordinates),
//! and the scheme runners are pure functions of that data. Workers pull
//! specs off a shared atomic counter and write results back into the spec's
//! own slot, so parallel execution returns **bit-identical** records in the
//! same order as a sequential run — wall clock is bounded by cores, not by
//! the longest sequential loop.

use crate::report::{CampaignReport, RunRecord};
use crate::scenario::{Campaign, RunKind, RunSpec};
use crate::{run_kalman_instance, run_scheme, SchemeOutcome};

/// Executes campaigns. Construct via [`SweepExecutor::new`] (parallel when
/// the `parallel` feature is enabled, sequential otherwise),
/// [`SweepExecutor::sequential`], or [`SweepExecutor::with_threads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepExecutor {
    threads: usize,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor::new()
    }
}

impl SweepExecutor {
    /// The default executor: all available cores when the `parallel`
    /// feature is enabled, sequential otherwise.
    pub fn new() -> Self {
        if cfg!(feature = "parallel") {
            SweepExecutor { threads: 0 }
        } else {
            SweepExecutor { threads: 1 }
        }
    }

    /// A strictly sequential executor.
    pub fn sequential() -> Self {
        SweepExecutor { threads: 1 }
    }

    /// An executor with an explicit worker count (`0` = all cores). More
    /// than one worker only takes effect under the `parallel` feature.
    pub fn with_threads(threads: usize) -> Self {
        SweepExecutor { threads }
    }

    /// The worker count this executor will actually use for `n` tasks.
    pub fn effective_threads(&self, n: usize) -> usize {
        if !cfg!(feature = "parallel") {
            return 1;
        }
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.max(1).min(n.max(1))
    }

    /// Expands and runs a campaign through the default scheme runner.
    pub fn run(&self, campaign: &Campaign) -> CampaignReport {
        let specs = campaign.expand();
        let records = self.run_specs(&specs, run_one);
        CampaignReport {
            name: campaign.name.clone(),
            seed: campaign.seed,
            records,
        }
    }

    /// Runs an arbitrary per-spec function over a slice of independent
    /// specs, preserving input order in the output. This is the generic
    /// engine the figure harnesses use for workloads that are not plain
    /// scheme runs (H2 dissociation, fidelity batches, trace generation).
    pub fn run_specs<S, R, F>(&self, specs: &[S], run: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        let workers = self.effective_threads(specs.len());
        if workers <= 1 || specs.len() <= 1 {
            return specs.iter().map(run).collect();
        }
        self.run_specs_parallel(specs, &run, workers)
    }

    #[cfg(feature = "parallel")]
    fn run_specs_parallel<S, R, F>(&self, specs: &[S], run: &F, workers: usize) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let next = AtomicUsize::new(0);
        let mut collected: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        local.push((i, run(&specs[i])));
                    }
                    local
                }));
            }
            for h in handles {
                collected.push(h.join().expect("campaign worker panicked"));
            }
        });
        // Reassemble in input order.
        let mut slots: Vec<Option<R>> = (0..specs.len()).map(|_| None).collect();
        for (i, r) in collected.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every spec produced a result"))
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn run_specs_parallel<S, R, F>(&self, specs: &[S], run: &F, _workers: usize) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        specs.iter().map(run).collect()
    }
}

/// Runs one fully-resolved spec through the scheme runners and packages the
/// outcome as a [`RunRecord`].
pub fn run_one(spec: &RunSpec) -> RunRecord {
    let outcome = match &spec.kind {
        RunKind::Scheme(s) => run_scheme(&spec.app, *s, spec.iterations, spec.magnitude, spec.seed),
        RunKind::Kalman(k) => run_kalman_instance(
            &spec.app,
            k.clone(),
            spec.iterations,
            spec.magnitude,
            spec.seed,
        ),
    };
    record_from_outcome(spec, outcome)
}

fn record_from_outcome(spec: &RunSpec, outcome: SchemeOutcome) -> RunRecord {
    RunRecord {
        label: spec.label.clone(),
        app: spec.app.name(),
        machine: spec.app.machine.name().to_string(),
        scheme: spec.kind.name(),
        scenario: spec.scenario,
        trial: spec.trial,
        iterations: spec.iterations,
        magnitude: spec.magnitude,
        seed: spec.seed,
        final_energy: outcome.final_energy,
        jobs: outcome.jobs,
        evals: outcome.evals,
        skips: outcome.skips,
        series: outcome.series,
    }
}

/// Convenience: runs `campaign` with the default executor.
pub fn run_campaign(campaign: &Campaign) -> CampaignReport {
    SweepExecutor::new().run(campaign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;
    use crate::Scheme;
    use qismet_vqa::AppSpec;

    fn tiny_campaign() -> Campaign {
        Campaign::new("tiny", 11)
            .with(ScenarioSpec::new(
                AppSpec::by_id(1).unwrap(),
                Scheme::Baseline,
                25,
            ))
            .with(ScenarioSpec::new(
                AppSpec::by_id(1).unwrap(),
                Scheme::Qismet,
                25,
            ))
    }

    #[test]
    fn run_specs_preserves_order() {
        let specs: Vec<usize> = (0..97).collect();
        let out = SweepExecutor::new().run_specs(&specs, |&i| i * 3);
        assert_eq!(out, specs.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_matches_default_executor_bitwise() {
        let campaign = tiny_campaign();
        let seq = SweepExecutor::sequential().run(&campaign);
        let par = SweepExecutor::with_threads(4).run(&campaign);
        assert_eq!(seq, par);
        for (a, b) in seq.records.iter().zip(par.records.iter()) {
            for (x, y) in a.series.iter().zip(b.series.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn records_carry_grid_identity() {
        let report = run_campaign(&tiny_campaign());
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[0].scenario, 0);
        assert_eq!(report.records[1].scheme, "QISMET");
        assert_eq!(report.records[0].app, "App1");
        assert!(report.records.iter().all(|r| r.series.len() == 25));
    }
}

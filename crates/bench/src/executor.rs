//! The sweep executor: runs a campaign's independent grid points
//! sequentially or — behind the `parallel` feature — fanned across
//! `std::thread::scope` workers.
//!
//! Determinism contract: every [`RunSpec`] is pure data (its seed is
//! resolved at expansion time from the campaign seed and grid coordinates),
//! and the scheme runners are pure functions of that data. Workers pull
//! specs off a shared atomic counter and write results back into the spec's
//! own slot, so parallel execution returns **bit-identical** records in the
//! same order as a sequential run — wall clock is bounded by cores, not by
//! the longest sequential loop.

use crate::report::{CampaignReport, ReportMeta, RunRecord};
use crate::scenario::{Campaign, RunKind, RunSpec};
use crate::{
    lockstep_capable, run_kalman_instance, run_scheme, run_scheme_lockstep, SchemeOutcome,
};
use std::ops::Range;
use std::panic::AssertUnwindSafe;

/// A typed failure from a fallible sweep ([`SweepExecutor::try_run_specs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// The run function panicked on one spec. Carries the spec's position
    /// in the input slice and the panic payload text.
    RunPanicked {
        /// Index of the failing spec in the input slice.
        index: usize,
        /// The panic message, if it was a string payload.
        message: String,
    },
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorError::RunPanicked { index, message } => {
                write!(f, "campaign run {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Renders a panic payload (`&str` or `String`, else a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into [`ExecutorError::RunPanicked`].
fn catch_run<R>(index: usize, f: impl FnOnce() -> R) -> Result<R, ExecutorError> {
    std::panic::catch_unwind(AssertUnwindSafe(f)).map_err(|payload| ExecutorError::RunPanicked {
        index,
        message: panic_message(payload),
    })
}

/// Executes campaigns. Construct via [`SweepExecutor::new`] (parallel when
/// the `parallel` feature is enabled, sequential otherwise),
/// [`SweepExecutor::sequential`], or [`SweepExecutor::with_threads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepExecutor {
    threads: usize,
    inner_threads: usize,
    batch_lanes: usize,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor::new()
    }
}

impl SweepExecutor {
    /// The default executor: all available cores when the `parallel`
    /// feature is enabled, sequential otherwise.
    pub fn new() -> Self {
        let threads = if cfg!(feature = "parallel") { 0 } else { 1 };
        SweepExecutor {
            threads,
            inner_threads: 1,
            batch_lanes: 1,
        }
    }

    /// A strictly sequential executor.
    pub fn sequential() -> Self {
        SweepExecutor {
            threads: 1,
            inner_threads: 1,
            batch_lanes: 1,
        }
    }

    /// An executor with an explicit worker count (`0` = all cores). More
    /// than one worker only takes effect under the `parallel` feature.
    pub fn with_threads(threads: usize) -> Self {
        SweepExecutor {
            threads,
            inner_threads: 1,
            batch_lanes: 1,
        }
    }

    /// Sets the in-state kernel thread count each worker configures on its
    /// backend pool (`0`/`1` = sequential kernels). This splits the thread
    /// budget between run-level fan-out (`threads`) and state-level
    /// parallelism inside each statevector sweep; the two compose, so
    /// `threads * inner_threads` should not exceed the machine. More than
    /// one inner thread only takes effect under the `parallel` feature.
    pub fn with_inner_threads(mut self, inner_threads: usize) -> Self {
        self.inner_threads = inner_threads;
        self
    }

    /// The configured in-state kernel thread count.
    pub fn inner_threads(&self) -> usize {
        self.inner_threads
    }

    /// Sets the lockstep lane count: consecutive trials of one scenario
    /// (same app/scheme/iterations/magnitude, per-trial seeds) are grouped
    /// into batches of up to `lanes` and run as one lane-batched trajectory
    /// group through [`run_scheme_lockstep`]. `1` disables grouping.
    /// Results are **bitwise identical** to `batch_lanes = 1` — lanes keep
    /// independent seeds and the SoA engine is bitwise equal to the scalar
    /// path — so this is purely a throughput knob. Scenarios whose scheme
    /// is not [`lockstep_capable`] (QISMET, Only-Transients, Kalman) run
    /// scalar regardless.
    pub fn with_batch_lanes(mut self, lanes: usize) -> Self {
        self.batch_lanes = lanes.max(1);
        self
    }

    /// The configured lockstep lane count.
    pub fn batch_lanes(&self) -> usize {
        self.batch_lanes
    }

    /// The worker count this executor will actually use for `n` tasks.
    pub fn effective_threads(&self, n: usize) -> usize {
        if !cfg!(feature = "parallel") {
            return 1;
        }
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.max(1).min(n.max(1))
    }

    /// Expands and runs a campaign through the default scheme runner.
    ///
    /// # Panics
    ///
    /// Panics if a run panics; use [`SweepExecutor::try_run`] to get a
    /// typed error instead.
    pub fn run(&self, campaign: &Campaign) -> CampaignReport {
        self.try_run(campaign).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SweepExecutor::run`]: a panicking run surfaces as
    /// [`ExecutorError::RunPanicked`] instead of aborting the process.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed run failure.
    pub fn try_run(&self, campaign: &Campaign) -> Result<CampaignReport, ExecutorError> {
        let specs = campaign.expand();
        let records = if self.batch_lanes > 1 {
            self.try_run_specs_lockstep(&specs)?
        } else {
            self.try_run_specs(&specs, run_one)?
        };
        Ok(CampaignReport {
            name: campaign.name.clone(),
            seed: campaign.seed,
            meta: ReportMeta::current(),
            records,
        })
    }

    /// Runs the expanded spec list with lockstep trial-grouping: each group
    /// of up to `batch_lanes` consecutive same-scenario trials becomes one
    /// unit of work (a [`run_scheme_lockstep`] call); groups are then
    /// scheduled exactly like individual specs (sequential or worker
    /// fan-out). A panic inside a group is attributed to the group's first
    /// spec index.
    fn try_run_specs_lockstep(&self, specs: &[RunSpec]) -> Result<Vec<RunRecord>, ExecutorError> {
        let groups = lockstep_groups(specs, self.batch_lanes);
        let nested = self
            .try_run_specs(&groups, |g| run_group(specs, g.clone()))
            .map_err(|e| match e {
                ExecutorError::RunPanicked { index, message } => ExecutorError::RunPanicked {
                    index: groups[index].start,
                    message,
                },
            })?;
        Ok(nested.into_iter().flatten().collect())
    }

    /// Runs an arbitrary per-spec function over a slice of independent
    /// specs, preserving input order in the output. This is the generic
    /// engine the figure harnesses use for workloads that are not plain
    /// scheme runs (H2 dissociation, fidelity batches, trace generation).
    ///
    /// # Panics
    ///
    /// Panics if `run` panics on any spec; use
    /// [`SweepExecutor::try_run_specs`] for a typed error.
    pub fn run_specs<S, R, F>(&self, specs: &[S], run: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        self.try_run_specs(specs, run)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SweepExecutor::run_specs`]: a panic inside `run`
    /// is caught (on whichever worker thread it happens) and returned as a
    /// typed [`ExecutorError`] naming the failing spec, instead of tearing
    /// down the whole process via a worker-join abort.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failure when one or more runs panic;
    /// remaining work is abandoned as soon as the failure is observed.
    pub fn try_run_specs<S, R, F>(&self, specs: &[S], run: F) -> Result<Vec<R>, ExecutorError>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        let workers = self.effective_threads(specs.len());
        if workers <= 1 || specs.len() <= 1 {
            crate::set_worker_inner_threads(self.inner_threads);
            return specs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    qismet_telemetry::gauge!("sweep.queue_depth").set((specs.len() - i) as i64);
                    catch_run(i, || run(s))
                })
                .collect();
        }
        self.try_run_specs_parallel(specs, &run, workers)
    }

    #[cfg(feature = "parallel")]
    fn try_run_specs_parallel<S, R, F>(
        &self,
        specs: &[S],
        run: &F,
        workers: usize,
    ) -> Result<Vec<R>, ExecutorError>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let mut collected: Vec<Result<Vec<(usize, R)>, ExecutorError>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let abort = &abort;
                let inner_threads = self.inner_threads;
                handles.push(scope.spawn(move || {
                    crate::set_worker_inner_threads(inner_threads);
                    let mut local = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        qismet_telemetry::gauge!("sweep.queue_depth")
                            .set(specs.len().saturating_sub(i + 1) as i64);
                        match catch_run(i, || run(&specs[i])) {
                            Ok(r) => local.push((i, r)),
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                    }
                    Ok(local)
                }));
            }
            for h in handles {
                collected.push(h.join().expect("campaign worker thread died"));
            }
        });
        // Deterministic error selection: the lowest-indexed failure wins,
        // independent of worker interleaving.
        let mut first_error: Option<ExecutorError> = None;
        let mut successes: Vec<(usize, R)> = Vec::with_capacity(specs.len());
        for worker_result in collected {
            match worker_result {
                Ok(local) => successes.extend(local),
                Err(e) => {
                    let replace = match (&first_error, &e) {
                        (None, _) => true,
                        (
                            Some(ExecutorError::RunPanicked { index: a, .. }),
                            ExecutorError::RunPanicked { index: b, .. },
                        ) => b < a,
                    };
                    if replace {
                        first_error = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Reassemble in input order.
        let mut slots: Vec<Option<R>> = (0..specs.len()).map(|_| None).collect();
        for (i, r) in successes {
            slots[i] = Some(r);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every spec produced a result"))
            .collect())
    }

    #[cfg(not(feature = "parallel"))]
    fn try_run_specs_parallel<S, R, F>(
        &self,
        specs: &[S],
        run: &F,
        _workers: usize,
    ) -> Result<Vec<R>, ExecutorError>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        crate::set_worker_inner_threads(self.inner_threads);
        specs
            .iter()
            .enumerate()
            .map(|(i, s)| catch_run(i, || run(s)))
            .collect()
    }
}

/// Fallible form of [`run_one`]: a panicking scheme run (bad hyper-params,
/// trace exhaustion escalated to a panic) becomes a typed error carrying
/// the spec's campaign index. This is the per-spec entry point the cluster
/// worker loop uses, so one poisoned spec fails its assignment instead of
/// killing the worker process.
///
/// # Errors
///
/// Returns [`ExecutorError::RunPanicked`] if the run panics.
pub fn try_run_one(spec: &RunSpec) -> Result<RunRecord, ExecutorError> {
    catch_run(spec.index, || run_one(spec))
}

/// Runs one fully-resolved spec through the scheme runners and packages the
/// outcome as a [`RunRecord`].
pub fn run_one(spec: &RunSpec) -> RunRecord {
    let t0 = qismet_telemetry::enabled().then(std::time::Instant::now);
    let outcome = match &spec.kind {
        RunKind::Scheme(s) => run_scheme(&spec.app, *s, spec.iterations, spec.magnitude, spec.seed),
        RunKind::Kalman(k) => run_kalman_instance(
            &spec.app,
            k.clone(),
            spec.iterations,
            spec.magnitude,
            spec.seed,
        ),
    };
    if let Some(t0) = t0 {
        record_sweep_done(t0.elapsed(), 1);
    }
    record_from_outcome(spec, outcome)
}

/// Books `n` finished specs taking `elapsed` wall time (combined) into the
/// sweep counters and the per-spec latency histogram.
fn record_sweep_done(elapsed: std::time::Duration, n: u64) {
    let total_ns = elapsed.as_nanos() as u64;
    qismet_telemetry::counter!("sweep.specs_done").add(n);
    qismet_telemetry::counter!("sweep.eval_ns").add(total_ns);
    let per_spec = total_ns / n.max(1);
    for _ in 0..n {
        qismet_telemetry::histogram!("sweep.spec_ns").record(per_spec);
    }
}

fn record_from_outcome(spec: &RunSpec, outcome: SchemeOutcome) -> RunRecord {
    RunRecord {
        label: spec.label.clone(),
        app: spec.app.name(),
        machine: spec.app.machine.name().to_string(),
        scheme: spec.kind.name(),
        scenario: spec.scenario,
        trial: spec.trial,
        iterations: spec.iterations,
        magnitude: spec.magnitude,
        seed: spec.seed,
        final_energy: outcome.final_energy,
        jobs: outcome.jobs,
        evals: outcome.evals,
        skips: outcome.skips,
        series: outcome.series,
    }
}

/// Splits an expanded (ordered) spec list into lockstep groups: maximal
/// runs of up to `lanes` consecutive specs that belong to the same scenario
/// and carry a [`lockstep_capable`] scheme. Everything else becomes a
/// singleton group. Concatenating the groups reproduces the input order.
fn lockstep_groups(specs: &[RunSpec], lanes: usize) -> Vec<Range<usize>> {
    let mut groups = Vec::new();
    let mut i = 0;
    while i < specs.len() {
        let batchable = matches!(&specs[i].kind, RunKind::Scheme(s) if lockstep_capable(*s));
        let mut j = i + 1;
        if batchable {
            while j < specs.len()
                && j - i < lanes
                && specs[j].scenario == specs[i].scenario
                && specs[j].kind == specs[i].kind
            {
                j += 1;
            }
        }
        groups.push(i..j);
        i = j;
    }
    groups
}

/// Runs one lockstep group. Singletons take the scalar [`run_one`] path
/// (bitwise the `batch_lanes = 1` behavior); multi-spec groups run their
/// trials as lanes of one [`run_scheme_lockstep`] trajectory group.
fn run_group(specs: &[RunSpec], group: Range<usize>) -> Vec<RunRecord> {
    if group.len() == 1 {
        return vec![run_one(&specs[group.start])];
    }
    let lead = &specs[group.start];
    let scheme = match &lead.kind {
        RunKind::Scheme(s) => *s,
        RunKind::Kalman(_) => unreachable!("kalman specs are never grouped"),
    };
    let seeds: Vec<u64> = specs[group.clone()].iter().map(|s| s.seed).collect();
    let t0 = qismet_telemetry::enabled().then(std::time::Instant::now);
    let outcomes = run_scheme_lockstep(&lead.app, scheme, lead.iterations, lead.magnitude, &seeds);
    if let Some(t0) = t0 {
        record_sweep_done(t0.elapsed(), seeds.len() as u64);
    }
    specs[group]
        .iter()
        .zip(outcomes)
        .map(|(spec, outcome)| record_from_outcome(spec, outcome))
        .collect()
}

/// Convenience: runs `campaign` with the default executor.
pub fn run_campaign(campaign: &Campaign) -> CampaignReport {
    SweepExecutor::new().run(campaign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;
    use crate::Scheme;
    use qismet_vqa::AppSpec;

    fn tiny_campaign() -> Campaign {
        Campaign::new("tiny", 11)
            .with(ScenarioSpec::new(
                AppSpec::by_id(1).unwrap(),
                Scheme::Baseline,
                25,
            ))
            .with(ScenarioSpec::new(
                AppSpec::by_id(1).unwrap(),
                Scheme::Qismet,
                25,
            ))
    }

    #[test]
    fn run_specs_preserves_order() {
        let specs: Vec<usize> = (0..97).collect();
        let out = SweepExecutor::new().run_specs(&specs, |&i| i * 3);
        assert_eq!(out, specs.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_matches_default_executor_bitwise() {
        let campaign = tiny_campaign();
        let seq = SweepExecutor::sequential().run(&campaign);
        let par = SweepExecutor::with_threads(4).run(&campaign);
        assert_eq!(seq, par);
        for (a, b) in seq.records.iter().zip(par.records.iter()) {
            for (x, y) in a.series.iter().zip(b.series.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn try_run_specs_reports_the_lowest_indexed_panic() {
        let specs: Vec<usize> = (0..20).collect();
        let run = |&i: &usize| {
            if i == 7 || i == 13 {
                panic!("boom at {i}");
            }
            i * 2
        };
        for executor in [SweepExecutor::sequential(), SweepExecutor::with_threads(4)] {
            let err = executor.try_run_specs(&specs, run).unwrap_err();
            match err {
                ExecutorError::RunPanicked { index, message } => {
                    assert_eq!(index, 7, "lowest-indexed failure must win");
                    assert!(message.contains("boom at 7"), "message: {message}");
                }
            }
        }
    }

    #[test]
    fn try_run_specs_succeeds_without_panics() {
        let specs: Vec<usize> = (0..33).collect();
        let out = SweepExecutor::with_threads(4)
            .try_run_specs(&specs, |&i| i + 1)
            .unwrap();
        assert_eq!(out, (1..34).collect::<Vec<_>>());
    }

    #[test]
    fn try_run_one_matches_run_one_on_healthy_specs() {
        let spec = &tiny_campaign().expand()[0];
        let fallible = try_run_one(spec).unwrap();
        let infallible = run_one(spec);
        assert_eq!(fallible, infallible);
        assert_eq!(fallible.series.len(), 25);
    }

    #[test]
    fn try_run_matches_run_bitwise() {
        let campaign = tiny_campaign();
        let a = SweepExecutor::sequential().try_run(&campaign).unwrap();
        let b = SweepExecutor::sequential().run(&campaign);
        assert_eq!(a, b);
    }

    #[test]
    fn lockstep_groups_split_scenarios_and_lane_limit() {
        let campaign = Campaign::new("g", 3)
            .with(
                ScenarioSpec::new(AppSpec::by_id(1).unwrap(), Scheme::Baseline, 25).with_trials(5),
            )
            .with(ScenarioSpec::new(AppSpec::by_id(1).unwrap(), Scheme::Qismet, 25).with_trials(2))
            .with(
                ScenarioSpec::new(AppSpec::by_id(1).unwrap(), Scheme::Blocking, 25).with_trials(3),
            );
        let specs = campaign.expand();
        let groups = lockstep_groups(&specs, 4);
        let shape: Vec<(usize, usize)> = groups.iter().map(|g| (g.start, g.len())).collect();
        // Baseline: 4-lane group + remainder; Qismet: scalar singletons;
        // Blocking: one 3-lane group.
        assert_eq!(shape, vec![(0, 4), (4, 1), (5, 1), (6, 1), (7, 3)]);
        assert_eq!(lockstep_groups(&specs, 1).len(), specs.len());
    }

    #[test]
    fn batch_lanes_campaign_is_bitwise_identical_to_scalar() {
        // The seam-2 acceptance bar: a campaign mixing lockstep-capable and
        // scalar-only schemes, with trial counts that don't divide the lane
        // width, must produce byte-identical reports with and without
        // `--batch-lanes` (and regardless of worker fan-out).
        let campaign = Campaign::new("lanes", 17)
            .with(
                ScenarioSpec::new(AppSpec::by_id(1).unwrap(), Scheme::Baseline, 30).with_trials(5),
            )
            .with(ScenarioSpec::new(AppSpec::by_id(1).unwrap(), Scheme::Qismet, 30).with_trials(2))
            .with(
                ScenarioSpec::new(AppSpec::by_id(1).unwrap(), Scheme::Blocking, 30).with_trials(3),
            );
        let scalar = SweepExecutor::sequential().run(&campaign);
        for lanes in [4, 8] {
            for executor in [
                SweepExecutor::sequential().with_batch_lanes(lanes),
                SweepExecutor::with_threads(3).with_batch_lanes(lanes),
            ] {
                let batched = executor.run(&campaign);
                assert_eq!(scalar, batched, "lanes {lanes}");
                for (a, b) in scalar.records.iter().zip(&batched.records) {
                    for (x, y) in a.series.iter().zip(&b.series) {
                        assert_eq!(x.to_bits(), y.to_bits(), "lanes {lanes}");
                    }
                }
            }
        }
    }

    #[test]
    fn records_carry_grid_identity() {
        let report = run_campaign(&tiny_campaign());
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[0].scenario, 0);
        assert_eq!(report.records[1].scheme, "QISMET");
        assert_eq!(report.records[0].app, "App1");
        assert!(report.records.iter().all(|r| r.series.len() == 25));
    }
}

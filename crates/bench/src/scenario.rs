//! Declarative sweep definitions: scenarios, campaigns, and grid expansion.
//!
//! A [`ScenarioSpec`] is one point-family of the evaluation space — an app
//! on a machine under a scheme, at a transient magnitude, for some number of
//! trials. A [`Campaign`] is an ordered list of scenarios (hand-assembled or
//! cross-producted from a [`CampaignGrid`]) that expands into a flat list of
//! independent [`RunSpec`]s. Each `RunSpec` carries its fully-resolved seed,
//! so execution order — sequential or parallel — cannot affect results.

use crate::{scaled, Scheme};
use qismet_filters::KalmanFilter;
use qismet_mathkit::derive_seed;
use qismet_qnoise::Machine;
use qismet_vqa::AppSpec;

/// What one run actually executes.
#[derive(Debug, Clone, PartialEq)]
pub enum RunKind {
    /// One of the comparison schemes of Section 6.3.
    Scheme(Scheme),
    /// A specific Kalman-filter hyper-parameter instance (Fig. 16 grid).
    Kalman(KalmanFilter),
}

impl RunKind {
    /// Display name (scheme name or Kalman instance label).
    pub fn name(&self) -> String {
        match self {
            RunKind::Scheme(s) => s.name(),
            RunKind::Kalman(k) => k.label(),
        }
    }
}

/// How per-run seeds are resolved at expansion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSpec {
    /// Explicit base seed; trial `t` runs with `base + t * 0x1000` (the
    /// convention the hand-rolled figure harnesses used, kept so refactored
    /// figures reproduce their historical series exactly).
    Fixed(u64),
    /// Derived deterministically from the campaign seed and this run's grid
    /// coordinates via [`derive_seed`]; collision-free across any grid.
    FromCampaign,
}

/// One declarative scenario: (app, machine, scheme, iterations, magnitude,
/// trials) plus a seed policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Display label (defaults to the run kind's name).
    pub label: Option<String>,
    /// The application (already carrying its machine; see
    /// [`ScenarioSpec::on_machine`] to override).
    pub app: AppSpec,
    /// What to run.
    pub kind: RunKind,
    /// SPSA iterations granted to each trial.
    pub iterations: usize,
    /// Transient magnitude override (`None` = machine native).
    pub magnitude: Option<f64>,
    /// Independent repetitions of this scenario.
    pub trials: usize,
    /// Seed policy.
    pub seed: SeedSpec,
}

impl ScenarioSpec {
    /// A single-trial scenario for `scheme` on `app`, campaign-seeded.
    pub fn new(app: AppSpec, scheme: Scheme, iterations: usize) -> Self {
        ScenarioSpec {
            label: None,
            app,
            kind: RunKind::Scheme(scheme),
            iterations,
            magnitude: None,
            trials: 1,
            seed: SeedSpec::FromCampaign,
        }
    }

    /// A single-trial scenario running one Kalman filter instance.
    pub fn kalman(app: AppSpec, filter: KalmanFilter, iterations: usize) -> Self {
        ScenarioSpec {
            label: Some(filter.label()),
            app,
            kind: RunKind::Kalman(filter),
            iterations,
            magnitude: None,
            trials: 1,
            seed: SeedSpec::FromCampaign,
        }
    }

    /// Overrides the machine whose traces drive the noise.
    pub fn on_machine(mut self, machine: Machine) -> Self {
        self.app.machine = machine;
        self
    }

    /// Sets the transient magnitude (fraction of objective magnitude).
    pub fn with_magnitude(mut self, magnitude: f64) -> Self {
        self.magnitude = Some(magnitude);
        self
    }

    /// Sets an explicit base seed (see [`SeedSpec::Fixed`]).
    pub fn seeded(mut self, base: u64) -> Self {
        self.seed = SeedSpec::Fixed(base);
        self
    }

    /// Sets the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the display label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The effective display label.
    pub fn display_label(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.kind.name())
    }
}

/// One fully-resolved, independent run: a scenario instance at a specific
/// trial with its seed already fixed. `RunSpec`s are pure data — two equal
/// specs always produce bit-identical [`crate::report::RunRecord`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Flat index in campaign expansion order.
    pub index: usize,
    /// Index of the originating scenario.
    pub scenario: usize,
    /// Trial index within the scenario.
    pub trial: usize,
    /// Display label.
    pub label: String,
    /// The application to build (machine already resolved).
    pub app: AppSpec,
    /// What to run.
    pub kind: RunKind,
    /// Iterations granted.
    pub iterations: usize,
    /// Transient magnitude override.
    pub magnitude: Option<f64>,
    /// Fully-resolved seed.
    pub seed: u64,
}

/// A named, seeded, ordered collection of scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (used for artifact file names).
    pub name: String,
    /// Master seed for [`SeedSpec::FromCampaign`] scenarios.
    pub seed: u64,
    /// Scenarios, in expansion order.
    pub scenarios: Vec<ScenarioSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Campaign {
            name: name.into(),
            seed,
            scenarios: Vec::new(),
        }
    }

    /// Appends a scenario (builder form).
    #[must_use]
    pub fn with(mut self, scenario: ScenarioSpec) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Appends a scenario.
    pub fn push(&mut self, scenario: ScenarioSpec) {
        self.scenarios.push(scenario);
    }

    /// Expands every scenario x trial into a flat, ordered run list with
    /// fully-resolved seeds.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut runs = Vec::new();
        for (si, scenario) in self.scenarios.iter().enumerate() {
            for trial in 0..scenario.trials.max(1) {
                let seed = match scenario.seed {
                    SeedSpec::Fixed(base) => base.wrapping_add(trial as u64 * 0x1000),
                    SeedSpec::FromCampaign => run_seed(self.seed, si, trial),
                };
                runs.push(RunSpec {
                    index: runs.len(),
                    scenario: si,
                    trial,
                    label: scenario.display_label(),
                    app: scenario.app.clone(),
                    kind: scenario.kind.clone(),
                    iterations: scenario.iterations,
                    magnitude: scenario.magnitude,
                    seed,
                });
            }
        }
        runs
    }

    /// Total run count after expansion.
    pub fn len(&self) -> usize {
        self.scenarios.iter().map(|s| s.trials.max(1)).sum()
    }

    /// A stable content hash of the fully-expanded campaign: name, master
    /// seed, and every run's complete identity (grid coordinates, app,
    /// kind, iterations, magnitude bits, resolved seed).
    ///
    /// This is the key the cluster layer uses end to end — the
    /// coordinator/worker `Hello` handshake rejects a worker that expanded
    /// a different campaign, and every checkpoint-journal entry carries the
    /// fingerprint so `--resume` can never replay records into a campaign
    /// they were not produced by. Any change to the campaign definition
    /// (or to the spec types' textual form across a code change) flips the
    /// fingerprint and conservatively invalidates old checkpoints.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = qismet_cluster::Fingerprint::new();
        fp.update_str(&self.name);
        fp.update_u64(self.seed);
        for spec in self.expand() {
            fp.update_u64(spec.index as u64);
            fp.update_u64(spec.scenario as u64);
            fp.update_u64(spec.trial as u64);
            fp.update_str(&spec.label);
            fp.update_str(&format!("{:?}", spec.app));
            fp.update_str(&format!("{:?}", spec.kind));
            fp.update_u64(spec.iterations as u64);
            fp.update_str(&format!("{:?}", spec.magnitude.map(f64::to_bits)));
            fp.update_u64(spec.seed);
        }
        fp.finish()
    }

    /// Whether the campaign has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// Derives the seed of run (`scenario`, `trial`) from the campaign seed.
///
/// The grid coordinates are packed into a single stream label
/// (`scenario * 2^20 + trial`) and pushed through [`derive_seed`], whose
/// SplitMix64 finalization is a bijection for a fixed parent — so distinct
/// coordinates can never collide (for trials below `2^20`, far beyond any
/// real campaign).
pub fn run_seed(campaign_seed: u64, scenario: usize, trial: usize) -> u64 {
    debug_assert!(trial < (1 << 20), "trial index exceeds packing range");
    derive_seed(campaign_seed, ((scenario as u64) << 20) | trial as u64)
}

/// Cross-product grid specification: apps x machines x schemes (plus an
/// optional QISMET threshold-percentile axis) x magnitudes x trials,
/// expanded scenario-per-combination in that nesting order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrid {
    /// Applications to sweep.
    pub apps: Vec<AppSpec>,
    /// Machine overrides; empty = keep each app's native machine.
    pub machines: Vec<Machine>,
    /// Schemes to compare.
    pub schemes: Vec<Scheme>,
    /// QISMET |Tm| threshold percentiles (`1..=99`) to sweep in addition
    /// to `schemes`: each percentile `p` appends a
    /// [`Scheme::QismetAt`]`(p)` scenario to every grid cell, sharing the
    /// cell's seed so threshold variants stay pairable against the other
    /// schemes (the Fig. 19 sensitivity study, generalized to any grid).
    /// Empty = no extra axis.
    pub thresholds: Vec<u32>,
    /// Transient magnitudes; empty = one native-magnitude point.
    pub magnitudes: Vec<f64>,
    /// Iterations per run (already scaled).
    pub iterations: usize,
    /// Trials per grid point.
    pub trials: usize,
}

impl CampaignGrid {
    /// A one-app, scheme-comparison grid at native magnitude.
    pub fn new(app: AppSpec, schemes: Vec<Scheme>, iterations: usize) -> Self {
        CampaignGrid {
            apps: vec![app],
            machines: Vec::new(),
            schemes,
            thresholds: Vec::new(),
            magnitudes: Vec::new(),
            iterations,
            trials: 1,
        }
    }

    /// Expands into a campaign named `name` with master seed `seed`.
    ///
    /// Every scheme within one (app, machine, magnitude) grid cell shares
    /// the same per-trial seed — derived from the campaign seed and the
    /// *cell* coordinates, excluding the scheme axis — so cross-scheme
    /// comparisons see the same transient trace and starting parameters
    /// (the same-seed comparability convention of [`crate::run_scheme`]).
    pub fn into_campaign(self, name: impl Into<String>, seed: u64) -> Campaign {
        let mut campaign = Campaign::new(name, seed);
        let mut cell: u64 = 0;
        for app in &self.apps {
            let machines: Vec<Option<Machine>> = if self.machines.is_empty() {
                vec![None]
            } else {
                self.machines.iter().copied().map(Some).collect()
            };
            for machine in machines {
                let magnitudes: Vec<Option<f64>> = if self.magnitudes.is_empty() {
                    vec![None]
                } else {
                    self.magnitudes.iter().copied().map(Some).collect()
                };
                for magnitude in magnitudes {
                    let cell_seed = derive_seed(seed, cell);
                    cell += 1;
                    let cell_schemes = self
                        .schemes
                        .iter()
                        .copied()
                        .chain(self.thresholds.iter().map(|&p| Scheme::QismetAt(p)));
                    for scheme in cell_schemes {
                        let mut s = ScenarioSpec::new(app.clone(), scheme, self.iterations)
                            .with_trials(self.trials)
                            .seeded(cell_seed);
                        if let Some(m) = machine {
                            s = s.on_machine(m);
                        }
                        if let Some(mag) = magnitude {
                            s = s.with_magnitude(mag);
                        }
                        campaign.push(s);
                    }
                }
            }
        }
        campaign
    }
}

/// Parses a scheme from a CLI-friendly name (case-insensitive):
/// `baseline`, `qismet`, `qismet-conservative`, `qismet-aggressive`,
/// `blocking`, `resampling`, `second-order`, `kalman-best`,
/// `only-transients-<pct>`, `qismet-<pct>p` (threshold percentile in
/// `1..=99`).
pub fn parse_scheme(s: &str) -> Option<Scheme> {
    let lower = s.to_ascii_lowercase();
    Some(match lower.as_str() {
        "baseline" => Scheme::Baseline,
        "qismet" => Scheme::Qismet,
        "qismet-conservative" | "conservative" => Scheme::QismetConservative,
        "qismet-aggressive" | "aggressive" => Scheme::QismetAggressive,
        "blocking" => Scheme::Blocking,
        "resampling" => Scheme::Resampling,
        "second-order" | "2nd-order" => Scheme::SecondOrder,
        "kalman-best" | "kalman" => Scheme::KalmanBest,
        other => {
            if let Some(pct) = other.strip_prefix("only-transients-") {
                Scheme::OnlyTransients(pct.parse().ok()?)
            } else {
                let pct = other
                    .strip_prefix("qismet-")?
                    .strip_suffix('p')?
                    .parse()
                    .ok()
                    .filter(|p| (1..=99).contains(p))?;
                Scheme::QismetAt(pct)
            }
        }
    })
}

/// Parses a QISMET threshold percentile for [`CampaignGrid::thresholds`]
/// (`1..=99`, with or without a trailing `p`).
pub fn parse_threshold(s: &str) -> Option<u32> {
    s.trim_end_matches('p')
        .parse()
        .ok()
        .filter(|p| (1..=99).contains(p))
}

/// The default scaled iteration count for ad-hoc campaigns.
pub fn default_iterations() -> usize {
    scaled(500)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> AppSpec {
        AppSpec::by_id(2).unwrap()
    }

    #[test]
    fn expansion_orders_and_indexes_runs() {
        let campaign = Campaign::new("t", 9)
            .with(ScenarioSpec::new(app(), Scheme::Baseline, 50).with_trials(2))
            .with(ScenarioSpec::new(app(), Scheme::Qismet, 50));
        let runs = campaign.expand();
        assert_eq!(runs.len(), 3);
        assert_eq!(campaign.len(), 3);
        assert_eq!(
            runs.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(runs[0].scenario, 0);
        assert_eq!(runs[1].trial, 1);
        assert_eq!(runs[2].scenario, 1);
        assert_eq!(runs[2].label, "QISMET");
    }

    #[test]
    fn fixed_seeds_follow_figure_convention() {
        let campaign = Campaign::new("t", 0).with(
            ScenarioSpec::new(app(), Scheme::Baseline, 50)
                .seeded(0xf13)
                .with_trials(3),
        );
        let seeds: Vec<u64> = campaign.expand().iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![0xf13, 0xf13 + 0x1000, 0xf13 + 0x2000]);
    }

    #[test]
    fn fingerprint_tracks_campaign_identity() {
        let base = || {
            Campaign::new("t", 9)
                .with(ScenarioSpec::new(app(), Scheme::Baseline, 50).with_trials(2))
        };
        assert_eq!(base().fingerprint(), base().fingerprint());
        let renamed = Campaign::new("t2", 9)
            .with(ScenarioSpec::new(app(), Scheme::Baseline, 50).with_trials(2));
        assert_ne!(base().fingerprint(), renamed.fingerprint());
        let reseeded = Campaign::new("t", 10)
            .with(ScenarioSpec::new(app(), Scheme::Baseline, 50).with_trials(2));
        assert_ne!(base().fingerprint(), reseeded.fingerprint());
        let regridded =
            Campaign::new("t", 9).with(ScenarioSpec::new(app(), Scheme::Qismet, 50).with_trials(2));
        assert_ne!(base().fingerprint(), regridded.fingerprint());
        let remagnituded = Campaign::new("t", 9).with(
            ScenarioSpec::new(app(), Scheme::Baseline, 50)
                .with_trials(2)
                .with_magnitude(0.25),
        );
        assert_ne!(base().fingerprint(), remagnituded.fingerprint());
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = run_seed(42, 0, 0);
        assert_eq!(a, run_seed(42, 0, 0));
        assert_ne!(a, run_seed(42, 0, 1));
        assert_ne!(a, run_seed(42, 1, 0));
        assert_ne!(run_seed(42, 1, 0), run_seed(43, 1, 0));
    }

    #[test]
    fn grid_cross_product_shape() {
        let grid = CampaignGrid {
            apps: vec![AppSpec::by_id(1).unwrap(), AppSpec::by_id(2).unwrap()],
            machines: vec![Machine::Sydney, Machine::Jakarta],
            schemes: vec![Scheme::Baseline, Scheme::Qismet],
            thresholds: Vec::new(),
            magnitudes: vec![0.1, 0.5],
            iterations: 50,
            trials: 3,
        };
        let campaign = grid.into_campaign("g", 7);
        assert_eq!(campaign.scenarios.len(), 2 * 2 * 2 * 2);
        assert_eq!(campaign.len(), 2 * 2 * 2 * 2 * 3);
        // Nesting order: scheme fastest, then magnitude, then machine.
        assert_eq!(
            campaign.scenarios[0].kind,
            RunKind::Scheme(Scheme::Baseline)
        );
        assert_eq!(campaign.scenarios[1].kind, RunKind::Scheme(Scheme::Qismet));
        assert_eq!(campaign.scenarios[0].magnitude, Some(0.1));
        assert_eq!(campaign.scenarios[2].magnitude, Some(0.5));
        assert_eq!(campaign.scenarios[0].app.machine, Machine::Sydney);
        assert_eq!(campaign.scenarios[4].app.machine, Machine::Jakarta);
        // Schemes within one (app, machine, magnitude) cell share a seed so
        // cross-scheme results stay directly comparable; adjacent cells do
        // not.
        assert_eq!(campaign.scenarios[0].seed, campaign.scenarios[1].seed);
        assert_ne!(campaign.scenarios[0].seed, campaign.scenarios[2].seed);
    }

    #[test]
    fn scheme_parsing_roundtrip() {
        for (text, want) in [
            ("baseline", Scheme::Baseline),
            ("QISMET", Scheme::Qismet),
            ("qismet-conservative", Scheme::QismetConservative),
            ("qismet-aggressive", Scheme::QismetAggressive),
            ("blocking", Scheme::Blocking),
            ("resampling", Scheme::Resampling),
            ("second-order", Scheme::SecondOrder),
            ("kalman-best", Scheme::KalmanBest),
            ("only-transients-90", Scheme::OnlyTransients(90)),
            ("qismet-85p", Scheme::QismetAt(85)),
            ("QISMET-99P", Scheme::QismetAt(99)),
        ] {
            assert_eq!(parse_scheme(text), Some(want), "{text}");
        }
        assert_eq!(parse_scheme("nope"), None);
        assert_eq!(parse_scheme("only-transients-x"), None);
        assert_eq!(parse_scheme("qismet-0p"), None);
        assert_eq!(parse_scheme("qismet-100p"), None);
        assert_eq!(parse_scheme("qismet-xp"), None);
    }

    #[test]
    fn threshold_axis_appends_qismet_at_scenarios_per_cell() {
        let grid = CampaignGrid {
            apps: vec![app()],
            machines: Vec::new(),
            schemes: vec![Scheme::Baseline],
            thresholds: vec![75, 90, 99],
            magnitudes: vec![0.1, 0.5],
            iterations: 50,
            trials: 2,
        };
        let campaign = grid.into_campaign("thr", 7);
        // 2 magnitude cells x (1 scheme + 3 thresholds).
        assert_eq!(campaign.scenarios.len(), 2 * 4);
        assert_eq!(
            campaign.scenarios[1].kind,
            RunKind::Scheme(Scheme::QismetAt(75))
        );
        assert_eq!(
            campaign.scenarios[3].kind,
            RunKind::Scheme(Scheme::QismetAt(99))
        );
        // Threshold variants share their cell's seed with the baseline so
        // paired cross-scheme comparisons stay valid.
        assert_eq!(campaign.scenarios[0].seed, campaign.scenarios[3].seed);
        assert_ne!(campaign.scenarios[0].seed, campaign.scenarios[4].seed);
        assert_eq!(campaign.scenarios[1].display_label(), "QISMET (75p)");
    }

    #[test]
    fn threshold_parsing_bounds() {
        assert_eq!(parse_threshold("90"), Some(90));
        assert_eq!(parse_threshold("85p"), Some(85));
        assert_eq!(parse_threshold("0"), None);
        assert_eq!(parse_threshold("100"), None);
        assert_eq!(parse_threshold("x"), None);
    }
}

//! Campaign-as-a-service: the bench-side adapter over
//! [`qismet_cluster::daemon`].
//!
//! Three roles live here, all speaking the same length-framed protocol:
//!
//! * [`CampaignPlanner`] — the daemon's [`JobPlanner`]: expands a
//!   [`GridSpec`] JSON payload into a [`Campaign`] and, when a job
//!   settles, merges its records into a [`CampaignReport`] written under
//!   the report directory — byte-identical to a sequential run of the
//!   same campaign, whatever the fleet did.
//! * [`register_worker`] — the elastic worker loop behind
//!   `campaign --register <addr>`: registers at the daemon's rendezvous
//!   address, pulls batches (re-expanding each job's grid payload once
//!   and caching it), and re-dials with backoff when the daemon
//!   connection drops. Workers join a live campaign, leave voluntarily
//!   ([`RegisterOptions::deregister_after`]), and a name quarantined by
//!   the daemon gets a typed [`ServiceError::Refused`] back.
//! * The client verbs — [`submit_job`], [`job_status`], [`cancel_job`],
//!   [`drain_service`] — one short authenticated session each, with
//!   typed [`ServiceError`]s for bad tokens, unknown jobs, and duplicate
//!   submissions.
//!
//! A campaign travels the wire as a [`GridSpec`] — the serializable
//! mirror of [`CampaignGrid`] keyed by app ids, machine names, and CLI
//! scheme names — so daemon and worker re-expand the *same* campaign and
//! prove it with the fingerprint handshake, exactly like the one-shot
//! coordinator path.

use crate::distributed::{channel_end, run_assignment, SessionOutcome, StatsTracker};
use crate::report::{CampaignReport, ReportMeta, RunRecord};
use crate::scenario::{parse_scheme, Campaign, CampaignGrid, RunSpec};
use crate::{Scheme, SweepExecutor};
use qismet_cluster::daemon::{JobPlan, JobPlanner};
use qismet_cluster::queue::JobSpec;
use qismet_cluster::{
    BuildStamp, DrainOk, Hello, Message, Register, ServiceErrKind, StatusReply, Submit, Submitted,
    TcpTransport, Transport,
};
use qismet_qnoise::Machine;
use qismet_vqa::AppSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

pub use qismet_cluster::daemon::{serve, ServiceConfig, ServiceSummary};

/// The serializable campaign description clients submit and workers
/// re-expand: a [`CampaignGrid`] keyed by stable identifiers (app ids,
/// machine names, CLI scheme names) instead of in-process types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Campaign name (also names the report artifact).
    pub name: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Application ids ([`AppSpec::by_id`]).
    pub apps: Vec<u8>,
    /// Machine names (case-insensitive); empty keeps each app's native
    /// machine.
    pub machines: Vec<String>,
    /// CLI scheme names ([`parse_scheme`]).
    pub schemes: Vec<String>,
    /// QISMET threshold percentiles to sweep in addition to `schemes`.
    pub thresholds: Vec<u32>,
    /// Transient magnitudes; empty = one native-magnitude point.
    pub magnitudes: Vec<f64>,
    /// Iterations per run (already scaled).
    pub iterations: usize,
    /// Trials per grid point.
    pub trials: usize,
}

impl GridSpec {
    /// Resolves the stable identifiers and expands into a [`Campaign`].
    ///
    /// # Errors
    ///
    /// Reports the first unknown app id, machine name, or scheme name.
    pub fn to_campaign(&self) -> Result<Campaign, String> {
        let mut apps = Vec::with_capacity(self.apps.len());
        for &id in &self.apps {
            apps.push(AppSpec::by_id(id).ok_or_else(|| format!("unknown app id {id}"))?);
        }
        if apps.is_empty() {
            return Err("grid has no apps".into());
        }
        let mut machines = Vec::with_capacity(self.machines.len());
        for name in &self.machines {
            machines
                .push(machine_by_name(name).ok_or_else(|| format!("unknown machine `{name}`"))?);
        }
        let mut schemes = Vec::with_capacity(self.schemes.len());
        for name in &self.schemes {
            schemes.push(parse_scheme(name).ok_or_else(|| format!("unknown scheme `{name}`"))?);
        }
        if schemes.is_empty() && self.thresholds.is_empty() {
            return Err("grid has no schemes and no thresholds".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        let grid = CampaignGrid {
            apps,
            machines,
            schemes,
            thresholds: self.thresholds.clone(),
            magnitudes: self.magnitudes.clone(),
            iterations: self.iterations,
            trials: self.trials.max(1),
        };
        Ok(grid.into_campaign(self.name.clone(), self.seed))
    }

    /// The JSON payload form shipped in `Submit` and `JobOpen` frames.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("grid spec serializes")
    }

    /// Parses a payload back into a grid spec.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON or a non-grid shape.
    pub fn from_json(payload: &str) -> Result<Self, String> {
        serde_json::from_str(payload).map_err(|e| format!("payload is not a grid spec: {e}"))
    }
}

/// Looks a machine up by its display name, case-insensitively.
pub fn machine_by_name(name: &str) -> Option<Machine> {
    Machine::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

/// The CLI-facing name of a scheme — the inverse of [`parse_scheme`],
/// used to serialize grid definitions into [`GridSpec`] payloads.
pub fn scheme_cli_name(scheme: Scheme) -> String {
    match scheme {
        Scheme::Baseline => "baseline".into(),
        Scheme::Qismet => "qismet".into(),
        Scheme::QismetConservative => "qismet-conservative".into(),
        Scheme::QismetAggressive => "qismet-aggressive".into(),
        Scheme::Blocking => "blocking".into(),
        Scheme::Resampling => "resampling".into(),
        Scheme::SecondOrder => "second-order".into(),
        Scheme::KalmanBest => "kalman-best".into(),
        Scheme::OnlyTransients(p) => format!("only-transients-{p}"),
        Scheme::QismetAt(p) => format!("qismet-{p}p"),
    }
}

/// The daemon-side planner: [`GridSpec`] payloads in, byte-identical
/// [`CampaignReport`] artifacts out.
#[derive(Debug, Clone)]
pub struct CampaignPlanner {
    /// Where settled jobs write their `<name>.json` reports.
    pub report_dir: PathBuf,
}

impl JobPlanner for CampaignPlanner {
    fn open(&self, payload: &str) -> Result<JobPlan, String> {
        let campaign = GridSpec::from_json(payload)?.to_campaign()?;
        let specs = campaign.expand();
        Ok(JobPlan {
            fingerprint: campaign.fingerprint(),
            spec_count: specs.len(),
            seeds: specs.iter().map(|s| s.seed).collect(),
        })
    }

    fn finalize(
        &self,
        spec: &JobSpec,
        records: Vec<(usize, serde::Value)>,
    ) -> Result<String, String> {
        let campaign = GridSpec::from_json(&spec.payload)?.to_campaign()?;
        let mut parts = Vec::with_capacity(records.len());
        for (index, value) in &records {
            let record = RunRecord::from_value(value)
                .map_err(|e| format!("spec {index} journaled a malformed record: {e}"))?;
            parts.push((*index, record));
        }
        let expected: Vec<usize> = (0..spec.spec_count).collect();
        // The same exactly-once, expansion-order merge as the one-shot
        // coordinator — so the report bytes cannot depend on which worker
        // produced which record, or in what order.
        let records = qismet_cluster::merge_indexed(&expected, parts).map_err(|e| e.to_string())?;
        let report = CampaignReport {
            name: campaign.name.clone(),
            seed: campaign.seed,
            meta: ReportMeta::current(),
            records,
        };
        let path = report
            .write_json_in(&self.report_dir, None)
            .map_err(|e| format!("report write failed: {e}"))?;
        Ok(path.display().to_string())
    }
}

/// Typed failures of the service-client verbs and the registering worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The daemon refused the request with a typed error.
    Refused {
        /// Which refusal.
        kind: ServiceErrKind,
        /// Human-readable detail.
        detail: String,
    },
    /// The peer broke the protocol (unexpected frame).
    Protocol(String),
    /// The channel failed.
    Io(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Refused { kind, detail } => write!(f, "refused ({kind:?}): {detail}"),
            ServiceError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ServiceError::Io(detail) => write!(f, "service channel failed: {detail}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    fn io(e: impl std::fmt::Display) -> Self {
        ServiceError::Io(e.to_string())
    }
}

/// Opens one authenticated client session: TCP dial, `Hello` handshake
/// under `token`, daemon `Hello` (or typed refusal) back.
fn client_session(
    addr: &str,
    token: &str,
    timeout: Duration,
) -> Result<TcpTransport, ServiceError> {
    let mut transport = TcpTransport::connect(addr, timeout).map_err(ServiceError::io)?;
    let _ = transport.set_read_timeout(Some(timeout));
    transport
        .send(&Message::Hello(Hello {
            worker_id: 0,
            fingerprint: 0,
            spec_count: 0,
            token: token.to_string(),
            threads: 0,
            build: BuildStamp::local(cfg!(feature = "parallel")),
        }))
        .map_err(ServiceError::io)?;
    match transport.recv().map_err(ServiceError::io)? {
        Message::Hello(_) => Ok(transport),
        Message::ServiceErr(err) => Err(ServiceError::Refused {
            kind: err.kind,
            detail: err.detail,
        }),
        other => Err(ServiceError::Protocol(format!(
            "expected Hello or ServiceErr, got {other:?}"
        ))),
    }
}

/// Default dial/handshake deadline for the client verbs.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Submits a campaign to a service daemon under a tenant token.
///
/// # Errors
///
/// Typed refusals for bad tokens, unparseable grids, duplicate
/// non-terminal fingerprints, and a draining daemon; I/O otherwise.
pub fn submit_job(
    addr: &str,
    token: &str,
    grid: &GridSpec,
    priority: i64,
) -> Result<Submitted, ServiceError> {
    let mut transport = client_session(addr, token, CLIENT_TIMEOUT)?;
    transport
        .send(&Message::Submit(Submit {
            name: grid.name.clone(),
            priority,
            payload: grid.to_json(),
        }))
        .map_err(ServiceError::io)?;
    match transport.recv().map_err(ServiceError::io)? {
        Message::Submitted(submitted) => Ok(submitted),
        Message::ServiceErr(err) => Err(ServiceError::Refused {
            kind: err.kind,
            detail: err.detail,
        }),
        other => Err(ServiceError::Protocol(format!(
            "expected Submitted, got {other:?}"
        ))),
    }
}

/// Fetches the queue/fleet status visible to `token`'s tenant.
///
/// # Errors
///
/// Typed refusal for a bad token; I/O otherwise.
pub fn job_status(addr: &str, token: &str) -> Result<StatusReply, ServiceError> {
    let mut transport = client_session(addr, token, CLIENT_TIMEOUT)?;
    transport.send(&Message::Status).map_err(ServiceError::io)?;
    match transport.recv().map_err(ServiceError::io)? {
        Message::StatusReply(reply) => Ok(reply),
        Message::ServiceErr(err) => Err(ServiceError::Refused {
            kind: err.kind,
            detail: err.detail,
        }),
        other => Err(ServiceError::Protocol(format!(
            "expected StatusReply, got {other:?}"
        ))),
    }
}

/// Cancels a job by id (tenants can only cancel their own).
///
/// # Errors
///
/// Typed refusals for bad tokens and unknown/foreign/settled jobs; I/O
/// otherwise.
pub fn cancel_job(addr: &str, token: &str, job_id: u64) -> Result<u64, ServiceError> {
    let mut transport = client_session(addr, token, CLIENT_TIMEOUT)?;
    transport
        .send(&Message::Cancel(qismet_cluster::protocol::Cancel {
            job_id,
        }))
        .map_err(ServiceError::io)?;
    match transport.recv().map_err(ServiceError::io)? {
        Message::CancelOk(id) => Ok(id),
        Message::ServiceErr(err) => Err(ServiceError::Refused {
            kind: err.kind,
            detail: err.detail,
        }),
        other => Err(ServiceError::Protocol(format!(
            "expected CancelOk, got {other:?}"
        ))),
    }
}

/// Drains a service daemon: refuses new submissions, waits for every
/// queued/running job to settle, then stops the daemon. Blocks until the
/// drain completes (no read deadline — jobs may take a while).
///
/// # Errors
///
/// Typed refusal for a bad token; I/O otherwise.
pub fn drain_service(addr: &str, token: &str) -> Result<DrainOk, ServiceError> {
    let mut transport = client_session(addr, token, CLIENT_TIMEOUT)?;
    let _ = transport.set_read_timeout(None);
    transport.send(&Message::Drain).map_err(ServiceError::io)?;
    match transport.recv().map_err(ServiceError::io)? {
        Message::DrainOk(ok) => Ok(ok),
        Message::ServiceErr(err) => Err(ServiceError::Refused {
            kind: err.kind,
            detail: err.detail,
        }),
        other => Err(ServiceError::Protocol(format!(
            "expected DrainOk, got {other:?}"
        ))),
    }
}

/// How `campaign --register` behaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterOptions {
    /// Worker name — the quarantine identity strikes accrue to.
    pub name: String,
    /// Fleet token presented at registration.
    pub token: String,
    /// Executor threads (0 = all cores under `parallel`).
    pub threads: usize,
    /// In-state kernel threads per run.
    pub inner_threads: usize,
    /// Keepalive interval while a batch computes.
    pub heartbeat: Option<Duration>,
    /// Re-dial budget after a lost daemon connection (each attempt backs
    /// off doubling from 50ms to 5s). 0 = give up on first loss.
    pub max_reconnects: usize,
    /// Deregister voluntarily after serving this many batches (elastic
    /// leave; `None` = serve until the daemon shuts the fleet down).
    pub deregister_after: Option<usize>,
    /// TCP dial deadline per attempt.
    pub connect_timeout: Duration,
}

impl Default for RegisterOptions {
    fn default() -> Self {
        RegisterOptions {
            name: "worker".into(),
            token: String::new(),
            threads: 1,
            inner_threads: 1,
            heartbeat: Some(Duration::from_secs(2)),
            max_reconnects: 10,
            deregister_after: None,
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// What a registered worker did, for operator summaries and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegisterStats {
    /// Daemon sessions established (1 + reconnects).
    pub sessions: usize,
    /// Batches served to completion.
    pub batches: usize,
    /// Distinct jobs this worker expanded.
    pub jobs: usize,
}

/// How one registered session ended, worker-side.
enum RegisteredEnd {
    /// Daemon sent `Shutdown` (drain, or an acknowledged deregister).
    Finished,
    /// The channel dropped; re-dial if budget remains.
    Lost,
}

/// The elastic worker loop behind `campaign --register <addr>`: dials the
/// daemon, registers under [`RegisterOptions::name`], and serves pulled
/// batches until the daemon drains, the voluntary-leave budget is hit, or
/// the reconnect budget runs out.
///
/// # Errors
///
/// [`ServiceError::Refused`] for typed registration refusals (bad fleet
/// token, quarantined name), [`ServiceError::Protocol`] when the daemon
/// breaks the frame contract, [`ServiceError::Io`] when the connection is
/// lost with no reconnect budget left.
pub fn register_worker(addr: &str, opts: &RegisterOptions) -> Result<RegisterStats, ServiceError> {
    // Like the other worker modes: telemetry on, so `Done` frames carry
    // stats deltas (never affects computed records).
    qismet_telemetry::set_enabled(true);
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    let executor = SweepExecutor::with_threads(threads).with_inner_threads(opts.inner_threads);
    // Per-job expansion cache: jobs are re-announced per session, but an
    // expansion is pure, so re-joining workers re-derive identical specs.
    let mut jobs: BTreeMap<u64, (u64, Vec<RunSpec>)> = BTreeMap::new();
    let mut stats = RegisterStats::default();
    let mut reconnects_left = opts.max_reconnects;
    let mut backoff = Duration::from_millis(50);
    loop {
        let mut transport = match TcpTransport::connect(addr, opts.connect_timeout) {
            Ok(t) => t,
            Err(e) => {
                if stats.sessions == 0 || reconnects_left == 0 {
                    return Err(ServiceError::io(format!("dial {addr} failed: {e}")));
                }
                reconnects_left -= 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(5));
                continue;
            }
        };
        let _ = transport.set_read_timeout(Some(opts.connect_timeout));
        if let Err(e) = transport.send(&Message::Register(Register {
            name: opts.name.clone(),
            token: opts.token.clone(),
            threads,
            build: BuildStamp::local(cfg!(feature = "parallel")),
        })) {
            return Err(ServiceError::io(format!("registration send failed: {e}")));
        }
        let slot = match transport.recv() {
            Ok(Message::RegisterAck(slot)) => slot,
            Ok(Message::ServiceErr(err)) => {
                return Err(ServiceError::Refused {
                    kind: err.kind,
                    detail: err.detail,
                })
            }
            Ok(other) => {
                return Err(ServiceError::Protocol(format!(
                    "expected RegisterAck, got {other:?}"
                )))
            }
            Err(e) => return Err(ServiceError::io(format!("registration reply failed: {e}"))),
        };
        stats.sessions += 1;
        eprintln!(
            "[register] session {}: `{}` holds slot {slot} at {addr}",
            stats.sessions, opts.name
        );
        match serve_registered(&mut transport, &executor, opts, &mut jobs, &mut stats, slot) {
            Ok(RegisteredEnd::Finished) => return Ok(stats),
            Ok(RegisteredEnd::Lost) => {
                if reconnects_left == 0 {
                    return Err(ServiceError::Io(
                        "daemon connection lost with no reconnect budget left".into(),
                    ));
                }
                reconnects_left -= 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(5));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves one registered session: `Ready`-pull loop until shutdown,
/// voluntary leave, or channel loss.
fn serve_registered(
    transport: &mut TcpTransport,
    executor: &SweepExecutor,
    opts: &RegisterOptions,
    jobs: &mut BTreeMap<u64, (u64, Vec<RunSpec>)>,
    stats: &mut RegisterStats,
    slot: u64,
) -> Result<RegisteredEnd, ServiceError> {
    let mut wire_stats = StatsTracker::default();
    // The daemon may park us while no work is runnable: no read deadline.
    let _ = transport.set_read_timeout(None);
    let mut current: Option<u64> = None;
    loop {
        if matches!(opts.deregister_after, Some(limit) if stats.batches >= limit) {
            // Voluntary leave: no strike, daemon acknowledges with
            // Shutdown (best-effort — it may already be gone).
            let _ = transport.send(&Message::Deregister);
            let _ = transport.recv();
            eprintln!(
                "[register] `{}` deregistered after {} batch(es)",
                opts.name, stats.batches
            );
            return Ok(RegisteredEnd::Finished);
        }
        if transport.send(&Message::Ready).is_err() {
            return Ok(RegisteredEnd::Lost);
        }
        let message = match transport.recv() {
            Ok(message) => message,
            Err(e) => {
                return match channel_end("registered read", e) {
                    Ok(_) => Ok(RegisteredEnd::Lost),
                    Err(e) => Err(ServiceError::io(e)),
                }
            }
        };
        let assign = match message {
            Message::Shutdown => return Ok(RegisteredEnd::Finished),
            Message::Pong => continue,
            Message::JobOpen(open) => {
                // Re-expand the payload ourselves and prove we agree via
                // the fingerprint — same trust model as the Hello
                // handshake on the one-shot path.
                let expanded = GridSpec::from_json(&open.payload)
                    .and_then(|grid| grid.to_campaign())
                    .map(|campaign| {
                        let specs = campaign.expand();
                        (campaign.fingerprint(), specs)
                    });
                let (fingerprint, specs) = match expanded {
                    Ok(pair) => pair,
                    Err(detail) => {
                        // Typed refusal; the daemon cuts this session and
                        // re-dispatches elsewhere.
                        let _ = transport.send(&Message::ServiceErr(
                            qismet_cluster::protocol::ServiceErr {
                                kind: ServiceErrKind::BadPayload,
                                detail,
                            },
                        ));
                        return Ok(RegisteredEnd::Lost);
                    }
                };
                if jobs.insert(open.job_id, (fingerprint, specs)).is_none() {
                    stats.jobs += 1;
                }
                let (fingerprint, specs) = &jobs[&open.job_id];
                if transport
                    .send(&Message::JobReady(qismet_cluster::protocol::JobReady {
                        job_id: open.job_id,
                        fingerprint: *fingerprint,
                        spec_count: specs.len(),
                    }))
                    .is_err()
                {
                    return Ok(RegisteredEnd::Lost);
                }
                current = Some(open.job_id);
                match transport.recv() {
                    Ok(Message::Assign(assign)) => assign,
                    Ok(Message::Shutdown) => return Ok(RegisteredEnd::Finished),
                    Ok(other) => {
                        return Err(ServiceError::Protocol(format!(
                            "expected Assign after JobReady, got {other:?}"
                        )))
                    }
                    Err(_) => return Ok(RegisteredEnd::Lost),
                }
            }
            Message::Assign(assign) => assign,
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected JobOpen/Assign/Shutdown, got {other:?}"
                )))
            }
        };
        let Some(job_id) = current else {
            return Err(ServiceError::Protocol(
                "daemon assigned a batch before opening a job".into(),
            ));
        };
        let specs = &jobs[&job_id].1;
        match run_assignment(
            executor,
            specs,
            slot as usize,
            &assign.indices,
            transport,
            opts.heartbeat,
            &mut wire_stats,
        ) {
            Ok(None) => stats.batches += 1,
            Ok(Some(SessionOutcome::Shutdown)) => return Ok(RegisteredEnd::Finished),
            Ok(Some(_)) => return Ok(RegisteredEnd::Lost),
            Err(e) => return Err(ServiceError::io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec {
            name: "svc".into(),
            seed: 11,
            apps: vec![1, 2],
            machines: vec!["Guadalupe".into()],
            schemes: vec!["baseline".into(), "qismet-85p".into()],
            thresholds: vec![75],
            magnitudes: vec![0.25],
            iterations: 40,
            trials: 2,
        }
    }

    #[test]
    fn grid_spec_roundtrips_and_expands_like_the_native_grid() {
        let spec = grid();
        let parsed = GridSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        let campaign = parsed.to_campaign().unwrap();
        // 2 apps x 1 machine x 1 magnitude x (2 schemes + 1 threshold).
        assert_eq!(campaign.scenarios.len(), 2 * 3);
        assert_eq!(campaign.len(), 2 * 3 * 2);
        // Two independent expansions agree on the fingerprint — the
        // daemon/worker handshake invariant.
        assert_eq!(
            campaign.fingerprint(),
            GridSpec::from_json(&spec.to_json())
                .unwrap()
                .to_campaign()
                .unwrap()
                .fingerprint()
        );
    }

    #[test]
    fn grid_spec_rejects_unknown_identifiers() {
        let mut bad = grid();
        bad.apps = vec![99];
        assert!(bad.to_campaign().unwrap_err().contains("app id 99"));
        let mut bad = grid();
        bad.machines = vec!["nonesuch".into()];
        assert!(bad.to_campaign().unwrap_err().contains("nonesuch"));
        let mut bad = grid();
        bad.schemes = vec!["warp-drive".into()];
        assert!(bad.to_campaign().unwrap_err().contains("warp-drive"));
        let mut bad = grid();
        bad.schemes.clear();
        bad.thresholds.clear();
        assert!(bad.to_campaign().is_err());
    }

    #[test]
    fn scheme_cli_names_roundtrip_through_the_parser() {
        for scheme in [
            Scheme::Baseline,
            Scheme::Qismet,
            Scheme::QismetConservative,
            Scheme::QismetAggressive,
            Scheme::Blocking,
            Scheme::Resampling,
            Scheme::SecondOrder,
            Scheme::KalmanBest,
            Scheme::OnlyTransients(90),
            Scheme::QismetAt(85),
        ] {
            assert_eq!(parse_scheme(&scheme_cli_name(scheme)), Some(scheme));
        }
    }

    #[test]
    fn planner_open_matches_expansion() {
        let planner = CampaignPlanner {
            report_dir: std::env::temp_dir(),
        };
        let spec = grid();
        let plan = planner.open(&spec.to_json()).unwrap();
        let campaign = spec.to_campaign().unwrap();
        assert_eq!(plan.fingerprint, campaign.fingerprint());
        assert_eq!(plan.spec_count, campaign.len());
        let seeds: Vec<u64> = campaign.expand().iter().map(|s| s.seed).collect();
        assert_eq!(plan.seeds, seeds);
        assert!(planner.open("{not json").is_err());
    }
}

//! `campaign` — run an arbitrary user-specified sweep grid from the CLI.
//!
//! Expands machines x schemes x magnitudes x apps x trials into a flat run
//! list, executes it through the sweep engine (parallel under
//! `--features parallel`), prints a summary table, and writes JSON + CSV
//! artifacts under `target/paper_results/`.
//!
//! ```text
//! cargo run --release -p qismet-bench --bin campaign -- \
//!     --apps 2 --machines Guadalupe,Sydney --schemes baseline,qismet \
//!     --magnitudes 0.1,0.5 --iterations 300 --trials 2 --seed 42
//! ```

use qismet_bench::{
    f2, f4, parse_scheme, print_table, scaled, CampaignGrid, Scheme, SweepExecutor,
};
use qismet_qnoise::Machine;
use qismet_vqa::AppSpec;

const USAGE: &str = "\
campaign — declarative QISMET sweep runner

USAGE:
    campaign [OPTIONS]

OPTIONS:
    --apps <ids>          Comma-separated Table 1 app ids (default: 2)
    --machines <names>    Comma-separated machine names (default: each app's native machine)
    --schemes <names>     Comma-separated schemes (default: baseline,qismet)
                          [baseline, qismet, qismet-conservative, qismet-aggressive,
                           blocking, resampling, second-order, kalman-best,
                           only-transients-<pct>]
    --magnitudes <vals>   Comma-separated transient magnitudes (default: machine native)
    --iterations <n>      SPSA iterations per run (default: scaled 500)
    --trials <n>          Trials per grid point (default: 1)
    --seed <n>            Campaign master seed; per-run seeds derive from it (default: 7)
    --threads <n>         Worker threads, 0 = all cores (needs --features parallel)
    --name <str>          Campaign/artifact name (default: campaign)
    -h, --help            Print this help
";

fn parse_list<T>(value: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()).unwrap_or_else(|| die(&format!("invalid {what}: `{s}`"))))
        .collect()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn machine_by_name(name: &str) -> Option<Machine> {
    Machine::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

struct Args {
    apps: Vec<AppSpec>,
    machines: Vec<Machine>,
    schemes: Vec<Scheme>,
    magnitudes: Vec<f64>,
    iterations: usize,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
    name: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        apps: vec![AppSpec::by_id(2).expect("App2")],
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline, Scheme::Qismet],
        magnitudes: Vec::new(),
        iterations: scaled(500),
        trials: 1,
        seed: 7,
        threads: None,
        name: "campaign".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "-h" || flag == "--help" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let value = argv
            .get(i + 1)
            .unwrap_or_else(|| die(&format!("missing value for `{flag}`")));
        match flag {
            "--apps" => {
                args.apps = parse_list(value, "app id", |s| {
                    s.parse::<u8>().ok().and_then(AppSpec::by_id)
                });
            }
            "--machines" => {
                args.machines = parse_list(value, "machine", machine_by_name);
            }
            "--schemes" => {
                args.schemes = parse_list(value, "scheme", parse_scheme);
            }
            "--magnitudes" => {
                args.magnitudes = parse_list(value, "magnitude", |s| s.parse::<f64>().ok());
            }
            "--iterations" => {
                args.iterations = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid iteration count `{value}`")));
            }
            "--trials" => {
                args.trials = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid trial count `{value}`")));
            }
            "--seed" => {
                args.seed = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid seed `{value}`")));
            }
            "--threads" => {
                args.threads = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| die(&format!("invalid thread count `{value}`"))),
                );
            }
            "--name" => {
                args.name = value.clone();
            }
            other => die(&format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if args.apps.is_empty() || args.schemes.is_empty() {
        die("need at least one app and one scheme");
    }
    args
}

fn main() {
    let args = parse_args();
    let grid = CampaignGrid {
        apps: args.apps,
        machines: args.machines,
        schemes: args.schemes,
        magnitudes: args.magnitudes,
        iterations: args.iterations,
        trials: args.trials,
    };
    let campaign = grid.into_campaign(args.name, args.seed);
    let executor = match args.threads {
        Some(t) => SweepExecutor::with_threads(t),
        None => SweepExecutor::new(),
    };
    let n = campaign.len();
    println!(
        "campaign `{}`: {} scenarios, {} runs, {} iterations each, {} worker(s)",
        campaign.name,
        campaign.scenarios.len(),
        n,
        args.iterations,
        executor.effective_threads(n),
    );
    let started = std::time::Instant::now();
    let report = executor.run(&campaign);
    println!(
        "completed {n} runs in {:.2}s",
        started.elapsed().as_secs_f64()
    );

    // Per-run summary table (series live in the JSON artifact).
    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.machine.clone(),
                r.scheme.clone(),
                r.magnitude.map(f2).unwrap_or_else(|| "native".into()),
                r.trial.to_string(),
                f4(r.final_energy),
                r.jobs.to_string(),
                r.skips.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("campaign `{}` results", report.name),
        &[
            "app",
            "machine",
            "scheme",
            "magnitude",
            "trial",
            "final_E",
            "jobs",
            "skips",
        ],
        &rows,
    );
    report.write_json(None);
    report.write_runs_csv(None);
}

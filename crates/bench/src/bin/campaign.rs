//! `campaign` — run an arbitrary user-specified sweep grid from the CLI.
//!
//! Expands machines x schemes x threshold-percentiles x magnitudes x apps x
//! trials into a flat run list and executes it through the sweep engine —
//! in-process (parallel under `--features parallel`), sharded across local
//! worker *processes* with `--workers N`, and/or fanned to remote worker
//! *machines* with `--connect host:port,...` (each remote end being this
//! same binary in `--serve` mode). Local and remote workers mix freely in
//! one pool, and each worker runs its batches through its own threaded
//! executor (`--threads`). Sharded runs can checkpoint every completed run
//! to an append-only journal (`--checkpoint`) and `--resume` an
//! interrupted invocation, re-executing only the missing runs; the merged
//! report is byte-identical to a sequential run whatever the topology.
//! Prints a summary table (with bootstrap confidence intervals and paired
//! cross-scheme significance tests when scenarios have multiple trials)
//! and writes JSON + CSV artifacts under `target/paper_results/`.
//!
//! ```text
//! # worker daemon on each machine (same grid flags + a bind address):
//! cargo run --release -p qismet-bench --bin campaign -- \
//!     --apps 2 --schemes baseline,qismet --iterations 300 --trials 2 \
//!     --seed 42 --serve 0.0.0.0:7401 --token s3cret --threads 4
//!
//! # coordinator anywhere:
//! cargo run --release -p qismet-bench --bin campaign -- \
//!     --apps 2 --schemes baseline,qismet --iterations 300 --trials 2 \
//!     --seed 42 --connect hostA:7401,hostB:7401 --token s3cret \
//!     --workers 2 --checkpoint campaign.ckpt.jsonl
//! ```
//!
//! The hidden `--worker` flag re-invokes this binary as a cluster worker
//! serving spec indices over stdin/stdout; it is appended automatically by
//! the coordinator and never needed by hand.

use qismet_bench::{
    f2, f4, parse_scheme, parse_threshold, print_table, run_campaign_distributed, scaled,
    serve_campaign, serve_worker, CampaignGrid, CampaignReport, DistributedOptions,
    RunsJsonlWriter, Scheme, SweepExecutor, WorkerOptions, DROP_AFTER_ENV, EXIT_AFTER_ENV,
    MAX_SESSIONS_ENV,
};
use qismet_cluster::{TcpTransportListener, WorkerLaunch};
use qismet_qnoise::Machine;
use qismet_vqa::AppSpec;
use std::path::PathBuf;

const USAGE: &str = "\
campaign — declarative QISMET sweep runner

USAGE:
    campaign [OPTIONS]

GRID OPTIONS:
    --apps <ids>          Comma-separated Table 1 app ids (default: 2)
    --machines <names>    Comma-separated machine names (default: each app's native machine)
    --schemes <names>     Comma-separated schemes (default: baseline,qismet)
                          [baseline, qismet, qismet-conservative, qismet-aggressive,
                           blocking, resampling, second-order, kalman-best,
                           only-transients-<pct>, qismet-<pct>p]
    --thresholds <pcts>   QISMET |Tm| threshold percentiles (1..=99) added as an
                          extra per-cell axis (Fig. 19 generalized), e.g. 75,90,99
    --magnitudes <vals>   Comma-separated transient magnitudes (default: machine native)
    --iterations <n>      SPSA iterations per run (default: scaled 500)
    --trials <n>          Trials per grid point (default: 1)
    --seed <n>            Campaign master seed; per-run seeds derive from it (default: 7)
    --name <str>          Campaign/artifact name (default: campaign)

EXECUTION OPTIONS:
    --threads <n>         Executor threads, 0 = all cores (needs --features parallel).
                          In-process: sizes the sweep pool. With --workers/--serve:
                          each worker runs its assigned batches on <n> threads
                          (hybrid threads x processes/machines)
    --inner-threads <n>   In-state kernel threads per run (needs --features
                          parallel): each statevector apply/expectation splits
                          its amplitude array across <n> threads, bit-identical
                          to sequential. Composes with --threads: the budget is
                          threads x inner-threads. Forwarded to workers
    --batch-lanes <n>     Lockstep trial batching: group up to <n> consecutive
                          trials of one scenario into a single lane-batched
                          trajectory group (bitwise identical to scalar runs).
                          Must be 1, 4, or 8; in-process execution only
    --workers <n>         Shard across <n> local worker processes
    --connect <addrs>     Comma-separated remote worker daemons (host:port) to
                          dial; mixes freely with --workers
    --serve <addr>        Run as a long-lived remote worker daemon bound to
                          <addr> (host:port, port 0 = auto) for this grid
    --token <str>         Shared worker-authentication token (both sides)
    --checkpoint <path>   Append every completed run to a resume journal
    --resume              Skip runs already completed in the --checkpoint journal
    --max-respawns <n>    Respawn/reconnect budget per worker (default: 2)
    --jsonl <path>        Stream per-run records to a JSONL file as they complete
    --summary-only        Drop per-run series from the merged report once streamed
                          (requires --jsonl; series stay in the JSONL)
    -h, --help            Print this help
";

fn parse_list<T>(value: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()).unwrap_or_else(|| die(&format!("invalid {what}: `{s}`"))))
        .collect()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn machine_by_name(name: &str) -> Option<Machine> {
    Machine::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

struct Args {
    apps: Vec<AppSpec>,
    machines: Vec<Machine>,
    schemes: Vec<Scheme>,
    thresholds: Vec<u32>,
    magnitudes: Vec<f64>,
    iterations: usize,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
    inner_threads: usize,
    batch_lanes: usize,
    name: String,
    workers: usize,
    connect: Vec<String>,
    serve: Option<String>,
    token: String,
    checkpoint: Option<PathBuf>,
    resume: bool,
    max_respawns: usize,
    jsonl: Option<PathBuf>,
    summary_only: bool,
    worker_mode: bool,
}

/// Flags (with a value) that configure the coordinator only and must not be
/// forwarded to worker processes. (`--threads`, `--inner-threads`, and
/// `--token` are *not* here: workers need them to size their executors,
/// configure their kernels, and authenticate.)
const COORDINATOR_VALUE_FLAGS: &[&str] = &[
    "--workers",
    "--connect",
    "--serve",
    "--checkpoint",
    "--max-respawns",
    "--jsonl",
];

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        apps: vec![AppSpec::by_id(2).expect("App2")],
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline, Scheme::Qismet],
        thresholds: Vec::new(),
        magnitudes: Vec::new(),
        iterations: scaled(500),
        trials: 1,
        seed: 7,
        threads: None,
        inner_threads: 1,
        batch_lanes: 1,
        name: "campaign".to_string(),
        workers: 0,
        connect: Vec::new(),
        serve: None,
        token: String::new(),
        checkpoint: None,
        resume: false,
        max_respawns: 2,
        jsonl: None,
        summary_only: false,
        worker_mode: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            // Boolean flags.
            "--resume" => {
                args.resume = true;
                i += 1;
                continue;
            }
            "--summary-only" => {
                args.summary_only = true;
                i += 1;
                continue;
            }
            "--worker" => {
                args.worker_mode = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let value = argv
            .get(i + 1)
            .unwrap_or_else(|| die(&format!("missing value for `{flag}`")));
        match flag {
            "--apps" => {
                args.apps = parse_list(value, "app id", |s| {
                    s.parse::<u8>().ok().and_then(AppSpec::by_id)
                });
            }
            "--machines" => {
                args.machines = parse_list(value, "machine", machine_by_name);
            }
            "--schemes" => {
                args.schemes = parse_list(value, "scheme", parse_scheme);
            }
            "--thresholds" => {
                args.thresholds = parse_list(value, "threshold percentile", parse_threshold);
            }
            "--magnitudes" => {
                args.magnitudes = parse_list(value, "magnitude", |s| s.parse::<f64>().ok());
            }
            "--iterations" => {
                args.iterations = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid iteration count `{value}`")));
            }
            "--trials" => {
                args.trials = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid trial count `{value}`")));
            }
            "--seed" => {
                args.seed = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid seed `{value}`")));
            }
            "--threads" => {
                args.threads = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| die(&format!("invalid thread count `{value}`"))),
                );
            }
            "--inner-threads" => {
                args.inner_threads = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid inner-thread count `{value}`")));
            }
            "--batch-lanes" => {
                // The SoA engine is built for lane widths 4 and 8 (half and
                // full register); anything else silently degrades, so it is
                // a hard error rather than a clamp.
                args.batch_lanes = match value.parse::<usize>() {
                    Ok(n @ (1 | 4 | 8)) => n,
                    _ => die(&format!(
                        "invalid --batch-lanes `{value}`: must be 1, 4, or 8"
                    )),
                };
            }
            "--workers" => {
                args.workers = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid worker count `{value}`")));
            }
            "--connect" => {
                args.connect = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--serve" => {
                args.serve = Some(value.clone());
            }
            "--token" => {
                args.token = value.clone();
            }
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(value));
            }
            "--max-respawns" => {
                args.max_respawns = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid respawn budget `{value}`")));
            }
            "--jsonl" => {
                args.jsonl = Some(PathBuf::from(value));
            }
            "--name" => {
                args.name = value.clone();
            }
            other => die(&format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if args.apps.is_empty() || (args.schemes.is_empty() && args.thresholds.is_empty()) {
        die("need at least one app and one scheme (or threshold percentile)");
    }
    let distributed = args.workers > 0 || !args.connect.is_empty();
    if args.serve.is_some() && (distributed || args.worker_mode) {
        die("--serve is a worker daemon mode; it cannot combine with --workers/--connect/--worker");
    }
    if args.serve.is_some()
        && (args.checkpoint.is_some() || args.resume || args.jsonl.is_some() || args.summary_only)
    {
        // Journaling and streaming live on the coordinator; a daemon that
        // silently ignored them would fake durability.
        die("--checkpoint/--resume/--jsonl/--summary-only belong on the coordinator, not --serve");
    }
    if args.resume && args.checkpoint.is_none() {
        die("--resume requires --checkpoint <path>");
    }
    if !distributed && !args.worker_mode && args.serve.is_none() {
        if args.checkpoint.is_some() || args.resume {
            // Only the sharded coordinator journals; refusing beats silently
            // running an unresumable campaign.
            die("--checkpoint/--resume need sharded execution: add --workers <n> or --connect <addrs>");
        }
        if args.summary_only {
            die("--summary-only needs sharded execution: add --workers <n> or --connect <addrs>");
        }
    }
    if args.summary_only && args.jsonl.is_none() {
        die("--summary-only requires --jsonl <path> (the series live in the stream)");
    }
    if args.batch_lanes > 1 && (distributed || args.serve.is_some() || args.worker_mode) {
        // Cluster workers execute arbitrary spec subsets one at a time, so
        // lane grouping cannot apply there; refusing beats silently running
        // without the requested batching.
        die("--batch-lanes applies to in-process execution; drop --workers/--connect/--serve");
    }
    args
}

/// The argv a worker process is launched with: the grid flags verbatim
/// (including `--threads`/`--token`), coordinator-only execution flags
/// stripped, plus `--worker`.
fn worker_argv(argv: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(argv.len() + 1);
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if COORDINATOR_VALUE_FLAGS.contains(&flag) {
            i += 2;
        } else if flag == "--resume" || flag == "--summary-only" || flag == "--worker" {
            i += 1;
        } else {
            out.push(argv[i].clone());
            i += 1;
        }
    }
    out.push("--worker".to_string());
    out
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv);
    let grid = CampaignGrid {
        apps: args.apps,
        machines: args.machines,
        schemes: args.schemes,
        thresholds: args.thresholds,
        magnitudes: args.magnitudes,
        iterations: args.iterations,
        trials: args.trials,
    };
    let campaign = grid.into_campaign(args.name, args.seed);

    if args.worker_mode {
        // Hidden cluster-worker mode: stdout belongs to the protocol, so
        // nothing below this point may run.
        let opts = WorkerOptions {
            token: args.token,
            threads: args.threads.unwrap_or(1),
            inner_threads: args.inner_threads,
            exit_after: env_usize(EXIT_AFTER_ENV),
            drop_after: None,
        };
        if let Err(e) = serve_worker(&campaign, &opts) {
            eprintln!("worker error: {e}");
            std::process::exit(3);
        }
        return;
    }

    if let Some(addr) = &args.serve {
        // Remote-worker daemon mode: accept coordinator sessions forever.
        let mut listener = TcpTransportListener::bind(addr)
            .unwrap_or_else(|e| die(&format!("cannot bind `{addr}`: {e}")));
        let bound = listener
            .socket_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone());
        let opts = WorkerOptions {
            token: args.token,
            threads: args.threads.unwrap_or(1),
            inner_threads: args.inner_threads,
            exit_after: None,
            drop_after: env_usize(DROP_AFTER_ENV),
        };
        println!(
            "serving campaign `{}` ({} specs, fingerprint {:#018x}) on {bound}, {} thread(s)",
            campaign.name,
            campaign.len(),
            campaign.fingerprint(),
            opts.threads,
        );
        // Readiness marker for scripts tailing a redirected stdout (the
        // listener is already bound, so connecting is safe from here on).
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        match serve_campaign(&campaign, &mut listener, &opts, env_usize(MAX_SESSIONS_ENV)) {
            Ok(sessions) => {
                println!("served {sessions} session(s), exiting");
                return;
            }
            Err(e) => {
                eprintln!("serve error: {e}");
                std::process::exit(3);
            }
        }
    }

    let n = campaign.len();
    let distributed = args.workers > 0 || !args.connect.is_empty();
    let report = if distributed {
        let launch = if args.workers > 0 {
            let program = std::env::current_exe().expect("resolve current executable");
            Some(WorkerLaunch::new(program, worker_argv(&argv)))
        } else {
            None
        };
        let opts = DistributedOptions {
            workers: args.workers,
            connect: args.connect.clone(),
            token: args.token.clone(),
            checkpoint: args.checkpoint.clone(),
            resume: args.resume,
            max_respawns: args.max_respawns,
            stream_jsonl: args.jsonl.clone(),
            summary_only: args.summary_only,
        };
        println!(
            "campaign `{}`: {} scenarios, {} runs, {} iterations each, {} local worker(s) + {} remote worker(s), fingerprint {:#018x}",
            campaign.name,
            campaign.scenarios.len(),
            n,
            args.iterations,
            opts.workers,
            opts.connect.len(),
            campaign.fingerprint(),
        );
        let started = std::time::Instant::now();
        match run_campaign_distributed(&campaign, launch, &opts) {
            Ok((report, stats)) => {
                println!(
                    "completed {n} runs in {:.2}s ({} resumed from checkpoint, {} executed, {} worker respawn(s), {} worker(s) lost)",
                    started.elapsed().as_secs_f64(),
                    stats.resumed,
                    stats.executed,
                    stats.respawns,
                    stats.lost_workers,
                );
                report
            }
            Err(e) => {
                eprintln!("error: {e}");
                if args.checkpoint.is_some() {
                    eprintln!("completed runs are checkpointed; re-run with --resume to continue");
                }
                std::process::exit(1);
            }
        }
    } else {
        let executor = match args.threads {
            Some(t) => SweepExecutor::with_threads(t),
            None => SweepExecutor::new(),
        }
        .with_inner_threads(args.inner_threads)
        .with_batch_lanes(args.batch_lanes);
        println!(
            "campaign `{}`: {} scenarios, {} runs, {} iterations each, {} worker(s)",
            campaign.name,
            campaign.scenarios.len(),
            n,
            args.iterations,
            executor.effective_threads(n),
        );
        let started = std::time::Instant::now();
        let report = executor.run(&campaign);
        println!(
            "completed {n} runs in {:.2}s",
            started.elapsed().as_secs_f64()
        );
        // In-process runs hold every record resident anyway; honor --jsonl
        // by writing the stream post-hoc in expansion order.
        if let Some(path) = &args.jsonl {
            let mut w = RunsJsonlWriter::create(path).expect("create jsonl stream");
            for record in &report.records {
                w.append(record).expect("append jsonl record");
            }
            println!(
                "[jsonl] wrote {} records to {}",
                w.written(),
                path.display()
            );
        }
        report
    };

    // Per-run summary table (series live in the JSON artifact).
    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.machine.clone(),
                r.scheme.clone(),
                r.magnitude.map(f2).unwrap_or_else(|| "native".into()),
                r.trial.to_string(),
                f4(r.final_energy),
                r.jobs.to_string(),
                r.skips.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("campaign `{}` results", report.name),
        &[
            "app",
            "machine",
            "scheme",
            "magnitude",
            "trial",
            "final_E",
            "jobs",
            "skips",
        ],
        &rows,
    );
    print_scenario_cis(&campaign, &report);
    print_paired_tests(&campaign, &report);
    report.write_json(None);
    report.write_runs_csv(None);
}

/// Per-scenario mean + bootstrap 95% CI table, for scenarios with enough
/// trials for an interval to mean anything.
fn print_scenario_cis(campaign: &qismet_bench::Campaign, report: &CampaignReport) {
    if !campaign.scenarios.iter().any(|s| s.trials >= 2) {
        return;
    }
    let ci_seed = qismet_mathkit::derive_seed(campaign.seed, 0xc1);
    let rows: Vec<Vec<String>> = campaign
        .scenarios
        .iter()
        .enumerate()
        .filter(|(_, s)| s.trials >= 2)
        .map(|(i, s)| {
            let ci = report.scenario_ci(i, 1000, qismet_mathkit::derive_seed(ci_seed, i as u64));
            vec![
                s.display_label(),
                s.app.name(),
                s.trials.to_string(),
                f4(ci.mean),
                f4(ci.lo),
                f4(ci.hi),
            ]
        })
        .collect();
    print_table(
        "per-scenario trailing-window mean ± bootstrap 95% CI",
        &["scenario", "app", "trials", "mean", "ci_lo", "ci_hi"],
        &rows,
    );
}

/// Paired cross-scheme significance tests: within every grid cell (same
/// app, machine, magnitude, seed policy), each scheme's trials are paired
/// with the first scheme's by trial index — exact pairs, because grid
/// cells share per-trial seeds — and a sign-flip permutation test asks
/// whether the mean final-energy difference is distinguishable from zero.
fn print_paired_tests(campaign: &qismet_bench::Campaign, report: &CampaignReport) {
    // Cells are consecutive scenarios sharing everything but the scheme.
    let cell_key = |s: &qismet_bench::ScenarioSpec| {
        format!(
            "{:?}|{:?}|{}|{}|{:?}",
            s.app,
            s.magnitude.map(f64::to_bits),
            s.iterations,
            s.trials,
            s.seed
        )
    };
    let mut cells: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, s) in campaign.scenarios.iter().enumerate() {
        if s.trials < 2 {
            continue;
        }
        let key = cell_key(s);
        match cells.last_mut() {
            Some((k, idxs)) if *k == key => idxs.push(i),
            _ => cells.push((key, vec![i])),
        }
    }
    let test_seed = qismet_mathkit::derive_seed(campaign.seed, 0x9a17ed);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (_, idxs) in cells.iter().filter(|(_, idxs)| idxs.len() >= 2) {
        let reference = idxs[0];
        for &other in &idxs[1..] {
            let t = report.paired_scenario_test(
                other,
                reference,
                2000,
                qismet_mathkit::derive_seed(test_seed, other as u64),
            );
            let s = &campaign.scenarios[other];
            rows.push(vec![
                s.app.name(),
                s.app.machine.name().to_string(),
                s.magnitude.map(f2).unwrap_or_else(|| "native".into()),
                format!(
                    "{} - {}",
                    s.display_label(),
                    campaign.scenarios[reference].display_label()
                ),
                t.pairs.to_string(),
                f4(t.mean_diff),
                format!("{:.4}", t.p_value),
            ]);
        }
    }
    if rows.is_empty() {
        return;
    }
    print_table(
        "paired cross-scheme significance (sign-flip permutation, same-seed pairs)",
        &[
            "app",
            "machine",
            "magnitude",
            "difference",
            "pairs",
            "mean_diff",
            "p_value",
        ],
        &rows,
    );
}

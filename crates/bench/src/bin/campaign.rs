//! `campaign` — run an arbitrary user-specified sweep grid from the CLI.
//!
//! Expands machines x schemes x threshold-percentiles x magnitudes x apps x
//! trials into a flat run list and executes it through the sweep engine —
//! in-process (parallel under `--features parallel`), sharded across local
//! worker *processes* with `--workers N`, and/or fanned to remote worker
//! *machines* with `--connect host:port,...` (each remote end being this
//! same binary in `--serve` mode). Local and remote workers mix freely in
//! one pool, and each worker runs its batches through its own threaded
//! executor (`--threads`). Sharded runs can checkpoint every completed run
//! to an append-only journal (`--checkpoint`) and `--resume` an
//! interrupted invocation, re-executing only the missing runs; the merged
//! report is byte-identical to a sequential run whatever the topology.
//! Prints a summary table (with bootstrap confidence intervals and paired
//! cross-scheme significance tests when scenarios have multiple trials)
//! and writes JSON + CSV artifacts under `target/paper_results/`.
//!
//! On top of the one-shot pool sits **service mode**: `--daemon <addr>`
//! runs a long-lived multi-tenant campaign service, `--register <addr>`
//! joins its elastic worker fleet, and the `submit`/`status`/`cancel`/
//! `drain` verbs talk to it over the same framed protocol.
//!
//! ```text
//! # worker daemon on each machine (same grid flags + a bind address):
//! cargo run --release -p qismet-bench --bin campaign -- \
//!     --apps 2 --schemes baseline,qismet --iterations 300 --trials 2 \
//!     --seed 42 --serve 0.0.0.0:7401 --token s3cret --threads 4
//!
//! # coordinator anywhere:
//! cargo run --release -p qismet-bench --bin campaign -- \
//!     --apps 2 --schemes baseline,qismet --iterations 300 --trials 2 \
//!     --seed 42 --connect hostA:7401,hostB:7401 --token s3cret \
//!     --workers 2 --checkpoint campaign.ckpt.jsonl
//!
//! # campaign service: daemon + elastic workers + tenanted submissions:
//! campaign --daemon 0.0.0.0:7500 --token fleet --tenants alice=a1,bob=b2
//! campaign --register host:7500 --token fleet --worker-name w1 --threads 4
//! campaign submit --to host:7500 --token a1 --apps 2 --schemes qismet
//! campaign status --to host:7500 --token a1
//! campaign drain  --to host:7500 --token fleet
//! ```
//!
//! The hidden `--worker` flag re-invokes this binary as a cluster worker
//! serving spec indices over stdin/stdout; it is appended automatically by
//! the coordinator and never needed by hand.

use qismet_bench::cli::{
    exit_code_for, exit_code_for_service, parse_args, Args, CliError, ClientVerb, EXIT_USAGE,
    EXIT_WORKER,
};
use qismet_bench::{
    cancel_job, drain_service, f2, f4, job_status, print_table, register_worker, results_dir,
    run_campaign_distributed, scheme_cli_name, serve_campaign, serve_worker, submit_job,
    CampaignGrid, CampaignPlanner, CampaignReport, DistributedOptions, GridSpec, RegisterOptions,
    RunsJsonlWriter, ServiceError, SweepExecutor, WorkerOptions,
};
use qismet_cluster::{FaultPlan, ServiceConfig, TcpTransportListener, WorkerLaunch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
campaign — declarative QISMET sweep runner

USAGE:
    campaign [OPTIONS]
    campaign submit|status|cancel|drain --to <addr> --token <str> [OPTIONS]

GRID OPTIONS:
    --apps <ids>          Comma-separated Table 1 app ids (default: 2)
    --machines <names>    Comma-separated machine names (default: each app's native machine)
    --schemes <names>     Comma-separated schemes (default: baseline,qismet)
                          [baseline, qismet, qismet-conservative, qismet-aggressive,
                           blocking, resampling, second-order, kalman-best,
                           only-transients-<pct>, qismet-<pct>p]
    --thresholds <pcts>   QISMET |Tm| threshold percentiles (1..=99) added as an
                          extra per-cell axis (Fig. 19 generalized), e.g. 75,90,99
    --magnitudes <vals>   Comma-separated transient magnitudes (default: machine native)
    --iterations <n>      SPSA iterations per run (default: scaled 500)
    --trials <n>          Trials per grid point (default: 1)
    --seed <n>            Campaign master seed; per-run seeds derive from it (default: 7)
    --name <str>          Campaign/artifact name (default: campaign)

EXECUTION OPTIONS:
    --threads <n>         Executor threads, 0 = all cores (needs --features parallel).
                          In-process: sizes the sweep pool. With --workers/--serve:
                          each worker runs its assigned batches on <n> threads
                          (hybrid threads x processes/machines)
    --inner-threads <n>   In-state kernel threads per run (needs --features
                          parallel): each statevector apply/expectation splits
                          its amplitude array across <n> threads, bit-identical
                          to sequential. Composes with --threads: the budget is
                          threads x inner-threads. Forwarded to workers
    --batch-lanes <n>     Lockstep trial batching: group up to <n> consecutive
                          trials of one scenario into a single lane-batched
                          trajectory group (bitwise identical to scalar runs).
                          Must be 1, 4, or 8; in-process execution only
    --workers <n>         Shard across <n> local worker processes
    --connect <addrs>     Comma-separated remote worker daemons (host:port) to
                          dial; mixes freely with --workers
    --serve <addr>        Run as a long-lived remote worker daemon bound to
                          <addr> (host:port, port 0 = auto) for this grid
    --token <str>         Shared worker-authentication token (both sides)
    --checkpoint <path>   Append every completed run to a resume journal
    --resume              Skip runs already completed in the --checkpoint journal
    --max-respawns <n>    Respawn/reconnect budget per worker (default: 2)
    --jsonl <path>        Stream per-run records to a JSONL file as they complete
    --summary-only        Drop per-run series from the merged report once streamed
                          (requires --jsonl; series stay in the JSONL)

SERVICE MODE (campaign-as-a-service):
    --daemon <addr>       Run a long-lived multi-tenant campaign service bound
                          to <addr>. Clients submit grids as jobs; registered
                          workers serve them. --token is the fleet/admin token
    --tenants <pairs>     Daemon: tenant credentials, name=token[,name=token...]
    --state-dir <dir>     Daemon: persistent queue + per-job journals; restart
                          with the same dir to resume every interrupted job
    --report-dir <dir>    Daemon: where settled jobs write <name>.json reports
                          (default: target/paper_results)
    --register <addr>     Join a daemon's worker fleet (elastic: join/leave any
                          time; grid flags are ignored — jobs arrive over the
                          wire). --max-respawns bounds reconnect attempts
    --worker-name <str>   Registered worker identity; quarantine strikes follow
                          the name across sessions (default: worker-<pid>)
    --deregister-after <n> Voluntarily leave the fleet after <n> batches
    submit                Enqueue the grid flags as a job (--to, --token,
                          --priority; prints the assigned job id)
    status                Print jobs visible to the token + the worker fleet
    cancel --job <id>     Cancel a queued/running job
    drain                 Finish all jobs, refuse new ones, stop the daemon
    --to <addr>           Client verbs: daemon address to talk to
    --priority <n>        submit: higher priorities run first (default: 0)

RESILIENCE & CHAOS OPTIONS:
    --assign-timeout <secs>    Coordinator read deadline per assignment: a worker
                               silent for this long (no Done, no Ping keepalive)
                               is hung — cut the channel, re-dispatch its work
                               (default: off)
    --heartbeat <secs>         Worker keepalive interval while a batch computes;
                               must be shorter than --assign-timeout (default: 2)
    --handshake-timeout <secs> Handshake deadline for new sessions, coordinator
                               and --serve daemon alike (default: 10)
    --connect-timeout <secs>   TCP dial deadline per connect attempt
    --speculative              Duplicate in-flight work onto idle workers near
                               the campaign tail; first result wins, reports
                               stay bitwise-identical
    --quarantine-after <n>     Retire a worker slot (or, with --daemon, a worker
                               *name*) for good after <n> failed sessions
                               (default: off)
    --chaos-plan <file>        Execute a JSON fault plan on the workers
                               (deterministic fault injection for testing)
    --chaos-seed <n>           Generate and execute a seeded random fault plan

OBSERVABILITY OPTIONS:
    --metrics-out <file>  Write a JSON metrics document (build provenance,
                          counters/gauges/histograms, structured events,
                          per-slot fleet health) when the campaign completes
    --trace-out <file>    Write a Chrome trace_event JSON file (open in
                          chrome://tracing or https://ui.perfetto.dev)
    --progress            Live progress line on stderr: done/total, rate,
                          ETA, queue depth, per-worker health
                          Telemetry never changes results: reports are
                          byte-identical with these flags on or off

EXIT CODES:
    0 success   2 usage/flag conflict   3 worker/serve/register failure
    4 poisoned specs (crash-looping inputs)   5 rejected handshake/bad token
    1 any other failure

    -h, --help            Print this help
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(EXIT_USAGE);
}

/// Flags (with a value) that configure the coordinator only and must not be
/// forwarded to worker processes. (`--threads`, `--inner-threads`,
/// `--token`, `--heartbeat`, and `--handshake-timeout` are *not* here:
/// workers need them to size their executors, configure their kernels,
/// authenticate, and pace their keepalives. `--chaos-plan`/`--chaos-seed`
/// are stripped too — the coordinator resolves them into one concrete plan
/// and forwards it via the hidden `--chaos-json`.)
const COORDINATOR_VALUE_FLAGS: &[&str] = &[
    "--workers",
    "--connect",
    "--serve",
    "--checkpoint",
    "--max-respawns",
    "--jsonl",
    "--assign-timeout",
    "--connect-timeout",
    "--quarantine-after",
    "--chaos-plan",
    "--chaos-seed",
    "--metrics-out",
    "--trace-out",
];

/// Resolves the fault plan this invocation should execute (worker/serve
/// side) or forward (coordinator side). Precedence: a concrete forwarded
/// plan, then an explicit plan file, then a seed, then the legacy env
/// hooks. Malformed plans are configuration errors.
fn resolve_chaos_plan(args: &Args, workers: usize, specs: usize) -> Option<FaultPlan> {
    if let Some(json) = &args.chaos_json {
        return Some(FaultPlan::from_json(json).unwrap_or_else(|e| die(&e)));
    }
    if let Some(path) = &args.chaos_plan {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read chaos plan `{}`: {e}", path.display())));
        return Some(FaultPlan::from_json(&text).unwrap_or_else(|e| die(&e)));
    }
    if let Some(seed) = args.chaos_seed {
        return Some(FaultPlan::random(seed, workers, specs));
    }
    FaultPlan::from_env().unwrap_or_else(|e| die(&e))
}

/// The argv a worker process is launched with: the grid flags verbatim
/// (including `--threads`/`--token`/`--heartbeat`), coordinator-only
/// execution flags stripped, the resolved chaos plan (if any) appended as
/// `--chaos-json`, plus `--worker`.
fn worker_argv(argv: &[String], chaos_json: Option<&str>) -> Vec<String> {
    let mut out = Vec::with_capacity(argv.len() + 3);
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if COORDINATOR_VALUE_FLAGS.contains(&flag) {
            i += 2;
        } else if flag == "--resume"
            || flag == "--summary-only"
            || flag == "--worker"
            || flag == "--speculative"
            || flag == "--progress"
        {
            i += 1;
        } else {
            out.push(argv[i].clone());
            i += 1;
        }
    }
    if let Some(json) = chaos_json {
        out.push("--chaos-json".to_string());
        out.push(json.to_string());
    }
    out.push("--worker".to_string());
    out
}

/// The grid flags as a wire payload for `submit`.
fn grid_spec_from(args: &Args) -> GridSpec {
    GridSpec {
        name: args.name.clone(),
        seed: args.seed,
        apps: args.apps.iter().map(|a| a.id).collect(),
        machines: args.machines.iter().map(|m| m.name().to_string()).collect(),
        schemes: args.schemes.iter().map(|s| scheme_cli_name(*s)).collect(),
        thresholds: args.thresholds.clone(),
        magnitudes: args.magnitudes.clone(),
        iterations: args.iterations,
        trials: args.trials,
    }
}

/// Runs a service-client verb; returns the process exit code.
fn run_client(verb: ClientVerb, args: &Args) -> i32 {
    let addr = args
        .to
        .as_deref()
        .expect("validated: client verbs carry --to");
    let outcome: Result<(), ServiceError> = match verb {
        ClientVerb::Submit => {
            let grid = grid_spec_from(args);
            submit_job(addr, &args.token, &grid, args.priority).map(|submitted| {
                println!(
                    "submitted job {} `{}` (fingerprint {:#018x}, priority {})",
                    submitted.job_id, grid.name, submitted.fingerprint, args.priority
                );
            })
        }
        ClientVerb::Status => job_status(addr, &args.token).map(|reply| {
            let rows: Vec<Vec<String>> = reply
                .jobs
                .iter()
                .map(|j| {
                    vec![
                        j.job_id.to_string(),
                        j.name.clone(),
                        j.tenant.clone(),
                        j.priority.to_string(),
                        j.phase.clone(),
                        format!("{}/{}", j.done, j.total),
                        j.detail.clone().unwrap_or_else(|| "-".into()),
                    ]
                })
                .collect();
            print_table(
                if reply.draining {
                    "jobs (daemon draining)"
                } else {
                    "jobs"
                },
                &[
                    "job", "name", "tenant", "priority", "phase", "done", "detail",
                ],
                &rows,
            );
            let rows: Vec<Vec<String>> = reply
                .workers
                .iter()
                .map(|w| {
                    vec![
                        format!("s{}", w.slot),
                        w.name.clone(),
                        if w.active { "yes" } else { "no" }.to_string(),
                        w.done.to_string(),
                        w.strikes.to_string(),
                        if w.quarantined { "yes" } else { "no" }.to_string(),
                        w.job.map(|j| j.to_string()).unwrap_or_else(|| "-".into()),
                    ]
                })
                .collect();
            print_table(
                "workers",
                &[
                    "slot",
                    "name",
                    "active",
                    "done",
                    "strikes",
                    "quarantined",
                    "job",
                ],
                &rows,
            );
        }),
        ClientVerb::Cancel => {
            let job_id = args.job.expect("validated: cancel carries --job");
            cancel_job(addr, &args.token, job_id).map(|id| println!("cancelled job {id}"))
        }
        ClientVerb::Drain => drain_service(addr, &args.token).map(|ok| {
            println!(
                "drained: {} job(s) completed, {} failed/cancelled",
                ok.jobs_completed, ok.jobs_failed
            );
        }),
    };
    match outcome {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            exit_code_for_service(&e)
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(CliError::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => die(&e.to_string()),
    };

    // Service-client verbs: one short authenticated session, no grid
    // expansion (submit serializes the grid flags instead of running them).
    if let Some(verb) = args.command {
        std::process::exit(run_client(verb, &args));
    }

    // Service daemon: jobs arrive over the wire; the grid flags are unused.
    if let Some(addr) = &args.daemon {
        let listener = TcpTransportListener::bind(addr)
            .unwrap_or_else(|e| die(&format!("cannot bind `{addr}`: {e}")));
        let bound = listener
            .socket_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone());
        let mut config = ServiceConfig::new(args.token.clone());
        config.tenants = args.tenants.clone();
        config.state_dir = args.state_dir.clone();
        config.quarantine_after = args.quarantine_after;
        config.assign_timeout = args.assign_timeout;
        if let Some(timeout) = args.handshake_timeout {
            config.handshake_timeout = timeout;
        }
        config.build = qismet_cluster::BuildStamp::local(cfg!(feature = "parallel"));
        let planner = CampaignPlanner {
            report_dir: args.report_dir.clone().unwrap_or_else(results_dir),
        };
        println!(
            "campaign service on {bound}: {} tenant(s), state {}, reports under {}",
            config.tenants.len(),
            config
                .state_dir
                .as_ref()
                .map(|d| d.display().to_string())
                .unwrap_or_else(|| "(ephemeral)".into()),
            planner.report_dir.display(),
        );
        // Readiness marker for scripts tailing a redirected stdout (the
        // listener is already bound, so connecting is safe from here on).
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        match qismet_bench::service::serve(Box::new(listener), &planner, &config) {
            Ok(summary) => {
                println!(
                    "service drained: {} job(s) completed, {} failed/cancelled, {} session(s)",
                    summary.jobs_completed, summary.jobs_failed, summary.sessions
                );
                return;
            }
            Err(e) => {
                eprintln!("daemon error: {e}");
                std::process::exit(EXIT_WORKER);
            }
        }
    }

    // Elastic fleet worker: jobs (and their grids) arrive over the wire.
    if let Some(addr) = &args.register {
        let mut opts = RegisterOptions {
            name: args
                .worker_name
                .clone()
                .unwrap_or_else(|| format!("worker-{}", std::process::id())),
            token: args.token.clone(),
            threads: args.threads.unwrap_or(1),
            inner_threads: args.inner_threads,
            max_reconnects: args.max_respawns,
            deregister_after: args.deregister_after,
            ..RegisterOptions::default()
        };
        if let Some(heartbeat) = args.heartbeat {
            opts.heartbeat = Some(heartbeat);
        }
        if let Some(timeout) = args.connect_timeout {
            opts.connect_timeout = timeout;
        }
        match register_worker(addr, &opts) {
            Ok(stats) => {
                println!(
                    "worker `{}` retired: {} batch(es) across {} job(s), {} session(s)",
                    opts.name, stats.batches, stats.jobs, stats.sessions
                );
                return;
            }
            Err(e) => {
                eprintln!("register error: {e}");
                let code = exit_code_for_service(&e);
                std::process::exit(if code == 1 { EXIT_WORKER } else { code });
            }
        }
    }

    let grid = CampaignGrid {
        apps: args.apps.clone(),
        machines: args.machines.clone(),
        schemes: args.schemes.clone(),
        thresholds: args.thresholds.clone(),
        magnitudes: args.magnitudes.clone(),
        iterations: args.iterations,
        trials: args.trials,
    };
    let campaign = grid.into_campaign(args.name.clone(), args.seed);

    // Worker/serve sides resolve their own plan (forwarded json, plan
    // file, seed, or legacy env hooks); seed-derived plans on these sides
    // address all slots (`workers = 0`) since the pool size is unknown.
    let worker_opts = |plan: Option<FaultPlan>| {
        let mut opts = WorkerOptions {
            token: args.token.clone(),
            threads: args.threads.unwrap_or(1),
            inner_threads: args.inner_threads,
            plan,
            ..WorkerOptions::default()
        };
        if let Some(heartbeat) = args.heartbeat {
            opts.heartbeat = Some(heartbeat);
        }
        if let Some(timeout) = args.handshake_timeout {
            opts.handshake_timeout = timeout;
        }
        opts
    };

    if args.worker_mode {
        // Hidden cluster-worker mode: stdout belongs to the protocol, so
        // nothing below this point may run.
        let opts = worker_opts(resolve_chaos_plan(&args, 0, campaign.len()));
        if let Err(e) = serve_worker(&campaign, &opts) {
            eprintln!("worker error: {e}");
            std::process::exit(EXIT_WORKER);
        }
        return;
    }

    if let Some(addr) = &args.serve {
        // Remote-worker daemon mode: accept coordinator sessions forever.
        let listener = TcpTransportListener::bind(addr)
            .unwrap_or_else(|e| die(&format!("cannot bind `{addr}`: {e}")));
        let bound = listener
            .socket_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone());
        let opts = worker_opts(resolve_chaos_plan(&args, 0, campaign.len()));
        println!(
            "serving campaign `{}` ({} specs, fingerprint {:#018x}) on {bound}, {} thread(s)",
            campaign.name,
            campaign.len(),
            campaign.fingerprint(),
            opts.threads,
        );
        // Readiness marker for scripts tailing a redirected stdout (the
        // listener is already bound, so connecting is safe from here on).
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        match serve_campaign(&campaign, Box::new(listener), &opts) {
            Ok(sessions) => {
                println!("served {sessions} session(s), exiting");
                return;
            }
            Err(e) => {
                eprintln!("serve error: {e}");
                std::process::exit(EXIT_WORKER);
            }
        }
    }

    let n = campaign.len();
    let distributed = args.workers > 0 || !args.connect.is_empty();
    // Observability gates: metric recording is a runtime switch, so the
    // same binary runs with telemetry on or off (byte-identical reports
    // either way). Worker processes switch themselves on in serve_worker.
    let observing = args.metrics_out.is_some() || args.trace_out.is_some() || args.progress;
    if observing {
        qismet_telemetry::set_enabled(true);
    }
    if args.trace_out.is_some() {
        qismet_telemetry::set_trace_enabled(true);
    }
    let progress = args.progress.then(|| start_progress(n, distributed));
    let report = if distributed {
        // Explicit chaos flags resolve to ONE concrete plan here and travel
        // to spawned workers as `--chaos-json`, so a seeded plan is
        // identical on every worker. The legacy env hooks are *not*
        // forwarded — workers inherit the environment and adapt them
        // locally, exactly as before.
        let forwarded_chaos: Option<String> =
            if args.chaos_plan.is_some() || args.chaos_seed.is_some() {
                resolve_chaos_plan(&args, args.workers + args.connect.len(), campaign.len())
                    .map(|plan| plan.to_json())
            } else {
                None
            };
        let launch = if args.workers > 0 {
            let program = std::env::current_exe().expect("resolve current executable");
            Some(WorkerLaunch::new(
                program,
                worker_argv(&argv, forwarded_chaos.as_deref()),
            ))
        } else {
            None
        };
        let opts = DistributedOptions {
            workers: args.workers,
            connect: args.connect.clone(),
            token: args.token.clone(),
            checkpoint: args.checkpoint.clone(),
            resume: args.resume,
            max_respawns: args.max_respawns,
            stream_jsonl: args.jsonl.clone(),
            summary_only: args.summary_only,
            assign_timeout: args.assign_timeout,
            handshake_timeout: args.handshake_timeout,
            connect_timeout: args.connect_timeout,
            speculative: args.speculative,
            quarantine_after: args.quarantine_after,
        };
        println!(
            "campaign `{}`: {} scenarios, {} runs, {} iterations each, {} local worker(s) + {} remote worker(s), fingerprint {:#018x}",
            campaign.name,
            campaign.scenarios.len(),
            n,
            args.iterations,
            opts.workers,
            opts.connect.len(),
            campaign.fingerprint(),
        );
        let started = std::time::Instant::now();
        match run_campaign_distributed(&campaign, launch, &opts) {
            Ok((report, stats)) => {
                println!(
                    "completed {n} runs in {:.2}s ({} resumed from checkpoint, {} executed, {} worker respawn(s), {} worker(s) lost, {} worker(s) quarantined)",
                    started.elapsed().as_secs_f64(),
                    stats.resumed,
                    stats.executed,
                    stats.respawns,
                    stats.lost_workers,
                    stats.quarantined_workers,
                );
                report
            }
            Err(e) => {
                eprintln!("error: {e}");
                if args.checkpoint.is_some() {
                    eprintln!("completed runs are checkpointed; re-run with --resume to continue");
                }
                // Typed exits: scripts branch on poisoned specs (4) and
                // rejected handshakes (5) without parsing stderr.
                std::process::exit(exit_code_for(&e));
            }
        }
    } else {
        let executor = match args.threads {
            Some(t) => SweepExecutor::with_threads(t),
            None => SweepExecutor::new(),
        }
        .with_inner_threads(args.inner_threads)
        .with_batch_lanes(args.batch_lanes);
        println!(
            "campaign `{}`: {} scenarios, {} runs, {} iterations each, {} worker(s)",
            campaign.name,
            campaign.scenarios.len(),
            n,
            args.iterations,
            executor.effective_threads(n),
        );
        let started = std::time::Instant::now();
        let report = executor.run(&campaign);
        println!(
            "completed {n} runs in {:.2}s",
            started.elapsed().as_secs_f64()
        );
        // In-process runs hold every record resident anyway; honor --jsonl
        // by writing the stream post-hoc in expansion order.
        if let Some(path) = &args.jsonl {
            let mut w = RunsJsonlWriter::create(path).expect("create jsonl stream");
            for record in &report.records {
                w.append(record).expect("append jsonl record");
            }
            println!(
                "[jsonl] wrote {} records to {}",
                w.written(),
                path.display()
            );
        }
        report
    };

    if let Some((stop, handle)) = progress {
        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }
    // Per-slot fleet health prints after every distributed campaign —
    // respawns, strikes, quarantines, and poisoned-spec blame stay visible
    // even without --metrics-out.
    if distributed {
        print_fleet_summary();
    }
    if let Some(path) = &args.metrics_out {
        let build = qismet_telemetry::BuildInfo::current(cfg!(feature = "parallel"));
        std::fs::write(path, qismet_telemetry::metrics_json(&build))
            .unwrap_or_else(|e| die(&format!("cannot write metrics `{}`: {e}", path.display())));
        println!("[metrics] wrote {}", path.display());
    }
    if let Some(path) = &args.trace_out {
        let json = qismet_telemetry::drain_trace_json()
            .unwrap_or_else(|| "{\"traceEvents\":[]}".to_string());
        std::fs::write(path, json)
            .unwrap_or_else(|e| die(&format!("cannot write trace `{}`: {e}", path.display())));
        println!("[trace] wrote {}", path.display());
    }

    // Per-run summary table (series live in the JSON artifact).
    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.machine.clone(),
                r.scheme.clone(),
                r.magnitude.map(f2).unwrap_or_else(|| "native".into()),
                r.trial.to_string(),
                f4(r.final_energy),
                r.jobs.to_string(),
                r.skips.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("campaign `{}` results", report.name),
        &[
            "app",
            "machine",
            "scheme",
            "magnitude",
            "trial",
            "final_E",
            "jobs",
            "skips",
        ],
        &rows,
    );
    print_scenario_cis(&campaign, &report);
    print_paired_tests(&campaign, &report);
    report.write_json(None);
    report.write_runs_csv(None);
}

/// Per-scenario mean + bootstrap 95% CI table, for scenarios with enough
/// trials for an interval to mean anything.
fn print_scenario_cis(campaign: &qismet_bench::Campaign, report: &CampaignReport) {
    if !campaign.scenarios.iter().any(|s| s.trials >= 2) {
        return;
    }
    let ci_seed = qismet_mathkit::derive_seed(campaign.seed, 0xc1);
    let rows: Vec<Vec<String>> = campaign
        .scenarios
        .iter()
        .enumerate()
        .filter(|(_, s)| s.trials >= 2)
        .map(|(i, s)| {
            let ci = report.scenario_ci(i, 1000, qismet_mathkit::derive_seed(ci_seed, i as u64));
            vec![
                s.display_label(),
                s.app.name(),
                s.trials.to_string(),
                f4(ci.mean),
                f4(ci.lo),
                f4(ci.hi),
            ]
        })
        .collect();
    print_table(
        "per-scenario trailing-window mean ± bootstrap 95% CI",
        &["scenario", "app", "trials", "mean", "ci_lo", "ci_hi"],
        &rows,
    );
}

/// Paired cross-scheme significance tests: within every grid cell (same
/// app, machine, magnitude, seed policy), each scheme's trials are paired
/// with the first scheme's by trial index — exact pairs, because grid
/// cells share per-trial seeds — and a sign-flip permutation test asks
/// whether the mean final-energy difference is distinguishable from zero.
fn print_paired_tests(campaign: &qismet_bench::Campaign, report: &CampaignReport) {
    // Cells are consecutive scenarios sharing everything but the scheme.
    let cell_key = |s: &qismet_bench::ScenarioSpec| {
        format!(
            "{:?}|{:?}|{}|{}|{:?}",
            s.app,
            s.magnitude.map(f64::to_bits),
            s.iterations,
            s.trials,
            s.seed
        )
    };
    let mut cells: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, s) in campaign.scenarios.iter().enumerate() {
        if s.trials < 2 {
            continue;
        }
        let key = cell_key(s);
        match cells.last_mut() {
            Some((k, idxs)) if *k == key => idxs.push(i),
            _ => cells.push((key, vec![i])),
        }
    }
    let test_seed = qismet_mathkit::derive_seed(campaign.seed, 0x9a17ed);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (_, idxs) in cells.iter().filter(|(_, idxs)| idxs.len() >= 2) {
        let reference = idxs[0];
        for &other in &idxs[1..] {
            let t = report.paired_scenario_test(
                other,
                reference,
                2000,
                qismet_mathkit::derive_seed(test_seed, other as u64),
            );
            let s = &campaign.scenarios[other];
            rows.push(vec![
                s.app.name(),
                s.app.machine.name().to_string(),
                s.magnitude.map(f2).unwrap_or_else(|| "native".into()),
                format!(
                    "{} - {}",
                    s.display_label(),
                    campaign.scenarios[reference].display_label()
                ),
                t.pairs.to_string(),
                f4(t.mean_diff),
                format!("{:.4}", t.p_value),
            ]);
        }
    }
    if rows.is_empty() {
        return;
    }
    print_table(
        "paired cross-scheme significance (sign-flip permutation, same-seed pairs)",
        &[
            "app",
            "machine",
            "magnitude",
            "difference",
            "pairs",
            "mean_diff",
            "p_value",
        ],
        &rows,
    );
}

/// Spawns the `--progress` status-line thread: twice a second it rewrites
/// one stderr line with done/total, completion rate, ETA, the live queue
/// depth, and (distributed) per-slot fleet health. Reads only telemetry
/// counters and the fleet table — it can never perturb the campaign.
fn start_progress(
    total: usize,
    distributed: bool,
) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let started = std::time::Instant::now();
        loop {
            if flag.load(Ordering::Relaxed) {
                break;
            }
            let (done, queue) = if distributed {
                (
                    qismet_telemetry::counter!("cluster.specs_done").get(),
                    qismet_telemetry::gauge!("cluster.queue_depth").get(),
                )
            } else {
                (
                    qismet_telemetry::counter!("sweep.specs_done").get(),
                    qismet_telemetry::gauge!("sweep.queue_depth").get(),
                )
            };
            let elapsed = started.elapsed().as_secs_f64();
            let rate = if elapsed > 0.0 {
                done as f64 / elapsed
            } else {
                0.0
            };
            let eta = if done > 0 && rate > 0.0 {
                format!("{:.0}s", (total as f64 - done as f64).max(0.0) / rate)
            } else {
                "?".to_string()
            };
            let mut line =
                format!("[progress] {done}/{total} runs, {rate:.2}/s, eta {eta}, queue {queue}");
            if distributed {
                for (slot, h) in qismet_telemetry::fleet_snapshot() {
                    line.push_str(&format!(" | w{slot}: {}", h.done));
                    if h.respawns > 0 {
                        line.push_str(&format!(" ({}r)", h.respawns));
                    }
                    if h.quarantined {
                        line.push_str(" [q]");
                    }
                }
            }
            // \x1b[2K clears the previous (possibly longer) line.
            eprint!("\r\x1b[2K{line}");
            std::thread::sleep(Duration::from_millis(500));
        }
        eprint!("\r\x1b[2K");
    });
    (stop, handle)
}

/// Per-slot fleet summary table: dispatch accounting, failure history, and
/// the worker-reported totals piggybacked on `Done` frames. Printed after
/// every distributed campaign (satellite of the telemetry PR: respawn /
/// quarantine / poison outcomes used to vanish into stderr noise).
fn print_fleet_summary() {
    let fleet = qismet_telemetry::fleet_snapshot();
    if fleet.is_empty() {
        return;
    }
    let rows: Vec<Vec<String>> = fleet
        .iter()
        .map(|(slot, h)| {
            vec![
                format!("w{slot}"),
                h.assigned.to_string(),
                h.done.to_string(),
                h.worker_specs_done.to_string(),
                h.respawns.to_string(),
                h.strikes.to_string(),
                if h.quarantined { "yes" } else { "no" }.to_string(),
                h.speculative_won.to_string(),
                h.duplicates_lost.to_string(),
                h.pings.to_string(),
                if h.rtt_count > 0 {
                    format!("{:.1}", h.rtt_ns_mean() as f64 / 1e6)
                } else {
                    "-".to_string()
                },
                h.last_error.clone().unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table(
        "fleet health (per worker slot)",
        &[
            "slot",
            "assigned",
            "done",
            "reported",
            "respawns",
            "strikes",
            "quarantined",
            "spec_won",
            "dup_lost",
            "pings",
            "rtt_ms",
            "last_error",
        ],
        &rows,
    );
}

//! `campaign` — run an arbitrary user-specified sweep grid from the CLI.
//!
//! Expands machines x schemes x magnitudes x apps x trials into a flat run
//! list and executes it through the sweep engine — in-process (parallel
//! under `--features parallel`), or sharded across worker *processes* with
//! `--workers N`. Sharded runs can checkpoint every completed run to an
//! append-only journal (`--checkpoint`) and `--resume` an interrupted
//! invocation, re-executing only the missing runs; the merged report is
//! byte-identical to a sequential run either way. Prints a summary table
//! (with bootstrap confidence intervals when scenarios have multiple
//! trials) and writes JSON + CSV artifacts under `target/paper_results/`.
//!
//! ```text
//! cargo run --release -p qismet-bench --bin campaign -- \
//!     --apps 2 --machines Guadalupe,Sydney --schemes baseline,qismet \
//!     --magnitudes 0.1,0.5 --iterations 300 --trials 2 --seed 42 \
//!     --workers 4 --checkpoint campaign.ckpt.jsonl
//! ```
//!
//! The hidden `--worker` flag re-invokes this binary as a cluster worker
//! serving spec indices over stdin/stdout; it is appended automatically by
//! the coordinator and never needed by hand.

use qismet_bench::{
    f2, f4, parse_scheme, print_table, run_campaign_distributed, scaled, serve_worker,
    CampaignGrid, CampaignReport, DistributedOptions, RunsJsonlWriter, Scheme, SweepExecutor,
};
use qismet_cluster::WorkerLaunch;
use qismet_qnoise::Machine;
use qismet_vqa::AppSpec;
use std::path::PathBuf;

const USAGE: &str = "\
campaign — declarative QISMET sweep runner

USAGE:
    campaign [OPTIONS]

GRID OPTIONS:
    --apps <ids>          Comma-separated Table 1 app ids (default: 2)
    --machines <names>    Comma-separated machine names (default: each app's native machine)
    --schemes <names>     Comma-separated schemes (default: baseline,qismet)
                          [baseline, qismet, qismet-conservative, qismet-aggressive,
                           blocking, resampling, second-order, kalman-best,
                           only-transients-<pct>]
    --magnitudes <vals>   Comma-separated transient magnitudes (default: machine native)
    --iterations <n>      SPSA iterations per run (default: scaled 500)
    --trials <n>          Trials per grid point (default: 1)
    --seed <n>            Campaign master seed; per-run seeds derive from it (default: 7)
    --name <str>          Campaign/artifact name (default: campaign)

EXECUTION OPTIONS:
    --threads <n>         In-process worker threads, 0 = all cores (needs --features parallel)
    --workers <n>         Shard across <n> worker processes instead of threads
    --checkpoint <path>   Append every completed run to a resume journal (with --workers)
    --resume              Skip runs already completed in the --checkpoint journal
    --max-respawns <n>    Respawn budget per crashed worker process (default: 2)
    --jsonl <path>        Stream per-run records to a JSONL file as they complete
    -h, --help            Print this help
";

fn parse_list<T>(value: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()).unwrap_or_else(|| die(&format!("invalid {what}: `{s}`"))))
        .collect()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn machine_by_name(name: &str) -> Option<Machine> {
    Machine::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

struct Args {
    apps: Vec<AppSpec>,
    machines: Vec<Machine>,
    schemes: Vec<Scheme>,
    magnitudes: Vec<f64>,
    iterations: usize,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
    name: String,
    workers: usize,
    checkpoint: Option<PathBuf>,
    resume: bool,
    max_respawns: usize,
    jsonl: Option<PathBuf>,
    worker_mode: bool,
}

/// Flags (with a value) that configure the coordinator only and must not be
/// forwarded to worker processes.
const COORDINATOR_VALUE_FLAGS: &[&str] = &[
    "--workers",
    "--checkpoint",
    "--max-respawns",
    "--jsonl",
    "--threads",
];

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        apps: vec![AppSpec::by_id(2).expect("App2")],
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline, Scheme::Qismet],
        magnitudes: Vec::new(),
        iterations: scaled(500),
        trials: 1,
        seed: 7,
        threads: None,
        name: "campaign".to_string(),
        workers: 0,
        checkpoint: None,
        resume: false,
        max_respawns: 2,
        jsonl: None,
        worker_mode: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            // Boolean flags.
            "--resume" => {
                args.resume = true;
                i += 1;
                continue;
            }
            "--worker" => {
                args.worker_mode = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let value = argv
            .get(i + 1)
            .unwrap_or_else(|| die(&format!("missing value for `{flag}`")));
        match flag {
            "--apps" => {
                args.apps = parse_list(value, "app id", |s| {
                    s.parse::<u8>().ok().and_then(AppSpec::by_id)
                });
            }
            "--machines" => {
                args.machines = parse_list(value, "machine", machine_by_name);
            }
            "--schemes" => {
                args.schemes = parse_list(value, "scheme", parse_scheme);
            }
            "--magnitudes" => {
                args.magnitudes = parse_list(value, "magnitude", |s| s.parse::<f64>().ok());
            }
            "--iterations" => {
                args.iterations = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid iteration count `{value}`")));
            }
            "--trials" => {
                args.trials = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid trial count `{value}`")));
            }
            "--seed" => {
                args.seed = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid seed `{value}`")));
            }
            "--threads" => {
                args.threads = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| die(&format!("invalid thread count `{value}`"))),
                );
            }
            "--workers" => {
                args.workers = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid worker count `{value}`")));
            }
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(value));
            }
            "--max-respawns" => {
                args.max_respawns = value
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid respawn budget `{value}`")));
            }
            "--jsonl" => {
                args.jsonl = Some(PathBuf::from(value));
            }
            "--name" => {
                args.name = value.clone();
            }
            other => die(&format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if args.apps.is_empty() || args.schemes.is_empty() {
        die("need at least one app and one scheme");
    }
    if args.resume && args.checkpoint.is_none() {
        die("--resume requires --checkpoint <path>");
    }
    if args.workers == 0 && !args.worker_mode && (args.checkpoint.is_some() || args.resume) {
        // Only the sharded coordinator journals; refusing beats silently
        // running an unresumable campaign.
        die("--checkpoint/--resume need sharded execution: add --workers <n> (1 is fine)");
    }
    args
}

/// The argv a worker process is launched with: the grid flags verbatim,
/// coordinator-only execution flags stripped, plus `--worker`.
fn worker_argv(argv: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(argv.len() + 1);
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if COORDINATOR_VALUE_FLAGS.contains(&flag) {
            i += 2;
        } else if flag == "--resume" || flag == "--worker" {
            i += 1;
        } else {
            out.push(argv[i].clone());
            i += 1;
        }
    }
    out.push("--worker".to_string());
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv);
    let grid = CampaignGrid {
        apps: args.apps,
        machines: args.machines,
        schemes: args.schemes,
        magnitudes: args.magnitudes,
        iterations: args.iterations,
        trials: args.trials,
    };
    let campaign = grid.into_campaign(args.name, args.seed);

    if args.worker_mode {
        // Hidden cluster-worker mode: stdout belongs to the protocol, so
        // nothing below this point may run.
        if let Err(e) = serve_worker(&campaign) {
            eprintln!("worker error: {e}");
            std::process::exit(3);
        }
        return;
    }

    let n = campaign.len();
    let report = if args.workers > 0 {
        let program = std::env::current_exe().expect("resolve current executable");
        let launch = WorkerLaunch::new(program, worker_argv(&argv));
        let opts = DistributedOptions {
            workers: args.workers,
            checkpoint: args.checkpoint.clone(),
            resume: args.resume,
            max_respawns: args.max_respawns,
            stream_jsonl: args.jsonl.clone(),
        };
        println!(
            "campaign `{}`: {} scenarios, {} runs, {} iterations each, {} worker process(es), fingerprint {:#018x}",
            campaign.name,
            campaign.scenarios.len(),
            n,
            args.iterations,
            opts.workers,
            campaign.fingerprint(),
        );
        let started = std::time::Instant::now();
        match run_campaign_distributed(&campaign, launch, &opts) {
            Ok((report, stats)) => {
                println!(
                    "completed {n} runs in {:.2}s ({} resumed from checkpoint, {} executed, {} worker respawn(s))",
                    started.elapsed().as_secs_f64(),
                    stats.resumed,
                    stats.executed,
                    stats.respawns,
                );
                report
            }
            Err(e) => {
                eprintln!("error: {e}");
                if args.checkpoint.is_some() {
                    eprintln!("completed runs are checkpointed; re-run with --resume to continue");
                }
                std::process::exit(1);
            }
        }
    } else {
        let executor = match args.threads {
            Some(t) => SweepExecutor::with_threads(t),
            None => SweepExecutor::new(),
        };
        println!(
            "campaign `{}`: {} scenarios, {} runs, {} iterations each, {} worker(s)",
            campaign.name,
            campaign.scenarios.len(),
            n,
            args.iterations,
            executor.effective_threads(n),
        );
        let started = std::time::Instant::now();
        let report = executor.run(&campaign);
        println!(
            "completed {n} runs in {:.2}s",
            started.elapsed().as_secs_f64()
        );
        // In-process runs hold every record resident anyway; honor --jsonl
        // by writing the stream post-hoc in expansion order.
        if let Some(path) = &args.jsonl {
            let mut w = RunsJsonlWriter::create(path).expect("create jsonl stream");
            for record in &report.records {
                w.append(record).expect("append jsonl record");
            }
            println!(
                "[jsonl] wrote {} records to {}",
                w.written(),
                path.display()
            );
        }
        report
    };

    // Per-run summary table (series live in the JSON artifact).
    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.machine.clone(),
                r.scheme.clone(),
                r.magnitude.map(f2).unwrap_or_else(|| "native".into()),
                r.trial.to_string(),
                f4(r.final_energy),
                r.jobs.to_string(),
                r.skips.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("campaign `{}` results", report.name),
        &[
            "app",
            "machine",
            "scheme",
            "magnitude",
            "trial",
            "final_E",
            "jobs",
            "skips",
        ],
        &rows,
    );
    print_scenario_cis(&campaign, &report);
    report.write_json(None);
    report.write_runs_csv(None);
}

/// Per-scenario mean + bootstrap 95% CI table, for scenarios with enough
/// trials for an interval to mean anything.
fn print_scenario_cis(campaign: &qismet_bench::Campaign, report: &CampaignReport) {
    if !campaign.scenarios.iter().any(|s| s.trials >= 2) {
        return;
    }
    let ci_seed = qismet_mathkit::derive_seed(campaign.seed, 0xc1);
    let rows: Vec<Vec<String>> = campaign
        .scenarios
        .iter()
        .enumerate()
        .filter(|(_, s)| s.trials >= 2)
        .map(|(i, s)| {
            let ci = report.scenario_ci(i, 1000, qismet_mathkit::derive_seed(ci_seed, i as u64));
            vec![
                s.display_label(),
                s.app.name(),
                s.trials.to_string(),
                f4(ci.mean),
                f4(ci.lo),
                f4(ci.hi),
            ]
        })
        .collect();
    print_table(
        "per-scenario trailing-window mean ± bootstrap 95% CI",
        &["scenario", "app", "trials", "mean", "ci_lo", "ci_hi"],
        &rows,
    );
}

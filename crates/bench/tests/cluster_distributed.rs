//! Integration tests for the sharded multi-process campaign executor:
//! 2-process sharded execution must be byte-identical to sequential (and
//! threaded) in-process execution, a killed-mid-campaign invocation must
//! resume from its checkpoint journal re-running only the missing specs,
//! and crashed workers must respawn without changing a single bit.
//!
//! The worker side is the real `campaign` binary (via
//! `CARGO_BIN_EXE_campaign`) in its hidden `--worker` mode; the coordinator
//! runs in-process. Mid-campaign crashes are injected deterministically
//! with the `QISMET_CLUSTER_EXIT_AFTER` hook, which makes a worker exit
//! after sending N results.

use proptest::prelude::*;
use qismet_bench::distributed::EXIT_AFTER_ENV;
use qismet_bench::{
    run_campaign_distributed, Campaign, CampaignGrid, CampaignReport, DistributedOptions, Scheme,
    SweepExecutor,
};
use qismet_cluster::{load_journal, ClusterError, WorkerLaunch};
use qismet_vqa::AppSpec;
use std::path::PathBuf;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_campaign");

/// A grid campaign and the exact `campaign` CLI flags that rebuild it.
struct GridCase {
    campaign: Campaign,
    flags: Vec<String>,
}

fn grid_case(name: &str, seed: u64, app_ids: &[u8], trials: usize, iterations: usize) -> GridCase {
    let apps: Vec<AppSpec> = app_ids
        .iter()
        .map(|&id| AppSpec::by_id(id).unwrap())
        .collect();
    let grid = CampaignGrid {
        apps,
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline, Scheme::Qismet],
        thresholds: Vec::new(),
        magnitudes: Vec::new(),
        iterations,
        trials,
    };
    let campaign = grid.into_campaign(name, seed);
    let flags: Vec<String> = [
        "--name",
        name,
        "--apps",
        &app_ids
            .iter()
            .map(u8::to_string)
            .collect::<Vec<_>>()
            .join(","),
        "--schemes",
        "baseline,qismet",
        "--iterations",
        &iterations.to_string(),
        "--trials",
        &trials.to_string(),
        "--seed",
        &seed.to_string(),
        "--worker",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    GridCase { campaign, flags }
}

fn launch(case: &GridCase) -> WorkerLaunch {
    WorkerLaunch::new(PathBuf::from(WORKER_BIN), case.flags.clone())
}

fn assert_reports_bitwise_equal(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a, b);
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.final_energy.to_bits(), y.final_energy.to_bits());
        assert_eq!(x.series.len(), y.series.len());
        for (u, v) in x.series.iter().zip(y.series.iter()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
    // The strongest form of the acceptance criterion: identical artifacts.
    assert_eq!(
        serde_json::to_string_pretty(a).unwrap(),
        serde_json::to_string_pretty(b).unwrap()
    );
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qismet-cluster-test-{tag}-{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn two_process_sharded_matches_sequential_and_threaded_bitwise() {
    let case = grid_case("dist-bitwise", 42, &[1, 2], 2, 25);
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    let threaded = SweepExecutor::with_threads(2).run(&case.campaign);
    let (sharded, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 2,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.total, case.campaign.len());
    assert_eq!(stats.executed, case.campaign.len());
    assert_eq!(stats.resumed, 0);
    assert_eq!(stats.respawns, 0);
    assert_reports_bitwise_equal(&sequential, &threaded);
    assert_reports_bitwise_equal(&sequential, &sharded);
}

#[test]
fn batch_lanes_coordinator_matches_sharded_cluster_bitwise() {
    // Lockstep lane batching is a pure throughput knob: an in-process
    // `--batch-lanes` run must produce the same bytes as a 2-process
    // sharded cluster run of the same campaign (both equal the sequential
    // scalar reference). 5 trials forces a 4-lane group plus a scalar
    // remainder; the qismet scenarios take the scalar fallback inside the
    // lane-batched executor.
    let case = grid_case("dist-lanes", 77, &[1], 5, 22);
    let scalar = SweepExecutor::sequential().run(&case.campaign);
    let laned = SweepExecutor::sequential()
        .with_batch_lanes(4)
        .run(&case.campaign);
    let (sharded, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 2,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.executed, case.campaign.len());
    assert_reports_bitwise_equal(&scalar, &laned);
    assert_reports_bitwise_equal(&laned, &sharded);
}

#[test]
fn interrupted_campaign_resumes_rerunning_only_missing_specs() {
    let case = grid_case("dist-resume", 0xbeef, &[1], 3, 22);
    let total = case.campaign.len();
    assert_eq!(total, 6);
    let journal_path = temp_journal("resume");
    let _ = std::fs::remove_file(&journal_path);

    // Phase 1: a single worker that dies after 2 completed runs, with no
    // respawn budget — the invocation fails mid-campaign, like a kill -9.
    let mut crashing = launch(&case);
    crashing.envs.push((EXIT_AFTER_ENV.into(), "2".into()));
    let err = run_campaign_distributed(
        &case.campaign,
        Some(crashing),
        &DistributedOptions {
            workers: 1,
            checkpoint: Some(journal_path.clone()),
            max_respawns: 0,
            ..DistributedOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::WorkerLost { .. }),
        "unexpected error: {err}"
    );

    // Exactly the two completed runs are durably checkpointed.
    let loaded = load_journal(&journal_path, case.campaign.fingerprint()).unwrap();
    assert_eq!(loaded.entries.len(), 2);
    assert_eq!(loaded.corrupt, 0);

    // Phase 2: resume with healthy workers — only the 4 missing specs
    // re-run, and the merged report is bit-identical to sequential.
    let (resumed_report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 2,
            checkpoint: Some(journal_path.clone()),
            resume: true,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.resumed, 2, "journaled specs must not re-run");
    assert_eq!(stats.executed, total - 2);
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    assert_reports_bitwise_equal(&sequential, &resumed_report);

    // After the resumed completion the journal covers the whole campaign;
    // a further resume executes nothing.
    let (idempotent, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 2,
            checkpoint: Some(journal_path.clone()),
            resume: true,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.resumed, total);
    assert_eq!(stats.executed, 0);
    assert_reports_bitwise_equal(&sequential, &idempotent);

    std::fs::remove_file(&journal_path).unwrap();
}

#[test]
fn crashing_workers_respawn_and_the_report_is_unchanged() {
    let case = grid_case("dist-respawn", 7, &[1], 2, 22);
    // Every worker process dies after a single completed run; the
    // coordinator must keep respawning them through the whole campaign.
    let mut crashing = launch(&case);
    crashing.envs.push((EXIT_AFTER_ENV.into(), "1".into()));
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(crashing),
        &DistributedOptions {
            workers: 2,
            max_respawns: 16,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert!(
        stats.respawns >= 1,
        "the exit-after hook must have forced at least one respawn"
    );
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    assert_reports_bitwise_equal(&sequential, &report);
}

#[test]
fn unwritable_checkpoint_path_fails_before_any_work() {
    let case = grid_case("dist-sink", 5, &[1], 1, 22);
    let err = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 1,
            checkpoint: Some(PathBuf::from("/nonexistent-dir/ckpt.jsonl")),
            ..DistributedOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::Io(_)),
        "unexpected error: {err}"
    );
}

#[test]
fn mismatched_worker_campaign_is_rejected_at_handshake() {
    let case = grid_case("dist-fp", 11, &[1], 1, 22);
    // A worker launched with a different master seed expands a different
    // campaign; the fingerprint handshake must refuse it outright.
    let other = grid_case("dist-fp", 12, &[1], 1, 22);
    let err = run_campaign_distributed(
        &case.campaign,
        Some(launch(&other)),
        &DistributedOptions {
            workers: 1,
            ..DistributedOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::FingerprintMismatch { .. }),
        "unexpected error: {err}"
    );
}

#[test]
fn journal_from_another_campaign_resumes_nothing() {
    let case = grid_case("dist-foreign", 21, &[1], 1, 22);
    let other = grid_case("dist-foreign", 22, &[1], 1, 22);
    let journal_path = temp_journal("foreign");
    let _ = std::fs::remove_file(&journal_path);

    // Checkpoint the *other* campaign completely.
    run_campaign_distributed(
        &other.campaign,
        Some(launch(&other)),
        &DistributedOptions {
            workers: 1,
            checkpoint: Some(journal_path.clone()),
            ..DistributedOptions::default()
        },
    )
    .unwrap();

    // Resuming `case` from it must adopt nothing (fingerprint mismatch)
    // and still produce the right records.
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 1,
            checkpoint: Some(journal_path.clone()),
            resume: true,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.resumed, 0);
    assert_eq!(stats.executed, case.campaign.len());
    assert_reports_bitwise_equal(&SweepExecutor::sequential().run(&case.campaign), &report);

    std::fs::remove_file(&journal_path).unwrap();
}

#[test]
fn summary_only_merge_drops_series_and_jsonl_reaggregates_identically() {
    let case = grid_case("dist-summary", 0x50f7, &[1], 2, 22);
    let jsonl_path = temp_journal("summary-stream");
    let _ = std::fs::remove_file(&jsonl_path);

    let (summary_report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 2,
            stream_jsonl: Some(jsonl_path.clone()),
            summary_only: true,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.executed, case.campaign.len());

    // Residency holds aggregates only: every series is gone, everything
    // else matches the sequential run exactly.
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    assert!(
        summary_report.records.iter().all(|r| r.series.is_empty()),
        "summary-only records must not retain series"
    );
    let mut stripped = sequential.clone();
    for r in &mut stripped.records {
        r.series.clear();
    }
    assert_reports_bitwise_equal(&stripped, &summary_report);

    // The streamed JSONL carries the full series; re-aggregating it in
    // expansion order reproduces the sequential report byte-for-byte.
    let reaggregated =
        qismet_bench::reaggregate_runs_jsonl(&jsonl_path, &case.campaign.name, case.campaign.seed)
            .unwrap();
    assert_reports_bitwise_equal(&sequential, &reaggregated);

    // summary-only without a stream is refused outright.
    let err = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 1,
            summary_only: true,
            ..DistributedOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::Io(_)),
        "unexpected error: {err}"
    );

    std::fs::remove_file(&jsonl_path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // For random small campaigns, sequential, threaded, and 2-process
    // sharded execution produce bitwise-identical reports.
    #[test]
    fn random_grids_agree_across_all_executors(
        seed in 0u64..u64::MAX,
        n_apps in 1usize..3,
        trials in 1usize..3,
    ) {
        let app_ids: Vec<u8> = (1..=n_apps as u8).collect();
        let case = grid_case("dist-prop", seed, &app_ids, trials, 20);
        let sequential = SweepExecutor::sequential().run(&case.campaign);
        let threaded = SweepExecutor::with_threads(2).run(&case.campaign);
        let (sharded, _) = run_campaign_distributed(
            &case.campaign,
            Some(launch(&case)),
            &DistributedOptions { workers: 2, ..DistributedOptions::default() },
        )
        .unwrap();
        assert_reports_bitwise_equal(&sequential, &threaded);
        assert_reports_bitwise_equal(&sequential, &sharded);
    }
}

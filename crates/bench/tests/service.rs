//! Full-stack campaign-service integration over real TCP.
//!
//! One daemon thread serves two tenants' campaigns concurrently while the
//! worker fleet changes under it — one worker deregisters mid-run, another
//! joins late — and every settled job's report file must be byte-identical
//! to a sequential run of the same campaign. A second test pins the typed
//! client errors end to end.

use qismet_bench::service::{serve, ServiceConfig};
use qismet_bench::{
    cancel_job, drain_service, job_status, run_campaign, submit_job, CampaignPlanner, GridSpec,
    RegisterOptions, RegisterStats, ServiceError,
};
use qismet_cluster::{Listener, ServiceErrKind, TcpTransportListener};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qismet-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn alpha_grid() -> GridSpec {
    GridSpec {
        name: "svc-alpha".into(),
        seed: 7,
        apps: vec![1],
        machines: vec![],
        schemes: vec!["baseline".into(), "qismet".into()],
        thresholds: vec![],
        magnitudes: vec![],
        iterations: 25,
        trials: 3,
    }
}

fn beta_grid() -> GridSpec {
    GridSpec {
        name: "svc-beta".into(),
        seed: 13,
        apps: vec![2],
        machines: vec![],
        schemes: vec!["baseline".into()],
        thresholds: vec![85],
        magnitudes: vec![],
        iterations: 25,
        trials: 2,
    }
}

struct Daemon {
    addr: String,
    handle: std::thread::JoinHandle<qismet_cluster::ServiceSummary>,
}

/// Starts a service daemon on an ephemeral TCP port with tenants `alice`
/// and `bob` under the `fleet` token.
fn start_daemon(tag: &str) -> (Daemon, PathBuf) {
    let listener = TcpTransportListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let report_dir = temp_dir(&format!("{tag}-reports"));
    let state_dir = temp_dir(&format!("{tag}-state"));
    let planner = CampaignPlanner {
        report_dir: report_dir.clone(),
    };
    let mut config = ServiceConfig::new("fleet");
    config.tenants = vec![
        ("alice".to_string(), "a-token".to_string()),
        ("bob".to_string(), "b-token".to_string()),
    ];
    config.state_dir = Some(state_dir);
    let handle = std::thread::spawn(move || {
        serve(Box::new(listener), &planner, &config).expect("daemon drains cleanly")
    });
    (Daemon { addr, handle }, report_dir)
}

fn worker(name: &str, deregister_after: Option<usize>) -> RegisterOptions {
    RegisterOptions {
        name: name.into(),
        token: "fleet".into(),
        threads: 1,
        deregister_after,
        ..RegisterOptions::default()
    }
}

fn spawn_worker(
    addr: &str,
    opts: RegisterOptions,
) -> std::thread::JoinHandle<Result<RegisterStats, ServiceError>> {
    let addr = addr.to_string();
    std::thread::spawn(move || qismet_bench::register_worker(&addr, &opts))
}

#[test]
fn daemon_serves_two_tenants_elastically_with_byte_identical_reports() {
    let (daemon, report_dir) = start_daemon("elastic");
    let alpha = alpha_grid();
    let beta = beta_grid();
    let job_a = submit_job(&daemon.addr, "a-token", &alpha, 1).expect("alice submits");
    let job_b = submit_job(&daemon.addr, "b-token", &beta, 0).expect("bob submits");
    assert_ne!(job_a.job_id, job_b.job_id);
    assert_ne!(job_a.fingerprint, job_b.fingerprint);

    // Tenant-scoped status: alice sees only her own job; the fleet
    // principal sees both.
    let alice_view = job_status(&daemon.addr, "a-token").expect("alice status");
    assert_eq!(alice_view.jobs.len(), 1);
    assert_eq!(alice_view.jobs[0].job_id, job_a.job_id);
    assert_eq!(alice_view.jobs[0].tenant, "alice");
    let fleet_view = job_status(&daemon.addr, "fleet").expect("fleet status");
    assert_eq!(fleet_view.jobs.len(), 2);

    // Elastic fleet: one steady worker, one that voluntarily leaves after
    // two batches, and one that joins only once the run is underway.
    let steady = spawn_worker(&daemon.addr, worker("steady", None));
    let transient = spawn_worker(&daemon.addr, worker("transient", Some(2)));
    std::thread::sleep(Duration::from_millis(100));
    let late = spawn_worker(&daemon.addr, worker("late", None));

    let drained = drain_service(&daemon.addr, "fleet").expect("drain completes");
    assert_eq!(drained.jobs_completed, 2);
    assert_eq!(drained.jobs_failed, 0);
    let transient_stats = transient
        .join()
        .expect("transient exits")
        .expect("voluntary leave is not an error");
    assert_eq!(transient_stats.batches, 2);
    steady.join().expect("steady exits").expect("steady served");
    late.join().expect("late exits").expect("late served");
    let summary = daemon.handle.join().expect("daemon thread exits");
    assert_eq!(summary.jobs_completed, 2);
    assert_eq!(summary.jobs_failed, 0);

    // Byte-identity: whatever the fleet did, each report file equals a
    // sequential in-process run of the same campaign, byte for byte.
    let reference_dir = temp_dir("elastic-reference");
    for grid in [&alpha, &beta] {
        let reference = run_campaign(&grid.to_campaign().expect("grid expands"));
        let reference_path = reference
            .write_json_in(&reference_dir, None)
            .expect("reference written");
        let service_path = report_dir.join(format!("{}.json", grid.name));
        let service_bytes = std::fs::read(&service_path).expect("service report exists");
        let reference_bytes = std::fs::read(&reference_path).expect("reference report exists");
        assert!(
            service_bytes == reference_bytes,
            "service report {} differs from its sequential reference",
            grid.name
        );
    }
    let _ = std::fs::remove_dir_all(&report_dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

#[test]
fn client_verbs_return_typed_errors_end_to_end() {
    let (daemon, report_dir) = start_daemon("errors");

    // Bad tenant token on submit.
    let refused = submit_job(&daemon.addr, "wrong", &alpha_grid(), 0)
        .expect_err("unknown token must be refused");
    assert!(matches!(
        refused,
        ServiceError::Refused {
            kind: ServiceErrKind::BadToken,
            ..
        }
    ));

    // Bad fleet token on worker registration.
    let refused = qismet_bench::register_worker(
        &daemon.addr,
        &RegisterOptions {
            name: "intruder".into(),
            token: "wrong".into(),
            ..RegisterOptions::default()
        },
    )
    .expect_err("wrong fleet token must be refused");
    assert!(matches!(
        refused,
        ServiceError::Refused {
            kind: ServiceErrKind::BadToken,
            ..
        }
    ));

    let job = submit_job(&daemon.addr, "a-token", &alpha_grid(), 0).expect("submit accepted");

    // Duplicate fingerprint while the first submission is still live —
    // even from a different tenant.
    let duplicate = submit_job(&daemon.addr, "b-token", &alpha_grid(), 2)
        .expect_err("same campaign cannot queue twice");
    assert!(matches!(
        duplicate,
        ServiceError::Refused {
            kind: ServiceErrKind::DuplicateFingerprint,
            ..
        }
    ));

    // Unknown id, then a foreign tenant's id (indistinguishable by
    // design), then the owner really cancels.
    for (token, id) in [("a-token", 999), ("b-token", job.job_id)] {
        let missing = cancel_job(&daemon.addr, token, id).expect_err("job must be invisible");
        assert!(matches!(
            missing,
            ServiceError::Refused {
                kind: ServiceErrKind::UnknownJob,
                ..
            }
        ));
    }
    assert_eq!(
        cancel_job(&daemon.addr, "a-token", job.job_id).expect("owner cancels"),
        job.job_id
    );

    let drained = drain_service(&daemon.addr, "fleet").expect("drain completes");
    assert_eq!(drained.jobs_completed, 0);
    assert_eq!(
        drained.jobs_failed, 1,
        "the cancelled job settles as failed"
    );
    let summary = daemon.handle.join().expect("daemon thread exits");
    assert_eq!(summary.jobs_failed, 1);
    let _ = std::fs::remove_dir_all(&report_dir);
}

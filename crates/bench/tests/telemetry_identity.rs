//! The telemetry no-perturbation guarantee, pinned: campaign reports with
//! metric recording (and tracing) enabled are **byte-identical** to runs
//! with telemetry off — sequentially, threaded, lane-batched, and across a
//! real 2-process cluster whose workers piggyback stats on `Done` frames.
//!
//! Telemetry only observes (wall-clock samples, counter bumps); no
//! simulation or scheduling decision may read it. These tests are the
//! enforcement: any instrumentation hook that leaks into results breaks
//! them bitwise.

use proptest::prelude::*;
use qismet_bench::{
    run_campaign_distributed, Campaign, CampaignGrid, CampaignReport, DistributedOptions, Scheme,
    SweepExecutor,
};
use qismet_cluster::WorkerLaunch;
use qismet_vqa::AppSpec;
use std::path::PathBuf;
use std::sync::Mutex;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_campaign");

/// The telemetry gate is process-global, so identity tests serialize here
/// to keep `cargo test`'s parallel runner from interleaving one test's
/// toggle with another's run. (The assertions would hold anyway — that is
/// the invariant under test — but serialized runs keep a failure
/// unambiguous.)
static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

struct GridCase {
    campaign: Campaign,
    flags: Vec<String>,
}

fn grid_case(name: &str, seed: u64, app_ids: &[u8], trials: usize, iterations: usize) -> GridCase {
    let apps: Vec<AppSpec> = app_ids
        .iter()
        .map(|&id| AppSpec::by_id(id).unwrap())
        .collect();
    let grid = CampaignGrid {
        apps,
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline, Scheme::Qismet],
        thresholds: Vec::new(),
        magnitudes: Vec::new(),
        iterations,
        trials,
    };
    let campaign = grid.into_campaign(name, seed);
    let flags: Vec<String> = [
        "--name",
        name,
        "--apps",
        &app_ids
            .iter()
            .map(u8::to_string)
            .collect::<Vec<_>>()
            .join(","),
        "--schemes",
        "baseline,qismet",
        "--iterations",
        &iterations.to_string(),
        "--trials",
        &trials.to_string(),
        "--seed",
        &seed.to_string(),
        "--worker",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    GridCase { campaign, flags }
}

fn report_bytes(report: &CampaignReport) -> String {
    serde_json::to_string_pretty(report).unwrap()
}

/// Runs `f` twice — telemetry fully off, then metrics *and* tracing on —
/// and asserts the two reports serialize to identical bytes. Leaves the
/// process with telemetry off and counters reset.
fn assert_identity_under_gate(f: impl Fn() -> CampaignReport) {
    qismet_telemetry::set_enabled(false);
    qismet_telemetry::set_trace_enabled(false);
    qismet_telemetry::reset();
    let off = f();
    qismet_telemetry::set_enabled(true);
    qismet_telemetry::set_trace_enabled(true);
    let on = f();
    qismet_telemetry::set_enabled(false);
    qismet_telemetry::set_trace_enabled(false);
    qismet_telemetry::reset();
    assert_eq!(
        report_bytes(&off),
        report_bytes(&on),
        "telemetry perturbed the campaign report"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // Sequential in-process runs: metrics/tracing on vs off, byte-identical.
    #[test]
    fn sequential_reports_identical_with_telemetry_on(
        seed in 0u64..u64::MAX,
        trials in 1usize..3,
    ) {
        let _g = lock();
        let case = grid_case("telem-seq", seed, &[1], trials, 20);
        assert_identity_under_gate(|| SweepExecutor::sequential().run(&case.campaign));
    }

    // Threaded executor (degenerates to sequential without the `parallel`
    // feature — the identity must hold in both configs).
    #[test]
    fn threaded_reports_identical_with_telemetry_on(
        seed in 0u64..u64::MAX,
    ) {
        let _g = lock();
        let case = grid_case("telem-thr", seed, &[1, 2], 1, 20);
        assert_identity_under_gate(|| SweepExecutor::with_threads(2).run(&case.campaign));
    }

    // Lane-batched lockstep runs exercise the batch bind cache and lane
    // occupancy counters — the heaviest-instrumented path.
    #[test]
    fn lane_batched_reports_identical_with_telemetry_on(
        seed in 0u64..u64::MAX,
    ) {
        let _g = lock();
        let case = grid_case("telem-lanes", seed, &[1], 5, 20);
        assert_identity_under_gate(|| {
            SweepExecutor::sequential()
                .with_batch_lanes(4)
                .run(&case.campaign)
        });
    }
}

// A real 2-process cluster: coordinator telemetry on vs off. (Workers
// always run with telemetry on to piggyback stats — the wire extras must
// never reach the records either.)
#[test]
fn two_process_cluster_reports_identical_with_telemetry_on() {
    let _g = lock();
    let case = grid_case("telem-dist", 4242, &[1], 2, 22);
    let launch = WorkerLaunch::new(PathBuf::from(WORKER_BIN), case.flags.clone());
    assert_identity_under_gate(|| {
        let (report, _stats) = run_campaign_distributed(
            &case.campaign,
            Some(launch.clone()),
            &DistributedOptions {
                workers: 2,
                ..DistributedOptions::default()
            },
        )
        .unwrap();
        report
    });
}

//! CLI argument-validation tests for the `campaign` binary, run against the
//! real executable (`CARGO_BIN_EXE_campaign`). These pin the typed-error
//! contract: a bad flag exits with status 2 and a named error on stderr,
//! before any work starts.

use std::process::Command;

const CAMPAIGN_BIN: &str = env!("CARGO_BIN_EXE_campaign");

fn run_campaign_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(CAMPAIGN_BIN)
        .args(args)
        .output()
        .expect("spawn campaign binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn batch_lanes_rejects_unsupported_widths() {
    // The SoA engine supports lane widths 1 (scalar), 4, and 8 only; every
    // other value must die with a typed usage error, not clamp or ignore.
    for bad in ["0", "2", "3", "5", "6", "7", "9", "16", "x", "-4"] {
        let (code, stderr) = run_campaign_cli(&["--batch-lanes", bad]);
        assert_eq!(code, 2, "--batch-lanes {bad} must exit 2");
        assert!(
            stderr.contains("invalid --batch-lanes") && stderr.contains("must be 1, 4, or 8"),
            "--batch-lanes {bad} stderr: {stderr}"
        );
    }
}

#[test]
fn batch_lanes_rejects_missing_value_and_cluster_modes() {
    let (code, stderr) = run_campaign_cli(&["--batch-lanes"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("missing value"), "stderr: {stderr}");

    // Cluster workers pull specs one at a time, so lane grouping cannot
    // apply; combining the flags is refused instead of silently ignored.
    for extra in [
        &["--workers", "2"][..],
        &["--connect", "localhost:1"][..],
        &["--serve", "127.0.0.1:0"][..],
    ] {
        let mut args = vec!["--batch-lanes", "4"];
        args.extend_from_slice(extra);
        let (code, stderr) = run_campaign_cli(&args);
        assert_eq!(code, 2, "{extra:?} must exit 2");
        assert!(
            stderr.contains("--batch-lanes applies to in-process execution"),
            "{extra:?} stderr: {stderr}"
        );
    }
}

#[test]
fn batch_lanes_accepts_supported_widths() {
    // Valid widths parse and the run completes end to end on a tiny grid
    // (exit 0), exercising the wired-through executor path.
    let (code, stderr) = run_campaign_cli(&[
        "--apps",
        "1",
        "--schemes",
        "baseline",
        "--iterations",
        "20",
        "--trials",
        "4",
        "--batch-lanes",
        "4",
        "--name",
        "cli-lanes-smoke",
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
}

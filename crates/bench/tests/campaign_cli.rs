//! CLI argument-validation tests for the `campaign` binary, run against the
//! real executable (`CARGO_BIN_EXE_campaign`). These pin the typed-error
//! contract: a bad flag exits with status 2 and a named error on stderr,
//! before any work starts.

use std::process::Command;

const CAMPAIGN_BIN: &str = env!("CARGO_BIN_EXE_campaign");

fn run_campaign_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(CAMPAIGN_BIN)
        .args(args)
        .output()
        .expect("spawn campaign binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn batch_lanes_rejects_unsupported_widths() {
    // The SoA engine supports lane widths 1 (scalar), 4, and 8 only; every
    // other value must die with a typed usage error, not clamp or ignore.
    for bad in ["0", "2", "3", "5", "6", "7", "9", "16", "x", "-4"] {
        let (code, stderr) = run_campaign_cli(&["--batch-lanes", bad]);
        assert_eq!(code, 2, "--batch-lanes {bad} must exit 2");
        assert!(
            stderr.contains("invalid --batch-lanes") && stderr.contains("must be 1, 4, or 8"),
            "--batch-lanes {bad} stderr: {stderr}"
        );
    }
}

#[test]
fn batch_lanes_rejects_missing_value_and_cluster_modes() {
    let (code, stderr) = run_campaign_cli(&["--batch-lanes"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("missing value"), "stderr: {stderr}");

    // Cluster workers pull specs one at a time, so lane grouping cannot
    // apply; combining the flags is refused instead of silently ignored.
    for extra in [
        &["--workers", "2"][..],
        &["--connect", "localhost:1"][..],
        &["--serve", "127.0.0.1:0"][..],
    ] {
        let mut args = vec!["--batch-lanes", "4"];
        args.extend_from_slice(extra);
        let (code, stderr) = run_campaign_cli(&args);
        assert_eq!(code, 2, "{extra:?} must exit 2");
        assert!(
            stderr.contains("--batch-lanes applies to in-process execution"),
            "{extra:?} stderr: {stderr}"
        );
    }
}

#[test]
fn batch_lanes_accepts_supported_widths() {
    // Valid widths parse and the run completes end to end on a tiny grid
    // (exit 0), exercising the wired-through executor path.
    let (code, stderr) = run_campaign_cli(&[
        "--apps",
        "1",
        "--schemes",
        "baseline",
        "--iterations",
        "20",
        "--trials",
        "4",
        "--batch-lanes",
        "4",
        "--name",
        "cli-lanes-smoke",
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
}

/// End-to-end observability acceptance: a real 2-worker cluster run with
/// `--metrics-out`/`--trace-out` must produce a metrics document carrying
/// the plan-cache hit rate, per-worker done/respawn/heartbeat-RTT health,
/// and build provenance — and print the per-slot fleet table.
#[test]
fn metrics_out_from_two_worker_cluster_carries_fleet_health() {
    let dir = std::env::temp_dir();
    let metrics_path = dir.join(format!("qismet-cli-metrics-{}.json", std::process::id()));
    let trace_path = dir.join(format!("qismet-cli-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(&trace_path);
    let out = Command::new(CAMPAIGN_BIN)
        .args([
            "--apps",
            "1",
            "--schemes",
            "baseline,qismet",
            "--iterations",
            "25",
            "--trials",
            "2",
            "--workers",
            "2",
            "--heartbeat",
            "0.02",
            "--name",
            "cli-obs-smoke",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn campaign binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {stdout}\nstderr: {stderr}"
    );
    // Satellite guarantee: the per-slot summary prints on every
    // distributed run, not only when artifacts are requested.
    assert!(
        stdout.contains("fleet health (per worker slot)"),
        "missing fleet table: {stdout}"
    );

    let metrics: serde_json::JsonValue =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let build = metrics.get("build").expect("build provenance");
    assert!(build.get("git_hash").and_then(|v| v.as_str()).is_some());
    assert!(build.get("parallel").is_some());
    let counters = metrics.get("counters").expect("counters object");
    assert_eq!(
        counters.get("cluster.specs_done").and_then(|v| v.as_u64()),
        Some(4),
        "counters: {counters:?}"
    );
    assert_eq!(
        counters
            .get("cluster.specs_assigned")
            .and_then(|v| v.as_u64()),
        Some(4)
    );
    let fleet = metrics
        .get("fleet")
        .and_then(|v| v.as_array())
        .expect("fleet array");
    assert_eq!(fleet.len(), 2, "two worker slots");
    for slot in fleet {
        assert!(slot.get("done").and_then(|v| v.as_u64()).unwrap() > 0);
        assert_eq!(slot.get("respawns").and_then(|v| v.as_u64()), Some(0));
        // The 20ms heartbeat guarantees pings (and matched RTT samples)
        // on runs this size.
        assert!(slot.get("pings").and_then(|v| v.as_u64()).unwrap() > 0);
        assert!(
            slot.get("heartbeat_rtt_ns_mean")
                .and_then(|v| v.as_u64())
                .unwrap()
                > 0
        );
        // Plan-cache hit rate, per worker: hits dominate (one compile per
        // objective, hundreds of rebind evaluations).
        let hits = slot
            .get("worker_plan_hits")
            .and_then(|v| v.as_u64())
            .unwrap();
        let misses = slot
            .get("worker_plan_misses")
            .and_then(|v| v.as_u64())
            .unwrap();
        assert!(hits > 0 && misses > 0, "hits {hits} misses {misses}");
        assert!(hits > misses);
    }

    // Coordinator trace: structurally valid Chrome trace_event JSON (the
    // coordinator itself runs no simulation, so events may be empty).
    let trace: serde_json::JsonValue =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    assert!(trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .is_some());

    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(&trace_path);
}

/// In-process runs populate the qsim-level metrics: per-kernel-class op
/// counters, plan-cache activity, evaluate-plan latency histogram — and a
/// non-empty Chrome trace.
#[test]
fn metrics_out_in_process_carries_qsim_taxonomy() {
    let dir = std::env::temp_dir();
    let metrics_path = dir.join(format!("qismet-cli-metrics-ip-{}.json", std::process::id()));
    let trace_path = dir.join(format!("qismet-cli-trace-ip-{}.json", std::process::id()));
    let out = Command::new(CAMPAIGN_BIN)
        .args([
            "--apps",
            "1",
            "--schemes",
            "baseline",
            "--iterations",
            "25",
            "--trials",
            "2",
            "--name",
            "cli-obs-ip",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn campaign binary");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics: serde_json::JsonValue =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let counters = metrics.get("counters").expect("counters");
    for key in [
        "qsim.plan_cache.hits",
        "qsim.plan_cache.misses",
        "qsim.plans_compiled",
        "sweep.specs_done",
    ] {
        assert!(
            counters.get(key).and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "counter {key} missing or zero: {counters:?}"
        );
    }
    // At least one kernel-class op counter ticks on any real circuit.
    let ops_total: u64 = counters
        .as_object()
        .unwrap()
        .iter()
        .filter(|(k, _)| k.starts_with("qsim.ops."))
        .filter_map(|(_, v)| v.as_u64())
        .sum();
    assert!(ops_total > 0, "no qsim.ops.* counters: {counters:?}");
    let hists = metrics.get("histograms").expect("histograms");
    for key in ["qsim.evaluate_plan", "sweep.spec_ns"] {
        let h = hists.get(key).unwrap_or_else(|| panic!("histogram {key}"));
        assert!(h.get("count").and_then(|v| v.as_u64()).unwrap() > 0);
    }
    let trace: serde_json::JsonValue =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    assert!(
        !trace
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .is_empty(),
        "in-process trace must contain span events"
    );
    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(&trace_path);
}

/// Observability flags are coordinator-side configuration: a worker daemon
/// must refuse them instead of silently never writing artifacts.
#[test]
fn observability_flags_are_refused_on_serve_daemons() {
    for extra in [
        &["--metrics-out", "/tmp/x.json"][..],
        &["--trace-out", "/tmp/x.json"][..],
        &["--progress"][..],
    ] {
        let mut args = vec!["--serve", "127.0.0.1:0"];
        args.extend_from_slice(extra);
        let (code, stderr) = run_campaign_cli(&args);
        assert_eq!(code, 2, "{extra:?} must exit 2");
        assert!(
            stderr.contains("belong on the coordinator, not --serve"),
            "{extra:?} stderr: {stderr}"
        );
    }
}

/// Validation conflicts — whatever the flag combination — exit with the
/// usage code and a named conflict, never a partial run.
#[test]
fn typed_conflicts_exit_with_usage_code() {
    for (args, needle) in [
        (&["--resume"][..], "--resume requires --checkpoint"),
        (
            &["--daemon", "127.0.0.1:0", "--workers", "2"][..],
            "--daemon is a service mode",
        ),
        (
            &["cancel", "--to", "127.0.0.1:1"][..],
            "cancel requires --job",
        ),
        (
            &["--to", "127.0.0.1:1"][..],
            "submit/status/cancel/drain require --to",
        ),
    ] {
        let (code, stderr) = run_campaign_cli(args);
        assert_eq!(code, 2, "{args:?} must exit 2; stderr: {stderr}");
        assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
    }
}

/// A campaign whose spec repeatedly kills its workers ends with the
/// poisoned-spec exit code (4), distinct from generic failure.
#[test]
fn poisoned_specs_exit_with_their_own_code() {
    let plan_path = std::env::temp_dir().join(format!(
        "qismet-cli-poison-plan-{}.json",
        std::process::id()
    ));
    std::fs::write(
        &plan_path,
        r#"{"faults":[{"worker":null,"after_dones":0,"kind":{"PoisonSpec":0}}],"max_sessions":null}"#,
    )
    .expect("plan written");
    let (code, stderr) = run_campaign_cli(&[
        "--apps",
        "1",
        "--schemes",
        "baseline",
        "--iterations",
        "20",
        "--trials",
        "4",
        "--workers",
        "2",
        "--chaos-plan",
        plan_path.to_str().unwrap(),
        "--name",
        "cli-poison-exit",
    ]);
    assert_eq!(code, 4, "stderr: {stderr}");
    assert!(
        stderr.contains("poisoned/isolated"),
        "stderr must name the poisoned specs: {stderr}"
    );
    let _ = std::fs::remove_file(&plan_path);
}

/// Rejected service handshakes exit 5; authorized status/drain verbs round
/// trip against a live daemon, which then drains to a clean exit 0.
#[test]
fn rejected_service_token_exits_5_and_drain_round_trips() {
    use std::io::BufRead as _;
    let mut daemon = Command::new(CAMPAIGN_BIN)
        .args([
            "--daemon",
            "127.0.0.1:0",
            "--token",
            "fleet",
            "--tenants",
            "alice=a-token",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    // The readiness line carries the bound address (the port was 0).
    let mut stdout = std::io::BufReader::new(daemon.stdout.take().expect("piped stdout"));
    let mut ready = String::new();
    stdout.read_line(&mut ready).expect("readiness line");
    let addr = ready
        .strip_prefix("campaign service on ")
        .and_then(|rest| rest.split_once(": "))
        .map(|(addr, _)| addr.to_string())
        .unwrap_or_else(|| panic!("unexpected readiness line: {ready:?}"));

    // A wrong tenant token is a typed rejection: exit 5, nothing queued.
    let (code, stderr) = run_campaign_cli(&[
        "submit",
        "--to",
        &addr,
        "--token",
        "wrong",
        "--apps",
        "1",
        "--schemes",
        "baseline",
        "--iterations",
        "20",
        "--name",
        "cli-rejected",
    ]);
    assert_eq!(code, 5, "stderr: {stderr}");
    assert!(stderr.contains("BadToken"), "stderr: {stderr}");

    // So is cancelling a job that does not exist — but with the generic
    // failure code: the session authenticated fine.
    let (code, stderr) = run_campaign_cli(&[
        "cancel", "--to", &addr, "--token", "a-token", "--job", "999",
    ]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(stderr.contains("UnknownJob"), "stderr: {stderr}");

    // Authorized status and drain round trip, and the daemon exits 0.
    let out = Command::new(CAMPAIGN_BIN)
        .args(["status", "--to", &addr, "--token", "a-token"])
        .output()
        .expect("status runs");
    assert_eq!(out.status.code(), Some(0));
    let out = Command::new(CAMPAIGN_BIN)
        .args(["drain", "--to", &addr, "--token", "fleet"])
        .output()
        .expect("drain runs");
    assert_eq!(out.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("drained: 0 job(s) completed, 0 failed"),
        "drain stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(
        status.code(),
        Some(0),
        "daemon must exit cleanly after drain"
    );
    let mut rest = String::new();
    stdout.read_line(&mut rest).expect("drain summary line");
    assert!(
        rest.contains("service drained: 0 job(s) completed"),
        "daemon stdout: {rest:?}"
    );
}

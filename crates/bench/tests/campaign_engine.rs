//! Integration tests for the campaign sweep engine: parallel execution must
//! be bit-identical to sequential execution, and derived per-run seeds must
//! never collide across a campaign grid.

use proptest::prelude::*;
use qismet_bench::{
    run_campaign, run_seed, Campaign, CampaignGrid, ScenarioSpec, Scheme, SweepExecutor,
};
use qismet_qnoise::Machine;
use qismet_vqa::AppSpec;
use std::collections::HashSet;

fn small_campaign() -> Campaign {
    let app1 = AppSpec::by_id(1).unwrap();
    let app2 = AppSpec::by_id(2).unwrap();
    Campaign::new("engine-test", 0xabc)
        .with(ScenarioSpec::new(app1.clone(), Scheme::Baseline, 30).with_trials(2))
        .with(ScenarioSpec::new(app1.clone(), Scheme::Qismet, 30).with_trials(2))
        .with(
            ScenarioSpec::new(app2.clone(), Scheme::Blocking, 25)
                .on_machine(Machine::Sydney)
                .with_magnitude(0.3),
        )
        .with(ScenarioSpec::new(app2, Scheme::OnlyTransients(90), 25).seeded(0x77))
        .with(ScenarioSpec::kalman(
            AppSpec::by_id(1).unwrap(),
            qismet_filters::KalmanFilter::new(1.0, 0.1, 1e-4),
            25,
        ))
}

#[test]
fn parallel_and_sequential_records_are_bit_identical() {
    let campaign = small_campaign();
    let seq = SweepExecutor::sequential().run(&campaign);
    // Under `--features parallel` this fans across 4 workers; without the
    // feature it degrades to sequential, keeping the assertion meaningful
    // in both CI configurations.
    let par = SweepExecutor::with_threads(4).run(&campaign);
    let all = SweepExecutor::with_threads(0).run(&campaign);

    assert_eq!(seq.records.len(), campaign.len());
    assert_eq!(seq, par);
    assert_eq!(seq, all);
    // PartialEq on f64 would already fail on NaN mismatches; additionally
    // require bitwise equality of every series sample.
    for (a, b) in seq.records.iter().zip(par.records.iter()) {
        assert_eq!(a.series.len(), b.series.len());
        for (x, y) in a.series.iter().zip(b.series.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.final_energy.to_bits(), b.final_energy.to_bits());
    }
}

#[test]
fn rerunning_a_campaign_is_deterministic() {
    // Two sequential runs on this thread share the worker backend pool, so
    // equality here also pins that cross-run backend sharing (reused
    // scratch state + compiled plans) leaves results untouched.
    let campaign = small_campaign();
    let a = run_campaign(&campaign);
    let b = run_campaign(&campaign);
    assert_eq!(a, b);
}

#[test]
fn pooled_worker_backends_match_fresh_backends() {
    use qismet_optim::{GainSchedule, Spsa};
    use qismet_vqa::{run_tuning, TuningScheme};

    // `run_scheme` draws its backend from the per-worker pool; replicate the
    // Baseline scheme by hand on an app built with a fresh, unpooled
    // backend and require bitwise-identical series.
    let spec = AppSpec::by_id(1).unwrap();
    let (iterations, seed) = (30usize, 123u64);
    let pooled = qismet_bench::run_scheme(&spec, Scheme::Baseline, iterations, None, seed);

    let mut app = spec.build(iterations * 7 + 16, None, seed); // fresh CachedStatevectorBackend
    let mut spsa = Spsa::new(
        app.theta0.len(),
        GainSchedule::vqa_paper(),
        qismet_mathkit::derive_seed(seed, 0xa11),
    );
    let rec = run_tuning(
        &mut spsa,
        &mut app.objective,
        app.theta0.clone(),
        iterations,
        TuningScheme::Baseline,
    );
    assert_eq!(pooled.series.len(), rec.measured.len());
    for (i, (a, b)) in pooled.series.iter().zip(&rec.measured).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "iteration {i}: pooled {a} vs fresh {b}"
        );
    }
    assert_eq!(pooled.jobs, rec.jobs);
    assert_eq!(pooled.evals, rec.evals);

    // And a pooled rerun of the same spec (second hit on the shared
    // backend) stays bitwise identical.
    let again = qismet_bench::run_scheme(&spec, Scheme::Baseline, iterations, None, seed);
    for (a, b) in pooled.series.iter().zip(&again.series) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn threshold_percentiles_snap_to_the_named_presets_bitwise() {
    // QismetAt at the paper's named percentiles must run bit-identically
    // to the preset schemes; an off-grid percentile must actually differ
    // in configuration (different skip target -> at minimum a valid run).
    let app = AppSpec::by_id(1).unwrap();
    let (iterations, seed) = (25usize, 0x7715u64);
    for (pct, preset) in [
        (90u32, Scheme::Qismet),
        (99, Scheme::QismetConservative),
        (75, Scheme::QismetAggressive),
    ] {
        let at = qismet_bench::run_scheme(&app, Scheme::QismetAt(pct), iterations, None, seed);
        let named = qismet_bench::run_scheme(&app, preset, iterations, None, seed);
        assert_eq!(at.series.len(), named.series.len());
        for (a, b) in at.series.iter().zip(&named.series) {
            assert_eq!(a.to_bits(), b.to_bits(), "QismetAt({pct}) vs {preset:?}");
        }
        assert_eq!(at.final_energy.to_bits(), named.final_energy.to_bits());
        assert_eq!(at.skips, named.skips);
    }
    // Off-grid percentile: a valid run (series length may fall short of
    // the iteration grant — skips consume the job budget).
    let custom = qismet_bench::run_scheme(&app, Scheme::QismetAt(85), iterations, None, seed);
    assert!(!custom.series.is_empty() && custom.series.len() <= iterations);
    assert!(custom.final_energy.is_finite());
}

#[test]
fn threshold_axis_campaign_runs_through_every_executor_identically() {
    let grid = CampaignGrid {
        apps: vec![AppSpec::by_id(1).unwrap()],
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline],
        thresholds: vec![75, 90],
        magnitudes: vec![0.3],
        iterations: 22,
        trials: 2,
    };
    let campaign = grid.into_campaign("thr-engine", 0xf19);
    assert_eq!(campaign.len(), 3 * 2);
    let seq = SweepExecutor::sequential().run(&campaign);
    let par = SweepExecutor::with_threads(3).run(&campaign);
    assert_eq!(seq, par);
    // Expansion order: [Baseline t0, t1, QismetAt(75) t0, t1, QismetAt(90) t0, t1].
    assert_eq!(seq.records[2].scheme, "QISMET (75p)");
    // Threshold variants pair against the baseline (same seed per trial).
    assert_eq!(seq.records[0].seed, seq.records[2].seed);
    let t = seq.paired_scenario_test(0, 1, 500, 7);
    assert_eq!(t.pairs, 2);
    assert!(t.p_value > 0.0 && t.p_value <= 1.0);
}

#[test]
fn expansion_seeds_are_unique_within_campaign() {
    let campaign = small_campaign();
    let runs = campaign.expand();
    // The fixed-seed scenario aside, derived seeds must all be distinct.
    let derived: Vec<u64> = runs
        .iter()
        .filter(|r| r.scenario != 3)
        .map(|r| r.seed)
        .collect();
    let set: HashSet<u64> = derived.iter().copied().collect();
    assert_eq!(set.len(), derived.len(), "derived seed collision");
}

#[test]
fn generic_run_specs_matches_direct_map() {
    let specs: Vec<u64> = (0..40).collect();
    let f = |&x: &u64| qismet_mathkit::derive_seed(x, 3);
    let seq: Vec<u64> = specs.iter().map(f).collect();
    let par = SweepExecutor::with_threads(8).run_specs(&specs, f);
    assert_eq!(seq, par);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Derived per-run seeds are collision-free across any campaign grid
    // shape (scenarios x trials) and any campaign seed.
    #[test]
    fn derived_seeds_collision_free(
        campaign_seed in 0u64..u64::MAX,
        scenarios in 1usize..40,
        trials in 1usize..40,
    ) {
        let mut seen = HashSet::with_capacity(scenarios * trials);
        for s in 0..scenarios {
            for t in 0..trials {
                prop_assert!(
                    seen.insert(run_seed(campaign_seed, s, t)),
                    "collision at scenario {s}, trial {t} (campaign seed {campaign_seed})"
                );
            }
        }
    }

    // Grid expansion is total: every (app, machine, scheme, magnitude,
    // trial) combination appears exactly once. Schemes within one grid
    // cell share per-trial seeds (same-seed comparability), while distinct
    // (cell, trial) coordinates never collide.
    #[test]
    fn grid_expansion_is_total_and_cell_seeded(
        seed in 0u64..u64::MAX,
        n_apps in 1usize..3,
        n_machines in 1usize..4,
        n_mags in 1usize..3,
        trials in 1usize..4,
    ) {
        let apps: Vec<AppSpec> = (1..=n_apps as u8).map(|i| AppSpec::by_id(i).unwrap()).collect();
        let machines: Vec<Machine> = Machine::FIG13_SET[..n_machines].to_vec();
        let grid = CampaignGrid {
            apps,
            machines,
            schemes: vec![Scheme::Baseline, Scheme::Qismet],
            thresholds: Vec::new(),
            magnitudes: (0..n_mags).map(|i| 0.1 * (i + 1) as f64).collect(),
            iterations: 20,
            trials,
        };
        let campaign = grid.into_campaign("prop", seed);
        let runs = campaign.expand();
        let n_schemes = 2;
        prop_assert_eq!(runs.len(), n_apps * n_machines * n_schemes * n_mags * trials);
        // Within a cell, every scheme runs trial t at the same seed; across
        // cells and trials, seeds are distinct.
        let mut per_coord: HashSet<(usize, usize, u64)> = HashSet::new();
        for r in &runs {
            let cell = r.scenario / n_schemes;
            per_coord.insert((cell, r.trial, r.seed));
        }
        prop_assert_eq!(per_coord.len(), n_apps * n_machines * n_mags * trials);
        let distinct_seeds: HashSet<u64> = per_coord.iter().map(|&(_, _, s)| s).collect();
        prop_assert_eq!(distinct_seeds.len(), per_coord.len());
        // Indices are the identity permutation (stable output ordering).
        for (i, r) in runs.iter().enumerate() {
            prop_assert_eq!(r.index, i);
        }
    }
}

//! Integration tests for the transport-abstracted remote-worker subsystem:
//! a campaign fanned across TCP loopback workers (threaded or not, mixed
//! with local process workers or not) must produce reports byte-identical
//! to a sequential in-process run; token and fingerprint mismatches must be
//! rejected with typed errors; and a worker that disconnects mid-campaign
//! and never comes back must have its unfinished work re-dispatched to the
//! surviving workers without changing a single bit.
//!
//! Remote workers are real [`serve_campaign`] daemons on loopback listener
//! threads (the same loop `campaign --serve` enters); process workers are
//! the real `campaign` binary in `--worker` mode. Disconnects are injected
//! deterministically through the chaos seam: a [`FaultPlan`] with a
//! `Disconnect` fault makes a daemon drop each session after sending N
//! results.

use proptest::prelude::*;
use qismet_bench::{
    run_campaign_distributed, serve_campaign, Campaign, CampaignGrid, CampaignReport,
    DistributedOptions, Scheme, SweepExecutor, WorkerOptions,
};
use qismet_cluster::{
    ClusterError, Fault, FaultKind, FaultPlan, TcpTransportListener, WorkerLaunch,
};
use std::path::PathBuf;
use std::thread::JoinHandle;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_campaign");
const TOKEN: &str = "transport-suite-t0k3n";

/// A grid campaign and the exact `campaign` CLI flags that rebuild it in a
/// worker process (token and thread count included).
struct GridCase {
    campaign: Campaign,
    flags: Vec<String>,
}

fn grid_case(name: &str, seed: u64, app_ids: &[u8], trials: usize, iterations: usize) -> GridCase {
    let apps = app_ids
        .iter()
        .map(|&id| qismet_vqa::AppSpec::by_id(id).unwrap())
        .collect();
    let grid = CampaignGrid {
        apps,
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline, Scheme::Qismet],
        thresholds: Vec::new(),
        magnitudes: Vec::new(),
        iterations,
        trials,
    };
    let campaign = grid.into_campaign(name, seed);
    let flags: Vec<String> = [
        "--name",
        name,
        "--apps",
        &app_ids
            .iter()
            .map(u8::to_string)
            .collect::<Vec<_>>()
            .join(","),
        "--schemes",
        "baseline,qismet",
        "--iterations",
        &iterations.to_string(),
        "--trials",
        &trials.to_string(),
        "--seed",
        &seed.to_string(),
        "--token",
        TOKEN,
        "--worker",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    GridCase { campaign, flags }
}

fn launch(case: &GridCase) -> WorkerLaunch {
    WorkerLaunch::new(PathBuf::from(WORKER_BIN), case.flags.clone())
}

/// Starts an in-process serve daemon for `campaign` on a loopback port,
/// returning its address and join handle (the daemon exits after
/// `max_sessions` accepted sessions).
fn spawn_serve(
    campaign: &Campaign,
    mut opts: WorkerOptions,
    max_sessions: usize,
) -> (String, JoinHandle<usize>) {
    let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.socket_addr().unwrap().to_string();
    let campaign = campaign.clone();
    // The daemon exits after `max_sessions` accepted sessions (carried on
    // the fault plan) so the test thread can join it.
    let plan = opts.plan.get_or_insert_with(FaultPlan::new);
    plan.max_sessions = Some(max_sessions);
    let handle =
        std::thread::spawn(move || serve_campaign(&campaign, Box::new(listener), &opts).unwrap());
    (addr, handle)
}

fn worker_opts(threads: usize) -> WorkerOptions {
    WorkerOptions {
        token: TOKEN.into(),
        threads,
        ..WorkerOptions::default()
    }
}

/// A plan that drops every session after it has sent `after_dones` results
/// (the chaos-seam equivalent of the old `drop_after` hook).
fn drop_plan(after_dones: usize) -> FaultPlan {
    FaultPlan {
        faults: vec![Fault {
            worker: None,
            after_dones,
            kind: FaultKind::Disconnect,
        }],
        max_sessions: None,
    }
}

fn remote_opts(connect: Vec<String>) -> DistributedOptions {
    DistributedOptions {
        workers: 0,
        connect,
        token: TOKEN.into(),
        ..DistributedOptions::default()
    }
}

fn assert_reports_bitwise_equal(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a, b);
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.final_energy.to_bits(), y.final_energy.to_bits());
        assert_eq!(x.series.len(), y.series.len());
        for (u, v) in x.series.iter().zip(y.series.iter()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
    // The strongest form of the acceptance criterion: identical artifacts.
    assert_eq!(
        serde_json::to_string_pretty(a).unwrap(),
        serde_json::to_string_pretty(b).unwrap()
    );
}

#[test]
fn two_tcp_workers_one_threaded_match_sequential_bitwise() {
    let case = grid_case("net-bitwise", 42, &[1, 2], 2, 25);
    let sequential = SweepExecutor::sequential().run(&case.campaign);

    let (addr_a, serve_a) = spawn_serve(&case.campaign, worker_opts(1), 1);
    let (addr_b, serve_b) = spawn_serve(&case.campaign, worker_opts(2), 1);
    let (remote, stats) =
        run_campaign_distributed(&case.campaign, None, &remote_opts(vec![addr_a, addr_b])).unwrap();
    assert_eq!(serve_a.join().unwrap(), 1);
    assert_eq!(serve_b.join().unwrap(), 1);

    assert_eq!(stats.executed, case.campaign.len());
    assert_eq!(stats.respawns, 0);
    assert_eq!(stats.lost_workers, 0);
    assert_reports_bitwise_equal(&sequential, &remote);
}

#[test]
fn token_mismatch_is_rejected_and_the_daemon_survives() {
    let case = grid_case("net-token", 11, &[1], 1, 22);
    let (addr, serve) = spawn_serve(&case.campaign, worker_opts(1), 2);

    // Wrong token: the daemon answers Reject and keeps listening.
    let mut bad = remote_opts(vec![addr.clone()]);
    bad.token = "wrong-token".into();
    bad.max_respawns = 0;
    let err = run_campaign_distributed(&case.campaign, None, &bad).unwrap_err();
    assert!(
        matches!(err, ClusterError::Rejected { .. }),
        "unexpected error: {err}"
    );

    // Same daemon, right token: the campaign completes byte-identically.
    let (report, _) =
        run_campaign_distributed(&case.campaign, None, &remote_opts(vec![addr])).unwrap();
    assert_eq!(serve.join().unwrap(), 2);
    assert_reports_bitwise_equal(&SweepExecutor::sequential().run(&case.campaign), &report);
}

#[test]
fn fingerprint_mismatch_is_rejected_at_handshake() {
    let case = grid_case("net-fp", 21, &[1], 1, 22);
    // A daemon serving a different campaign (different master seed).
    let other = grid_case("net-fp", 22, &[1], 1, 22);
    let (addr, serve) = spawn_serve(&other.campaign, worker_opts(1), 1);

    let mut opts = remote_opts(vec![addr]);
    opts.max_respawns = 0;
    let err = run_campaign_distributed(&case.campaign, None, &opts).unwrap_err();
    assert!(
        matches!(err, ClusterError::FingerprintMismatch { .. }),
        "unexpected error: {err}"
    );
    serve.join().unwrap();
}

#[test]
fn mid_campaign_disconnect_redispatches_to_the_surviving_worker() {
    let case = grid_case("net-redispatch", 7, &[1], 3, 22);
    assert_eq!(case.campaign.len(), 6);
    let sequential = SweepExecutor::sequential().run(&case.campaign);

    // Worker A serves one run, drops the session, and (max_sessions = 1)
    // refuses to come back; with a zero reconnect budget its slot is lost
    // immediately and worker B must absorb A's unfinished share.
    let mut dropping = worker_opts(1);
    dropping.plan = Some(drop_plan(1));
    let (addr_a, serve_a) = spawn_serve(&case.campaign, dropping, 1);
    let (addr_b, serve_b) = spawn_serve(&case.campaign, worker_opts(1), 1);

    let mut opts = remote_opts(vec![addr_a, addr_b]);
    opts.max_respawns = 0;
    let (report, stats) = run_campaign_distributed(&case.campaign, None, &opts).unwrap();
    assert_eq!(serve_a.join().unwrap(), 1);
    assert_eq!(serve_b.join().unwrap(), 1);

    assert_eq!(stats.lost_workers, 1, "worker A must be declared lost");
    assert_eq!(stats.executed, case.campaign.len());
    assert_reports_bitwise_equal(&sequential, &report);
}

#[test]
fn dropped_sessions_reconnect_through_the_whole_campaign() {
    let case = grid_case("net-reconnect", 0x5eed, &[1], 2, 22);
    let total = case.campaign.len();
    assert_eq!(total, 4);
    let sequential = SweepExecutor::sequential().run(&case.campaign);

    // The daemon drops every session after 1 result; the coordinator must
    // reconnect its way through the whole campaign on this single worker
    // (one session per run — the final session's drop goes unobserved).
    let mut dropping = worker_opts(1);
    dropping.plan = Some(drop_plan(1));
    let (addr, serve) = spawn_serve(&case.campaign, dropping, total);

    let mut opts = remote_opts(vec![addr]);
    opts.max_respawns = total;
    let (report, stats) = run_campaign_distributed(&case.campaign, None, &opts).unwrap();
    assert_eq!(serve.join().unwrap(), total);
    assert_eq!(
        stats.respawns,
        total - 1,
        "every further run costs a reconnect"
    );
    assert_eq!(stats.lost_workers, 0);
    assert_reports_bitwise_equal(&sequential, &report);
}

#[test]
fn remote_workers_with_inner_threads_match_sequential_bitwise() {
    // The `--inner-threads` axis: remote workers that split every
    // statevector sweep across in-state kernel threads must still be
    // byte-identical to a plain sequential in-process run — the threaded
    // apply/expectation kernels are exact, not approximately equal.
    let case = grid_case("net-inner", 0x1717, &[1, 2], 2, 22);
    let sequential = SweepExecutor::sequential().run(&case.campaign);

    let mut inner_a = worker_opts(1);
    inner_a.inner_threads = 2;
    let mut inner_b = worker_opts(2);
    inner_b.inner_threads = 3;
    let (addr_a, serve_a) = spawn_serve(&case.campaign, inner_a, 1);
    let (addr_b, serve_b) = spawn_serve(&case.campaign, inner_b, 1);
    let (remote, stats) =
        run_campaign_distributed(&case.campaign, None, &remote_opts(vec![addr_a, addr_b])).unwrap();
    assert_eq!(serve_a.join().unwrap(), 1);
    assert_eq!(serve_b.join().unwrap(), 1);

    assert_eq!(stats.executed, case.campaign.len());
    assert_eq!(stats.lost_workers, 0);
    assert_reports_bitwise_equal(&sequential, &remote);
}

#[test]
fn stdio_threaded_workers_match_sequential_bitwise() {
    // Hybrid threads x processes over the original stdio transport: two
    // local worker processes, each running batches on 2 executor threads.
    let case = grid_case("net-hybrid-stdio", 0xab, &[1, 2], 2, 22);
    let mut launch = launch(&case);
    launch
        .args
        .insert(launch.args.len() - 1, "--threads".into());
    launch.args.insert(launch.args.len() - 1, "2".to_string());
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch),
        &DistributedOptions {
            workers: 2,
            token: TOKEN.into(),
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.executed, case.campaign.len());
    assert_reports_bitwise_equal(&SweepExecutor::sequential().run(&case.campaign), &report);
}

#[test]
fn mixed_local_and_remote_workers_match_sequential_bitwise() {
    let case = grid_case("net-mixed", 0xc4fe, &[1], 3, 22);
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    let (addr, serve) = spawn_serve(&case.campaign, worker_opts(2), 1);
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(launch(&case)),
        &DistributedOptions {
            workers: 1,
            connect: vec![addr],
            token: TOKEN.into(),
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    serve.join().unwrap();
    assert_eq!(stats.executed, case.campaign.len());
    assert_eq!(stats.lost_workers, 0);
    assert_reports_bitwise_equal(&sequential, &report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // For random small campaigns, sequential execution and a threaded TCP
    // remote worker produce bitwise-identical reports.
    #[test]
    fn random_grids_agree_between_sequential_and_threaded_tcp(
        seed in 0u64..u64::MAX,
        n_apps in 1usize..3,
        trials in 1usize..3,
        threads in 1usize..4,
    ) {
        let app_ids: Vec<u8> = (1..=n_apps as u8).collect();
        let case = grid_case("net-prop", seed, &app_ids, trials, 20);
        let sequential = SweepExecutor::sequential().run(&case.campaign);
        let (addr, serve) = spawn_serve(&case.campaign, worker_opts(threads), 1);
        let (remote, _) =
            run_campaign_distributed(&case.campaign, None, &remote_opts(vec![addr])).unwrap();
        serve.join().unwrap();
        assert_reports_bitwise_equal(&sequential, &remote);
    }
}

//! Chaos suite for the hardened distributed executor: seeded
//! [`FaultPlan`]s injected into real `campaign --worker` processes (via the
//! hidden `--chaos-json` flag) must never change a byte of the merged
//! report — every run either completes bit-identical to sequential
//! execution or fails with a *typed* terminal error, and never hangs.
//!
//! Covered fault kinds: `Hang` (recovered via the assign deadline and
//! re-dispatch), `SlowFrames` (tolerated, no respawn), `TruncateFrame` /
//! `CorruptFrame` (survived via respawn), `CrashProcess` (the plan-seam
//! successor of the `QISMET_CLUSTER_EXIT_AFTER` hook), and `PoisonSpec`
//! (isolated as `ClusterError::PoisonedSpecs` without exhausting the
//! respawn budget, then finished by a plan-free resume). The closing
//! proptest throws fully random seeded plans at random grids.

use proptest::prelude::*;
use qismet_bench::{
    run_campaign_distributed, Campaign, CampaignGrid, CampaignReport, DistributedOptions, Scheme,
    SweepExecutor,
};
use qismet_cluster::{load_journal, ClusterError, Fault, FaultKind, FaultPlan, WorkerLaunch};
use qismet_vqa::AppSpec;
use std::path::PathBuf;
use std::time::Duration;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_campaign");

/// A grid campaign and the exact `campaign` CLI flags that rebuild it.
struct GridCase {
    campaign: Campaign,
    flags: Vec<String>,
}

fn grid_case(name: &str, seed: u64, trials: usize, iterations: usize) -> GridCase {
    let grid = CampaignGrid {
        apps: vec![AppSpec::by_id(1).unwrap()],
        machines: Vec::new(),
        schemes: vec![Scheme::Baseline, Scheme::Qismet],
        thresholds: Vec::new(),
        magnitudes: Vec::new(),
        iterations,
        trials,
    };
    let campaign = grid.into_campaign(name, seed);
    let flags: Vec<String> = [
        "--name",
        name,
        "--apps",
        "1",
        "--schemes",
        "baseline,qismet",
        "--iterations",
        &iterations.to_string(),
        "--trials",
        &trials.to_string(),
        "--seed",
        &seed.to_string(),
        // A fast heartbeat so slow-but-alive workers always outpace the
        // tight assign deadlines these tests use.
        "--heartbeat",
        "0.1",
        "--worker",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    GridCase { campaign, flags }
}

/// Launches the real worker binary with `plan` injected beneath its
/// transport — the same path `campaign --chaos-plan`/`--chaos-seed` uses.
fn chaotic_launch(case: &GridCase, plan: &FaultPlan) -> WorkerLaunch {
    let mut flags = case.flags.clone();
    flags.push("--chaos-json".into());
    flags.push(plan.to_json());
    WorkerLaunch::new(PathBuf::from(WORKER_BIN), flags)
}

fn clean_launch(case: &GridCase) -> WorkerLaunch {
    WorkerLaunch::new(PathBuf::from(WORKER_BIN), case.flags.clone())
}

fn everywhere(after_dones: usize, kind: FaultKind) -> FaultPlan {
    FaultPlan {
        faults: vec![Fault {
            worker: None,
            after_dones,
            kind,
        }],
        max_sessions: None,
    }
}

fn assert_reports_bitwise_equal(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string_pretty(a).unwrap(),
        serde_json::to_string_pretty(b).unwrap()
    );
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qismet-chaos-test-{tag}-{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn hung_worker_hits_the_deadline_and_redispatch_keeps_the_report_identical() {
    // The only worker goes silent after every 2 results. Each hang is
    // detected by the 1 s assign deadline (the process is alive, so only a
    // deadline can see it), the held spec is re-dispatched, and the
    // respawned process carries on: 6 specs at 2 per session = exactly 2
    // deadline-driven respawns, and not a byte of drift.
    let case = grid_case("chaos-hang", 41, 3, 22);
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(chaotic_launch(&case, &everywhere(2, FaultKind::Hang))),
        &DistributedOptions {
            workers: 1,
            assign_timeout: Some(Duration::from_secs(1)),
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.executed, case.campaign.len());
    assert_eq!(stats.respawns, 2, "one respawn per mid-campaign hang");
    assert_eq!(stats.lost_workers, 0);
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    assert_reports_bitwise_equal(&sequential, &report);
}

#[test]
fn slow_frames_straggler_is_tolerated_without_any_respawn() {
    // 25 ms of injected latency per frame is a straggler, not a failure:
    // well under the 500 ms deadline, so the session must ride it out.
    let case = grid_case("chaos-slow", 43, 2, 22);
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(chaotic_launch(
            &case,
            &everywhere(1, FaultKind::SlowFrames(25)),
        )),
        &DistributedOptions {
            workers: 1,
            assign_timeout: Some(Duration::from_millis(500)),
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.respawns, 0, "slowness must not be treated as loss");
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    assert_reports_bitwise_equal(&sequential, &report);
}

#[test]
fn truncated_and_corrupted_frames_are_survived_by_respawn() {
    for (tag, kind) in [
        ("truncate", FaultKind::TruncateFrame),
        ("corrupt", FaultKind::CorruptFrame),
    ] {
        // After each session's first result the next frame arrives mangled
        // and the channel dies; the coordinator must classify that as a
        // channel loss (never accept garbage as data) and respawn.
        let case = grid_case(&format!("chaos-{tag}"), 47, 2, 22);
        let (report, stats) = run_campaign_distributed(
            &case.campaign,
            Some(chaotic_launch(&case, &everywhere(1, kind))),
            &DistributedOptions {
                workers: 1,
                max_respawns: 6,
                ..DistributedOptions::default()
            },
        )
        .unwrap();
        assert!(
            stats.respawns >= 1,
            "{tag}: the mangled frame must have cost at least one session"
        );
        let sequential = SweepExecutor::sequential().run(&case.campaign);
        assert_reports_bitwise_equal(&sequential, &report);
    }
}

#[test]
fn crash_process_plan_replaces_the_exit_after_hook_bit_for_bit() {
    // The plan-seam successor of QISMET_CLUSTER_EXIT_AFTER=1: every worker
    // process exits(17) after one result, all campaign long.
    let case = grid_case("chaos-crash", 53, 3, 22);
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(chaotic_launch(
            &case,
            &everywhere(1, FaultKind::CrashProcess),
        )),
        &DistributedOptions {
            workers: 2,
            max_respawns: 16,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert!(stats.respawns >= 1, "crashes must have forced respawns");
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    assert_reports_bitwise_equal(&sequential, &report);
}

#[test]
fn poison_spec_is_isolated_without_exhausting_respawns_and_resume_completes() {
    let case = grid_case("chaos-poison", 59, 3, 22);
    let total = case.campaign.len();
    assert_eq!(total, 6);
    let journal_path = temp_journal("poison");
    let _ = std::fs::remove_file(&journal_path);

    // Both workers die instantly whenever spec 3 is assigned. The first
    // death re-dispatches it as a suspect singleton; two precisely
    // attributed strikes poison it. Blamed crashes don't charge the
    // respawn budget, so max_respawns=2 must survive the whole dance and
    // every other spec must complete and journal.
    let poison = everywhere(0, FaultKind::PoisonSpec(3));
    let err = run_campaign_distributed(
        &case.campaign,
        Some(chaotic_launch(&case, &poison)),
        &DistributedOptions {
            workers: 2,
            max_respawns: 2,
            checkpoint: Some(journal_path.clone()),
            ..DistributedOptions::default()
        },
    )
    .unwrap_err();
    match err {
        ClusterError::PoisonedSpecs { indices, completed } => {
            assert_eq!(indices, vec![3]);
            assert_eq!(completed, total - 1);
        }
        other => panic!("expected PoisonedSpecs, got {other}"),
    }
    let loaded = load_journal(&journal_path, case.campaign.fingerprint()).unwrap();
    assert_eq!(loaded.entries.len(), total - 1);

    // Fault fixed (no plan): resuming re-runs only the poisoned spec and
    // lands on the sequential bytes.
    let (report, stats) = run_campaign_distributed(
        &case.campaign,
        Some(clean_launch(&case)),
        &DistributedOptions {
            workers: 1,
            checkpoint: Some(journal_path.clone()),
            resume: true,
            ..DistributedOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.resumed, total - 1);
    assert_eq!(stats.executed, 1);
    let sequential = SweepExecutor::sequential().run(&case.campaign);
    assert_reports_bitwise_equal(&sequential, &report);

    std::fs::remove_file(&journal_path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // The chaos contract, stated over *random* plans and grids: whatever
    // the injected fault sequence, the campaign either completes with a
    // report bit-identical to sequential execution or fails with one of
    // the typed terminal errors — never a hang (the assign deadline bounds
    // every wait), never silently wrong bytes.
    #[test]
    fn random_fault_plans_yield_identical_bytes_or_typed_errors(
        seed in 0u64..u64::MAX,
        chaos_seed in 0u64..u64::MAX,
        trials in 1usize..3,
    ) {
        let case = grid_case("chaos-prop", seed, trials, 20);
        let plan = FaultPlan::random(chaos_seed, 2, case.campaign.len());
        let result = run_campaign_distributed(
            &case.campaign,
            Some(chaotic_launch(&case, &plan)),
            &DistributedOptions {
                workers: 2,
                max_respawns: 6,
                assign_timeout: Some(Duration::from_secs(1)),
                speculative: true,
                quarantine_after: Some(8),
                ..DistributedOptions::default()
            },
        );
        match result {
            Ok((report, _)) => {
                let sequential = SweepExecutor::sequential().run(&case.campaign);
                assert_reports_bitwise_equal(&sequential, &report);
            }
            Err(
                ClusterError::WorkerLost { .. }
                | ClusterError::WorkerQuarantined { .. }
                | ClusterError::PoisonedSpecs { .. },
            ) => {}
            Err(other) => panic!("untyped terminal error under plan {}: {other}", plan.to_json()),
        }
    }
}

//! Two-level-system (TLS) defect fluctuators.
//!
//! Section 3.1 of the paper attributes the dominant transient T1
//! fluctuations of transmon qubits to TLS defects that drift in and out of
//! resonance. We model each defect as a random telegraph process: a two-state
//! continuous-time Markov chain whose "active" state adds an extra relaxation
//! rate to the qubit (suppressing T1), exactly the phenomenology of Fig. 3
//! (long quiet stretches punctuated by deep dips).

use qismet_mathkit::exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One telegraph fluctuator coupled to a qubit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fluctuator {
    /// Rate (per hour) of switching from dormant to active.
    pub activation_rate: f64,
    /// Rate (per hour) of switching from active back to dormant.
    pub relaxation_rate: f64,
    /// Extra qubit relaxation rate (per microsecond) while active, i.e. the
    /// added `1/T1` contribution.
    pub coupling_strength: f64,
}

impl Fluctuator {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.activation_rate <= 0.0 {
            return Err("activation_rate must be positive".into());
        }
        if self.relaxation_rate <= 0.0 {
            return Err("relaxation_rate must be positive".into());
        }
        if self.coupling_strength < 0.0 {
            return Err("coupling_strength must be non-negative".into());
        }
        Ok(())
    }

    /// Long-run fraction of time the fluctuator is active.
    pub fn duty_cycle(&self) -> f64 {
        self.activation_rate / (self.activation_rate + self.relaxation_rate)
    }
}

/// The dynamic state of one fluctuator during trace generation.
#[derive(Debug, Clone, Copy)]
struct FluctuatorState {
    active: bool,
    /// Hours until the next state toggle.
    time_to_toggle: f64,
}

/// A bank of fluctuators coupled to one qubit, producing a T1(t) process.
///
/// # Examples
///
/// ```
/// use qismet_qnoise::{Fluctuator, TlsBank};
/// use qismet_mathkit::rng_from_seed;
///
/// let bank = TlsBank::new(
///     100.0,
///     vec![Fluctuator {
///         activation_rate: 0.05,
///         relaxation_rate: 1.0,
///         coupling_strength: 0.05,
///     }],
/// )
/// .unwrap();
/// let mut rng = rng_from_seed(1);
/// let trace = bank.sample_t1_trace(&mut rng, 65.0, 0.25);
/// assert_eq!(trace.len(), 260);
/// assert!(trace.iter().all(|&t1| t1 > 0.0 && t1 <= 100.0 + 1e-9));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TlsBank {
    /// Baseline T1 in microseconds with no fluctuator active.
    base_t1_us: f64,
    fluctuators: Vec<Fluctuator>,
}

impl TlsBank {
    /// Creates a bank.
    ///
    /// # Errors
    ///
    /// Returns a message if the base T1 is non-positive or any fluctuator is
    /// invalid.
    pub fn new(base_t1_us: f64, fluctuators: Vec<Fluctuator>) -> Result<Self, String> {
        if base_t1_us <= 0.0 {
            return Err("base_t1_us must be positive".into());
        }
        for f in &fluctuators {
            f.validate()?;
        }
        Ok(TlsBank {
            base_t1_us,
            fluctuators,
        })
    }

    /// Baseline T1 (microseconds).
    pub fn base_t1_us(&self) -> f64 {
        self.base_t1_us
    }

    /// The fluctuators.
    pub fn fluctuators(&self) -> &[Fluctuator] {
        &self.fluctuators
    }

    /// Samples the T1 process at fixed intervals.
    ///
    /// * `duration_hours` — total span (e.g. 65 h for Fig. 3).
    /// * `dt_hours` — sampling interval.
    ///
    /// Returns T1 in microseconds at each sample time.
    pub fn sample_t1_trace<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        duration_hours: f64,
        dt_hours: f64,
    ) -> Vec<f64> {
        assert!(dt_hours > 0.0 && duration_hours > 0.0, "positive spans");
        let steps = (duration_hours / dt_hours).round() as usize;
        let mut states: Vec<FluctuatorState> = self
            .fluctuators
            .iter()
            .map(|f| {
                // Start from the stationary distribution.
                let active = rng.gen::<f64>() < f.duty_cycle();
                let rate = if active {
                    f.relaxation_rate
                } else {
                    f.activation_rate
                };
                FluctuatorState {
                    active,
                    time_to_toggle: exponential(rng, rate),
                }
            })
            .collect();
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            // Advance each fluctuator by dt, toggling as needed.
            for (state, f) in states.iter_mut().zip(self.fluctuators.iter()) {
                let mut remaining = dt_hours;
                while state.time_to_toggle <= remaining {
                    remaining -= state.time_to_toggle;
                    state.active = !state.active;
                    let rate = if state.active {
                        f.relaxation_rate
                    } else {
                        f.activation_rate
                    };
                    state.time_to_toggle = exponential(rng, rate);
                }
                state.time_to_toggle -= remaining;
            }
            out.push(self.t1_of_states(&states));
        }
        out
    }

    fn t1_of_states(&self, states: &[FluctuatorState]) -> f64 {
        let base_rate = 1.0 / self.base_t1_us;
        let extra: f64 = states
            .iter()
            .zip(self.fluctuators.iter())
            .filter(|(s, _)| s.active)
            .map(|(_, f)| f.coupling_strength)
            .sum();
        1.0 / (base_rate + extra)
    }

    /// A Fig. 3-style bank: one strong rare defect producing deep dips plus
    /// a couple of weak frequent wigglers.
    pub fn figure3_bank(base_t1_us: f64) -> Self {
        TlsBank::new(
            base_t1_us,
            vec![
                // Strong, rare: deep outlier dips.
                Fluctuator {
                    activation_rate: 0.04,
                    relaxation_rate: 1.2,
                    coupling_strength: 3.0 / base_t1_us,
                },
                // Moderate occasional.
                Fluctuator {
                    activation_rate: 0.15,
                    relaxation_rate: 2.0,
                    coupling_strength: 0.8 / base_t1_us,
                },
                // Weak frequent jitter.
                Fluctuator {
                    activation_rate: 2.0,
                    relaxation_rate: 4.0,
                    coupling_strength: 0.15 / base_t1_us,
                },
            ],
        )
        .expect("hand-tuned parameters are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::{mean, min, rng_from_seed};

    #[test]
    fn duty_cycle_formula() {
        let f = Fluctuator {
            activation_rate: 1.0,
            relaxation_rate: 3.0,
            coupling_strength: 0.1,
        };
        assert!((f.duty_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(TlsBank::new(0.0, vec![]).is_err());
        let bad = Fluctuator {
            activation_rate: 0.0,
            relaxation_rate: 1.0,
            coupling_strength: 0.1,
        };
        assert!(TlsBank::new(100.0, vec![bad]).is_err());
    }

    #[test]
    fn trace_without_fluctuators_is_constant() {
        let bank = TlsBank::new(80.0, vec![]).unwrap();
        let mut rng = rng_from_seed(2);
        let trace = bank.sample_t1_trace(&mut rng, 10.0, 0.5);
        assert!(trace.iter().all(|&t| (t - 80.0).abs() < 1e-12));
    }

    #[test]
    fn active_fluctuator_suppresses_t1() {
        // A fluctuator that is essentially always active.
        let bank = TlsBank::new(
            100.0,
            vec![Fluctuator {
                activation_rate: 1000.0,
                relaxation_rate: 0.001,
                coupling_strength: 0.09, // adds 9x the base rate
            }],
        )
        .unwrap();
        let mut rng = rng_from_seed(3);
        let trace = bank.sample_t1_trace(&mut rng, 20.0, 0.5);
        // 1 / (0.01 + 0.09) = 10 us.
        assert!(mean(&trace) < 15.0, "mean {}", mean(&trace));
    }

    #[test]
    fn figure3_bank_shows_rare_deep_dips() {
        let bank = TlsBank::figure3_bank(90.0);
        let mut rng = rng_from_seed(42);
        let trace = bank.sample_t1_trace(&mut rng, 65.0, 0.1);
        let m = mean(&trace);
        let lo = min(&trace);
        // Most of the time near base, occasional dips well below half.
        assert!(m > 50.0, "mean {m}");
        assert!(lo < 40.0, "min {lo}");
        // Dips are the exception, not the norm (paper: "impactful transients
        // are an exception rather than the norm").
        let dip_fraction =
            trace.iter().filter(|&&t| t < 0.5 * 90.0).count() as f64 / trace.len() as f64;
        assert!(dip_fraction < 0.35, "dip fraction {dip_fraction}");
    }

    #[test]
    fn stationary_duty_cycle_observed() {
        let f = Fluctuator {
            activation_rate: 1.0,
            relaxation_rate: 1.0,
            coupling_strength: 0.05,
        };
        let bank = TlsBank::new(100.0, vec![f]).unwrap();
        let mut rng = rng_from_seed(7);
        let trace = bank.sample_t1_trace(&mut rng, 4000.0, 0.5);
        // With 50% duty cycle, about half the samples should be suppressed.
        let suppressed = trace.iter().filter(|&&t| t < 30.0).count() as f64;
        let frac = suppressed / trace.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "suppressed fraction {frac}");
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let bank = TlsBank::figure3_bank(90.0);
        let a = bank.sample_t1_trace(&mut rng_from_seed(5), 10.0, 0.25);
        let b = bank.sample_t1_trace(&mut rng_from_seed(5), 10.0, 0.25);
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let bank = TlsBank::figure3_bank(75.0);
        let json = serde_json::to_string(&bank).unwrap();
        let back: TlsBank = serde_json::from_str(&json).unwrap();
        assert_eq!(bank, back);
    }
}

//! Synthetic device profiles standing in for the paper's IBMQ machines.
//!
//! The paper runs on IBM Quantum systems (Guadalupe, Toronto, Sydney,
//! Casablanca, Jakarta, Mumbai) and generates simulation traces from four of
//! them (Guadalupe, Toronto, Cairo, Casablanca). Those devices and their
//! calibration archives are not available here, so each profile below is a
//! **synthetic stand-in**: a static noise model plus a transient model and a
//! TLS bank, parameterized distinctly per machine so the cross-machine
//! spread of Fig. 13 and the per-machine behaviors of Figs. 5, 11, 12 are
//! exercised. The substitution is documented in DESIGN.md.

use crate::static_model::StaticNoiseModel;
use crate::tls::TlsBank;
use crate::transient::TransientModel;
use serde::{Deserialize, Serialize};

/// The machines referenced in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// 16-qubit Falcon, moderate noise, recurring moderate transient phases
    /// (Fig. 11 behavior).
    Guadalupe,
    /// 27-qubit Falcon, noisier gates, moderate transients.
    Toronto,
    /// 27-qubit Falcon, smooth baseline with one sharp transient phase
    /// (Fig. 12 behavior).
    Sydney,
    /// 7-qubit Falcon, small and comparatively quiet.
    Casablanca,
    /// 7-qubit Falcon, severe transient spikes (Fig. 5 behavior).
    Jakarta,
    /// 27-qubit Falcon, mid-tier everything.
    Mumbai,
    /// 27-qubit Falcon, noisy with strong TLS activity; used for trace
    /// generation (Table 1 App5).
    Cairo,
}

impl Machine {
    /// Every machine profile, in declaration order. Canonical list for CLI
    /// parsing and exhaustive sweeps; update alongside the enum.
    pub const ALL: [Machine; 7] = [
        Machine::Guadalupe,
        Machine::Toronto,
        Machine::Sydney,
        Machine::Casablanca,
        Machine::Jakarta,
        Machine::Mumbai,
        Machine::Cairo,
    ];

    /// All machines used in real-machine comparisons (Fig. 13 order).
    pub const FIG13_SET: [Machine; 6] = [
        Machine::Guadalupe,
        Machine::Toronto,
        Machine::Sydney,
        Machine::Casablanca,
        Machine::Jakarta,
        Machine::Mumbai,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Machine::Guadalupe => "Guadalupe",
            Machine::Toronto => "Toronto",
            Machine::Sydney => "Sydney",
            Machine::Casablanca => "Casablanca",
            Machine::Jakarta => "Jakarta",
            Machine::Mumbai => "Mumbai",
            Machine::Cairo => "Cairo",
        }
    }

    /// Physical qubit count of the IBMQ namesake.
    pub fn device_qubits(self) -> usize {
        match self {
            Machine::Guadalupe => 16,
            Machine::Casablanca | Machine::Jakarta => 7,
            _ => 27,
        }
    }

    /// Deterministic per-machine seed stream label.
    pub fn seed_stream(self) -> u64 {
        match self {
            Machine::Guadalupe => 0x47,
            Machine::Toronto => 0x54,
            Machine::Sydney => 0x53,
            Machine::Casablanca => 0x43,
            Machine::Jakarta => 0x4a,
            Machine::Mumbai => 0x4d,
            Machine::Cairo => 0x41,
        }
    }

    /// The static (calibration-cycle) noise model restricted to the
    /// `n_qubits` the application uses.
    pub fn static_model(self, n_qubits: usize) -> StaticNoiseModel {
        let (t1, t2, e1, e2, ro) = match self {
            Machine::Guadalupe => (105.0, 95.0, 3.2e-4, 9.0e-3, 0.020),
            Machine::Toronto => (90.0, 75.0, 4.5e-4, 1.3e-2, 0.035),
            Machine::Sydney => (110.0, 90.0, 3.0e-4, 1.0e-2, 0.028),
            Machine::Casablanca => (120.0, 100.0, 2.6e-4, 8.0e-3, 0.022),
            Machine::Jakarta => (95.0, 60.0, 3.8e-4, 1.1e-2, 0.030),
            Machine::Mumbai => (115.0, 100.0, 3.1e-4, 9.5e-3, 0.024),
            Machine::Cairo => (85.0, 65.0, 5.0e-4, 1.5e-2, 0.038),
        };
        StaticNoiseModel::uniform(n_qubits, t1, t2, e1, e2, ro)
    }

    /// The machine's transient process at its native intensity.
    ///
    /// `magnitude` is the characteristic burst amplitude as a fraction of
    /// the objective magnitude; machines scale and shape it differently.
    pub fn transient_model(self, magnitude: f64) -> TransientModel {
        match self {
            // Recurring moderate phases.
            Machine::Guadalupe => TransientModel {
                burst_rate: 0.030,
                ..TransientModel::moderate(magnitude)
            },
            Machine::Toronto => TransientModel::moderate(magnitude * 1.15),
            // Smooth with one sharp phase: rare but strong.
            Machine::Sydney => TransientModel::calm(magnitude * 1.5),
            Machine::Casablanca => TransientModel::calm(magnitude * 0.9),
            // Fig. 5: multiple sharp spikes.
            Machine::Jakarta => TransientModel::severe(magnitude * 1.2),
            Machine::Mumbai => TransientModel::moderate(magnitude * 0.95),
            Machine::Cairo => TransientModel::severe(magnitude * 1.3),
        }
    }

    /// Native transient intensity used when the caller does not sweep the
    /// magnitude explicitly (fractions of objective magnitude).
    ///
    /// Calibrated so the per-machine baseline degradation and QISMET
    /// improvement land in the paper's observed bands (Figs. 13/17);
    /// machines the paper describes as turbulent (Jakarta Fig. 5, Cairo
    /// traces) sit at the high end.
    pub fn native_transient_magnitude(self) -> f64 {
        match self {
            Machine::Guadalupe => 0.45,
            Machine::Toronto => 0.50,
            Machine::Sydney => 0.45,
            Machine::Casablanca => 0.30,
            Machine::Jakarta => 0.60,
            Machine::Mumbai => 0.40,
            Machine::Cairo => 0.65,
        }
    }

    /// TLS fluctuator bank for T1-trace generation (Figs. 3-4).
    pub fn tls_bank(self) -> TlsBank {
        let base_t1 = self.static_model(1).qubits[0].t1_us;
        match self {
            Machine::Cairo | Machine::Jakarta => {
                // Stronger TLS activity: add an extra moderate defect.
                let mut fl = TlsBank::figure3_bank(base_t1).fluctuators().to_vec();
                fl.push(crate::tls::Fluctuator {
                    activation_rate: 0.3,
                    relaxation_rate: 1.5,
                    coupling_strength: 1.2 / base_t1,
                });
                TlsBank::new(base_t1, fl).expect("valid parameters")
            }
            _ => TlsBank::figure3_bank(base_t1),
        }
    }
}

impl std::fmt::Display for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::{derive_seed, rng_from_seed};

    #[test]
    fn all_machines_have_distinct_parameters() {
        let models: Vec<StaticNoiseModel> = Machine::FIG13_SET
            .iter()
            .map(|m| m.static_model(6))
            .collect();
        for i in 0..models.len() {
            for j in (i + 1)..models.len() {
                assert_ne!(models[i], models[j], "machines {i} and {j} identical");
            }
        }
    }

    #[test]
    fn names_and_widths() {
        assert_eq!(Machine::Guadalupe.name(), "Guadalupe");
        assert_eq!(Machine::Jakarta.device_qubits(), 7);
        assert_eq!(Machine::Toronto.device_qubits(), 27);
        assert_eq!(Machine::Sydney.to_string(), "Sydney");
    }

    #[test]
    fn seed_streams_distinct() {
        let mut seen = std::collections::HashSet::new();
        for m in Machine::FIG13_SET {
            assert!(seen.insert(m.seed_stream()));
        }
    }

    #[test]
    fn jakarta_is_more_transient_than_casablanca() {
        let seed = derive_seed(1234, 0);
        let jak = Machine::Jakarta
            .transient_model(Machine::Jakarta.native_transient_magnitude())
            .generate(&mut rng_from_seed(seed), 20_000);
        let cas = Machine::Casablanca
            .transient_model(Machine::Casablanca.native_transient_magnitude())
            .generate(&mut rng_from_seed(seed), 20_000);
        assert!(
            jak.exceedance_fraction(0.1) > 2.0 * cas.exceedance_fraction(0.1),
            "jakarta {} vs casablanca {}",
            jak.exceedance_fraction(0.1),
            cas.exceedance_fraction(0.1)
        );
    }

    #[test]
    fn cairo_noisiest_static_floor() {
        let cairo = Machine::Cairo.static_model(6);
        let casa = Machine::Casablanca.static_model(6);
        assert!(cairo.gate_error_2q > casa.gate_error_2q);
        assert!(cairo.qubits[0].t1_us < casa.qubits[0].t1_us);
    }

    #[test]
    fn all_is_exhaustive_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for m in Machine::ALL {
            assert!(seen.insert(m.name()), "duplicate in ALL: {}", m.name());
            // Exhaustiveness guard: adding a variant without extending ALL
            // makes this match non-exhaustive and fails to compile.
            match m {
                Machine::Guadalupe
                | Machine::Toronto
                | Machine::Sydney
                | Machine::Casablanca
                | Machine::Jakarta
                | Machine::Mumbai
                | Machine::Cairo => {}
            }
        }
        assert_eq!(seen.len(), Machine::ALL.len());
        assert!(Machine::FIG13_SET.iter().all(|m| Machine::ALL.contains(m)));
    }

    #[test]
    fn tls_banks_are_constructible() {
        for m in [
            Machine::Guadalupe,
            Machine::Cairo,
            Machine::Jakarta,
            Machine::Sydney,
        ] {
            let bank = m.tls_bank();
            assert!(bank.base_t1_us() > 0.0);
            assert!(!bank.fluctuators().is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Machine::Sydney).unwrap();
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Machine::Sydney);
    }
}

//! Mapping the static noise model onto Kraus channels, and the noisy
//! density-matrix executor.
//!
//! This is the physically faithful execution path: after each gate the
//! operand qubits experience thermal relaxation over the gate duration plus
//! a depolarizing error at the calibrated gate error rate, mirroring how
//! Qiskit Aer builds device noise models from calibration data.

use crate::static_model::StaticNoiseModel;
use qismet_qsim::{
    ChannelError, Circuit, Counts, DensityMatrix, GateError, KrausChannel, PauliSum,
};
use rand::Rng;

/// Errors from the noisy executor.
#[derive(Debug, Clone, PartialEq)]
pub enum NoisySimError {
    /// A gate still carries a free parameter.
    Unbound,
    /// Channel construction failed (bad calibration values).
    Channel(ChannelError),
}

impl std::fmt::Display for NoisySimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NoisySimError::Unbound => write!(f, "circuit has unbound parameters"),
            NoisySimError::Channel(e) => write!(f, "channel construction failed: {e}"),
        }
    }
}

impl std::error::Error for NoisySimError {}

impl From<GateError> for NoisySimError {
    fn from(_: GateError) -> Self {
        NoisySimError::Unbound
    }
}

impl From<ChannelError> for NoisySimError {
    fn from(e: ChannelError) -> Self {
        NoisySimError::Channel(e)
    }
}

/// Density-matrix executor that interleaves the static model's error
/// channels with the circuit's gates.
///
/// # Examples
///
/// ```
/// use qismet_qnoise::{NoisySimulator, StaticNoiseModel};
/// use qismet_qsim::{Circuit, PauliSum};
///
/// let model = StaticNoiseModel::uniform(2, 100.0, 90.0, 1e-3, 1e-2, 0.0);
/// let sim = NoisySimulator::new(model);
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let h = PauliSum::from_labels(&[(1.0, "ZZ")]).unwrap();
/// let noisy = sim.expectation(&bell, &h).unwrap();
/// assert!(noisy < 1.0 && noisy > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct NoisySimulator {
    model: StaticNoiseModel,
}

impl NoisySimulator {
    /// Creates an executor over a static model.
    pub fn new(model: StaticNoiseModel) -> Self {
        NoisySimulator { model }
    }

    /// The underlying model.
    pub fn model(&self) -> &StaticNoiseModel {
        &self.model
    }

    /// Runs a bound circuit to a noisy density matrix.
    ///
    /// # Errors
    ///
    /// * [`NoisySimError::Unbound`] for unbound circuits.
    /// * [`NoisySimError::Channel`] if calibration values are invalid.
    pub fn run(&self, circuit: &Circuit) -> Result<DensityMatrix, NoisySimError> {
        self.run_with_t1(circuit, None)
    }

    /// Runs with optional per-qubit T1 overrides (microseconds), used when a
    /// transient T1 trace drives the simulation (Fig. 4).
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_with_t1(
        &self,
        circuit: &Circuit,
        t1_overrides_us: Option<&[f64]>,
    ) -> Result<DensityMatrix, NoisySimError> {
        let mut rho = DensityMatrix::new(circuit.n_qubits());
        for op in circuit.ops() {
            rho.apply_gate(op.gate, op.operands())?;
            let (duration_ns, dep_error) = match op.gate.arity() {
                1 => (self.model.gate_time_1q_ns, self.model.gate_error_1q),
                _ => (self.model.gate_time_2q_ns, self.model.gate_error_2q),
            };
            for &q in op.operands() {
                let profile = &self.model.qubits[q];
                let t1_us = t1_overrides_us.map(|t| t[q]).unwrap_or(profile.t1_us);
                if t1_us.is_finite() {
                    let t1_ns = t1_us * 1e3;
                    let t2_ns = (profile.t2_us * 1e3).min(2.0 * t1_ns);
                    let ch = KrausChannel::thermal_relaxation(duration_ns, t1_ns, t2_ns)?;
                    rho.apply_channel(&ch, &[q])?;
                }
                if dep_error > 0.0 {
                    let ch = KrausChannel::depolarizing(dep_error)?;
                    rho.apply_channel(&ch, &[q])?;
                }
            }
        }
        Ok(rho)
    }

    /// Noisy expectation value `tr(rho H)` (no readout error — expectation is
    /// taken analytically from the final state).
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn expectation(&self, circuit: &Circuit, h: &PauliSum) -> Result<f64, NoisySimError> {
        Ok(self.run(circuit)?.expectation(h))
    }

    /// Samples measurement outcomes including readout (assignment) errors.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn sample<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        shots: u64,
        rng: &mut R,
    ) -> Result<Counts, NoisySimError> {
        let rho = self.run(circuit)?;
        let raw = rho.sample_counts(rng, shots);
        Ok(self.model.apply_readout_errors(&raw, rng))
    }

    /// Output-distribution fidelity of a circuit against its ideal execution
    /// (Hellinger fidelity of the computational-basis distributions), with
    /// optional T1 overrides. This is the Fig. 4 metric.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn circuit_fidelity(
        &self,
        circuit: &Circuit,
        t1_overrides_us: Option<&[f64]>,
    ) -> Result<f64, NoisySimError> {
        let noisy = self.run_with_t1(circuit, t1_overrides_us)?;
        let ideal = qismet_qsim::StateVector::from_circuit(circuit)?;
        Ok(qismet_qsim::hellinger_fidelity(
            &noisy.probabilities(),
            &ideal.probabilities(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn noiseless_model_reproduces_ideal() {
        let sim = NoisySimulator::new(StaticNoiseModel::noiseless(2));
        let h = PauliSum::from_labels(&[(1.0, "ZZ")]).unwrap();
        let e = sim.expectation(&bell(), &h).unwrap();
        assert!((e - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gate_errors_contract_expectation() {
        let model = StaticNoiseModel::uniform(2, f64::INFINITY, f64::INFINITY, 1e-3, 1e-2, 0.0);
        let mut model = model;
        for q in &mut model.qubits {
            q.t1_us = f64::INFINITY;
            q.t2_us = f64::INFINITY;
        }
        let sim = NoisySimulator::new(model);
        let h = PauliSum::from_labels(&[(1.0, "ZZ")]).unwrap();
        let e = sim.expectation(&bell(), &h).unwrap();
        assert!(e < 1.0 && e > 0.95, "e = {e}");
    }

    #[test]
    fn attenuation_factor_tracks_density_sim() {
        // The cheap contraction model should approximate the faithful
        // density-matrix result for a GHZ-parity observable.
        let model = StaticNoiseModel::uniform(3, 120.0, 100.0, 5e-4, 6e-3, 0.0);
        let sim = NoisySimulator::new(model.clone());
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let h = PauliSum::from_labels(&[(1.0, "ZZI"), (1.0, "IZZ")]).unwrap();
        let ideal = qismet_qsim::exact_energy(&c, &h).unwrap();
        let noisy = sim.expectation(&c, &h).unwrap();
        let predicted = model.attenuation_factor(&c) * ideal;
        assert!(
            (noisy - predicted).abs() < 0.05 * ideal.abs().max(1.0),
            "noisy {noisy} vs predicted {predicted}"
        );
    }

    #[test]
    fn t1_override_reduces_fidelity() {
        let model = StaticNoiseModel::uniform(3, 150.0, 120.0, 3e-4, 6e-3, 0.0);
        let sim = NoisySimulator::new(model);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).cx(0, 1).cx(1, 2);
        let healthy = sim.circuit_fidelity(&c, Some(&[150.0; 3])).unwrap();
        let sick = sim
            .circuit_fidelity(&c, Some(&[150.0, 2.0, 150.0]))
            .unwrap();
        assert!(healthy > sick + 0.02, "healthy {healthy} vs sick {sick}");
    }

    #[test]
    fn fidelity_in_unit_interval() {
        let model = StaticNoiseModel::uniform(2, 60.0, 50.0, 1e-3, 1e-2, 0.02);
        let sim = NoisySimulator::new(model);
        let f = sim.circuit_fidelity(&bell(), None).unwrap();
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.8, "bell pair should stay high fidelity, got {f}");
    }

    #[test]
    fn sampling_includes_readout_errors() {
        let model = StaticNoiseModel::uniform(1, f64::INFINITY, f64::INFINITY, 0.0, 0.0, 0.1);
        let mut model = model;
        model.qubits[0].t1_us = f64::INFINITY;
        model.qubits[0].t2_us = f64::INFINITY;
        let sim = NoisySimulator::new(model.clone());
        let c = Circuit::new(1); // stays |0>
        let mut rng = rng_from_seed(9);
        let counts = sim.sample(&c, 20_000, &mut rng).unwrap();
        let p1 = counts.probability(1);
        // p01 = 0.1 * 0.6 = 0.06 flips expected.
        assert!((p1 - model.qubits[0].readout_p01).abs() < 0.01, "p1 = {p1}");
    }

    #[test]
    fn unbound_circuit_rejected() {
        let sim = NoisySimulator::new(StaticNoiseModel::noiseless(1));
        let mut c = Circuit::new(1);
        c.ry(qismet_qsim::Param::Free(0), 0);
        assert_eq!(sim.run(&c).unwrap_err(), NoisySimError::Unbound);
    }
}

//! Iteration-level transient error traces.
//!
//! Section 6.2 of the paper: *"Per-iteration transient effects on VQA are
//! captured and normalized to the magnitude of the VQA estimations. These
//! transient effects are composed into a data structure and integrated into
//! Qiskit's VQA framework. In each simulated VQA iteration, an instance of
//! transient noise is accessed from the data structure."*
//!
//! This module is that data structure plus the generator that produces it.
//! A trace value is a **fraction of the objective magnitude** added to every
//! energy estimate taken in the corresponding quantum job. Values are keyed
//! by *job index* (execution time step), not VQA iteration index, because a
//! QISMET retry re-executes under fresh noise.
//!
//! The generative model is a quiet/burst regime-switching process matching
//! the device phenomenology of Figs. 3-5: long quiet stretches of small
//! jitter, with rare bursts whose amplitude is heavy-tailed, whose duration
//! is short (one to a few jobs), and whose sign is predominantly adverse
//! (pushing a minimization objective upward) but occasionally constructive.

use qismet_mathkit::{bernoulli, geometric, normal, pareto};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the quiet/burst transient process.
///
/// # Examples
///
/// ```
/// use qismet_qnoise::TransientModel;
/// use qismet_mathkit::rng_from_seed;
///
/// let model = TransientModel::moderate(0.125); // 12.5% of objective magnitude
/// let trace = model.generate(&mut rng_from_seed(7), 2000);
/// assert_eq!(trace.len(), 2000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientModel {
    /// Per-job probability of a burst starting while quiet.
    pub burst_rate: f64,
    /// Mean burst duration in jobs (geometric distribution).
    pub mean_burst_jobs: f64,
    /// Characteristic burst amplitude as a fraction of objective magnitude.
    pub burst_magnitude: f64,
    /// Pareto tail index for burst amplitudes (smaller = heavier tail).
    pub tail_alpha: f64,
    /// Cap on burst amplitude, as a multiple of `burst_magnitude`.
    pub amplitude_cap: f64,
    /// Probability that a burst is adverse (raises the objective).
    pub adverse_probability: f64,
    /// Standard deviation of quiet-regime jitter (fraction of magnitude).
    pub quiet_sigma: f64,
}

impl TransientModel {
    /// A moderate profile: bursts every ~25 jobs, 1-4 jobs long, on top of
    /// an always-present fluctuation floor.
    ///
    /// The floor reflects the paper's Fig. 4 zoom: even within one batch,
    /// per-circuit fidelity varies substantially at all times; the *extreme*
    /// transients are the exception, but the landscape is never still.
    pub fn moderate(burst_magnitude: f64) -> Self {
        TransientModel {
            burst_rate: 0.04,
            mean_burst_jobs: 2.5,
            burst_magnitude,
            tail_alpha: 2.5,
            amplitude_cap: 3.0,
            adverse_probability: 0.8,
            quiet_sigma: burst_magnitude * 0.12,
        }
    }

    /// A calm profile: rare short bursts (Fig. 12's "smooth with one sharp
    /// phase" behavior) over a gentler floor.
    pub fn calm(burst_magnitude: f64) -> Self {
        TransientModel {
            burst_rate: 0.006,
            mean_burst_jobs: 2.5,
            burst_magnitude,
            tail_alpha: 2.0,
            amplitude_cap: 4.0,
            adverse_probability: 0.85,
            quiet_sigma: burst_magnitude * 0.08,
        }
    }

    /// A severe profile: frequent large spikes (Fig. 5 Jakarta behavior)
    /// over a rough floor.
    pub fn severe(burst_magnitude: f64) -> Self {
        TransientModel {
            burst_rate: 0.07,
            mean_burst_jobs: 3.0,
            burst_magnitude,
            tail_alpha: 1.8,
            amplitude_cap: 4.0,
            adverse_probability: 0.82,
            quiet_sigma: burst_magnitude * 0.15,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.burst_rate) {
            return Err("burst_rate must be in [0, 1]".into());
        }
        if self.mean_burst_jobs < 1.0 {
            return Err("mean_burst_jobs must be >= 1".into());
        }
        if self.burst_magnitude < 0.0 {
            return Err("burst_magnitude must be non-negative".into());
        }
        if self.tail_alpha <= 0.0 {
            return Err("tail_alpha must be positive".into());
        }
        if self.amplitude_cap < 1.0 {
            return Err("amplitude_cap must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.adverse_probability) {
            return Err("adverse_probability must be in [0, 1]".into());
        }
        if self.quiet_sigma < 0.0 {
            return Err("quiet_sigma must be non-negative".into());
        }
        Ok(())
    }

    /// Generates a trace of `n_jobs` samples.
    ///
    /// # Panics
    ///
    /// Panics if parameters are invalid (call [`Self::validate`] first when
    /// handling untrusted input).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, n_jobs: usize) -> TransientTrace {
        self.validate().expect("invalid transient model");
        let mut values = Vec::with_capacity(n_jobs);
        let mut burst_remaining = 0u64;
        let mut burst_amplitude = 0.0f64;
        for _ in 0..n_jobs {
            if burst_remaining == 0 && self.burst_magnitude > 0.0 && bernoulli(rng, self.burst_rate)
            {
                // Start a burst: duration and amplitude drawn once, so a
                // single physical event has a consistent footprint.
                burst_remaining = geometric(rng, 1.0 / self.mean_burst_jobs);
                let raw = pareto(rng, 1.0, self.tail_alpha).min(self.amplitude_cap);
                let sign = if bernoulli(rng, self.adverse_probability) {
                    1.0
                } else {
                    -1.0
                };
                burst_amplitude = sign * raw * self.burst_magnitude;
            }
            if burst_remaining > 0 {
                burst_remaining -= 1;
                // Small within-burst jitter on top of the event amplitude.
                let jitter = normal(rng, 0.0, 0.1 * burst_amplitude.abs());
                values.push(burst_amplitude + jitter);
            } else {
                values.push(normal(rng, 0.0, self.quiet_sigma));
            }
        }
        TransientTrace { values }
    }
}

/// A realized transient-error trace (the Section 6.2 data structure).
///
/// Values are fractions of the objective magnitude; index is the quantum-job
/// counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TransientTrace {
    values: Vec<f64>,
}

impl TransientTrace {
    /// Builds directly from values.
    pub fn from_values(values: Vec<f64>) -> Self {
        TransientTrace { values }
    }

    /// An all-zero (transient-free) trace.
    pub fn zeros(n: usize) -> Self {
        TransientTrace {
            values: vec![0.0; n],
        }
    }

    /// Number of job slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The trace value at a job index.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range — generate traces long enough for the
    /// retry overhead (the harnesses allocate ~4x the iteration count).
    /// Callers that need to handle exhaustion gracefully should use
    /// [`TransientTrace::get`] instead.
    pub fn value(&self, job: usize) -> f64 {
        self.values[job]
    }

    /// The trace value at a job index, or `None` when the trace is
    /// exhausted. The non-panicking lookup behind
    /// `qismet_vqa::NoisyObjective`'s typed exhaustion error.
    pub fn get(&self, job: usize) -> Option<f64> {
        self.values.get(job).copied()
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns a copy with every value multiplied by `k` — how the Fig. 10
    /// magnitude sweep rescales one base trace to 0-50%.
    pub fn scaled(&self, k: f64) -> TransientTrace {
        TransientTrace {
            values: self.values.iter().map(|v| v * k).collect(),
        }
    }

    /// Fraction of slots whose |value| exceeds `threshold`.
    pub fn exceedance_fraction(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|v| v.abs() > threshold).count() as f64 / self.values.len() as f64
    }

    /// The |value| percentile (e.g. `90.0` for the paper's `90p` threshold).
    pub fn magnitude_percentile(&self, p: f64) -> f64 {
        let mags: Vec<f64> = self.values.iter().map(|v| v.abs()).collect();
        qismet_mathkit::percentile(&mags, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;

    #[test]
    fn trace_length_and_determinism() {
        let m = TransientModel::moderate(0.1);
        let a = m.generate(&mut rng_from_seed(1), 500);
        let b = m.generate(&mut rng_from_seed(1), 500);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn quiet_majority_bursty_minority() {
        let m = TransientModel::moderate(0.2);
        let trace = m.generate(&mut rng_from_seed(2), 20_000);
        // Values near the burst magnitude should be rare.
        let burst_frac = trace.exceedance_fraction(0.1);
        assert!(
            burst_frac > 0.01 && burst_frac < 0.25,
            "burst fraction {burst_frac}"
        );
        // Quiet slots hug zero.
        let p50 = trace.magnitude_percentile(50.0);
        assert!(p50 < 0.02, "median magnitude {p50}");
    }

    #[test]
    fn bursts_are_mostly_adverse() {
        let m = TransientModel::moderate(0.2);
        let trace = m.generate(&mut rng_from_seed(3), 50_000);
        let big: Vec<f64> = trace
            .values()
            .iter()
            .copied()
            .filter(|v| v.abs() > 0.1)
            .collect();
        assert!(!big.is_empty());
        let adverse = big.iter().filter(|&&v| v > 0.0).count() as f64 / big.len() as f64;
        assert!((adverse - 0.8).abs() < 0.1, "adverse fraction {adverse}");
    }

    #[test]
    fn zero_magnitude_is_pure_jitter() {
        let mut m = TransientModel::moderate(0.0);
        m.quiet_sigma = 0.0;
        let trace = m.generate(&mut rng_from_seed(4), 100);
        assert!(trace.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_is_value_without_the_panic() {
        let trace = TransientTrace::from_values(vec![0.25, -0.5]);
        assert_eq!(trace.get(0), Some(0.25));
        assert_eq!(trace.get(1), Some(-0.5));
        assert_eq!(trace.get(2), None);
        assert_eq!(trace.get(usize::MAX), None);
    }

    #[test]
    fn scaling_preserves_shape() {
        let m = TransientModel::moderate(0.1);
        let base = m.generate(&mut rng_from_seed(5), 1000);
        let scaled = base.scaled(2.0);
        for (a, b) in base.values().iter().zip(scaled.values().iter()) {
            assert!((b - 2.0 * a).abs() < 1e-15);
        }
    }

    #[test]
    fn severity_ordering() {
        // Severe profiles should exceed a threshold more often than calm.
        let calm = TransientModel::calm(0.2).generate(&mut rng_from_seed(6), 50_000);
        let severe = TransientModel::severe(0.2).generate(&mut rng_from_seed(6), 50_000);
        assert!(severe.exceedance_fraction(0.1) > 2.0 * calm.exceedance_fraction(0.1));
    }

    #[test]
    fn percentile_thresholds_are_monotone() {
        let trace = TransientModel::moderate(0.15).generate(&mut rng_from_seed(7), 10_000);
        let p75 = trace.magnitude_percentile(75.0);
        let p90 = trace.magnitude_percentile(90.0);
        let p99 = trace.magnitude_percentile(99.0);
        assert!(p75 <= p90 && p90 <= p99);
        assert!(p99 > 0.0);
    }

    #[test]
    fn validation_rejects_bad_models() {
        let mut m = TransientModel::moderate(0.1);
        m.burst_rate = 1.5;
        assert!(m.validate().is_err());
        let mut m = TransientModel::moderate(0.1);
        m.mean_burst_jobs = 0.5;
        assert!(m.validate().is_err());
        let mut m = TransientModel::moderate(0.1);
        m.amplitude_cap = 0.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let m = TransientModel::severe(0.25);
        let trace = m.generate(&mut rng_from_seed(8), 64);
        let json = serde_json::to_string(&trace).unwrap();
        let back: TransientTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
        let mjson = serde_json::to_string(&m).unwrap();
        let mback: TransientModel = serde_json::from_str(&mjson).unwrap();
        assert_eq!(m, mback);
    }

    #[test]
    fn burst_duration_clusters() {
        // Consecutive large values should appear (bursts last > 1 job on
        // average), i.e. autocorrelation of the burst indicator is positive.
        let trace = TransientModel::moderate(0.3).generate(&mut rng_from_seed(9), 50_000);
        let indicator: Vec<f64> = trace
            .values()
            .iter()
            .map(|v| if v.abs() > 0.15 { 1.0 } else { 0.0 })
            .collect();
        let shifted: Vec<f64> = indicator[1..].to_vec();
        let corr = qismet_mathkit::pearson(&indicator[..indicator.len() - 1], &shifted);
        assert!(corr > 0.2, "burst autocorrelation {corr}");
    }
}

//! Static (calibration-cycle) noise model.
//!
//! This is the per-device noise description that error-mitigation work
//! traditionally assumes stable: per-qubit T1/T2 and readout error, per-gate
//! depolarizing error, and gate durations. The paper's point is that reality
//! adds a *transient* component on top (see [`crate::transient`]); this
//! module is the stable floor.

use qismet_qsim::{Circuit, Counts};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Calibration data for one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitProfile {
    /// Amplitude (energy relaxation) time constant in microseconds.
    pub t1_us: f64,
    /// Phase coherence time constant in microseconds (`t2 <= 2 t1`).
    pub t2_us: f64,
    /// Probability of reading `1` when the qubit is `0`.
    pub readout_p01: f64,
    /// Probability of reading `0` when the qubit is `1`.
    pub readout_p10: f64,
}

impl QubitProfile {
    /// A typical mid-tier transmon qubit.
    pub fn typical() -> Self {
        QubitProfile {
            t1_us: 100.0,
            t2_us: 90.0,
            readout_p01: 0.015,
            readout_p10: 0.03,
        }
    }

    /// Average symmetric readout error.
    pub fn readout_error(&self) -> f64 {
        0.5 * (self.readout_p01 + self.readout_p10)
    }
}

/// The full static noise model of a device.
///
/// # Examples
///
/// ```
/// use qismet_qnoise::StaticNoiseModel;
/// let model = StaticNoiseModel::uniform(6, 100.0, 90.0, 3e-4, 8e-3, 0.02);
/// assert_eq!(model.n_qubits(), 6);
/// assert!(model.gate_error_2q > model.gate_error_1q);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticNoiseModel {
    /// Per-qubit calibration.
    pub qubits: Vec<QubitProfile>,
    /// Depolarizing error probability per one-qubit gate.
    pub gate_error_1q: f64,
    /// Depolarizing error probability per two-qubit gate.
    pub gate_error_2q: f64,
    /// One-qubit gate duration in nanoseconds.
    pub gate_time_1q_ns: f64,
    /// Two-qubit gate duration in nanoseconds.
    pub gate_time_2q_ns: f64,
}

impl StaticNoiseModel {
    /// A noiseless model (useful as the ideal reference).
    pub fn noiseless(n_qubits: usize) -> Self {
        StaticNoiseModel {
            qubits: vec![
                QubitProfile {
                    t1_us: f64::INFINITY,
                    t2_us: f64::INFINITY,
                    readout_p01: 0.0,
                    readout_p10: 0.0,
                };
                n_qubits
            ],
            gate_error_1q: 0.0,
            gate_error_2q: 0.0,
            gate_time_1q_ns: 35.0,
            gate_time_2q_ns: 300.0,
        }
    }

    /// A uniform model where every qubit shares the same calibration.
    pub fn uniform(
        n_qubits: usize,
        t1_us: f64,
        t2_us: f64,
        gate_error_1q: f64,
        gate_error_2q: f64,
        readout_error: f64,
    ) -> Self {
        StaticNoiseModel {
            qubits: vec![
                QubitProfile {
                    t1_us,
                    t2_us,
                    readout_p01: readout_error * 0.6,
                    readout_p10: readout_error * 1.4,
                };
                n_qubits
            ],
            gate_error_1q,
            gate_error_2q,
            gate_time_1q_ns: 35.0,
            gate_time_2q_ns: 300.0,
        }
    }

    /// Device width.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Mean T1 over the device in microseconds.
    pub fn mean_t1_us(&self) -> f64 {
        qismet_mathkit::mean(&self.qubits.iter().map(|q| q.t1_us).collect::<Vec<_>>())
    }

    /// The expectation *attenuation factor* of a circuit under this model:
    /// the multiplicative contraction a traceless observable's expectation
    /// suffers relative to the ideal value, under a global-depolarizing
    /// approximation.
    ///
    /// Composition: every gate contributes its depolarizing survival
    /// probability, and every qubit contributes decoherence survival
    /// `exp(-t_active / T1_eff)` over the circuit's critical-path duration.
    /// The approximation is validated against the density-matrix backend in
    /// the workspace integration tests.
    pub fn attenuation_factor(&self, circuit: &Circuit) -> f64 {
        let mut f = 1.0;
        for op in circuit.ops() {
            f *= match op.gate.arity() {
                1 => 1.0 - self.gate_error_1q,
                _ => 1.0 - self.gate_error_2q,
            };
        }
        let duration_ns = circuit.duration(self.gate_time_1q_ns, self.gate_time_2q_ns);
        for q in &self.qubits[..circuit.n_qubits().min(self.qubits.len())] {
            if q.t1_us.is_finite() {
                let t1_ns = q.t1_us * 1e3;
                let t2_ns = q.t2_us * 1e3;
                // Combined amplitude + phase survival for one qubit.
                f *= (-duration_ns / t1_ns).exp().sqrt() * (-duration_ns / t2_ns).exp().sqrt();
            }
        }
        f.clamp(0.0, 1.0)
    }

    /// Same as [`Self::attenuation_factor`] but with the per-qubit T1 values
    /// overridden by a transient trace sample (used for Figs. 3-4, where
    /// fluctuating T1 drives circuit fidelity).
    ///
    /// # Panics
    ///
    /// Panics if `t1_overrides_us` is shorter than the circuit width.
    pub fn attenuation_with_t1(&self, circuit: &Circuit, t1_overrides_us: &[f64]) -> f64 {
        assert!(
            t1_overrides_us.len() >= circuit.n_qubits(),
            "need a T1 override per circuit qubit"
        );
        let mut scratch = self.clone();
        for (q, &t1) in scratch.qubits.iter_mut().zip(t1_overrides_us.iter()) {
            q.t1_us = t1;
            q.t2_us = q.t2_us.min(2.0 * t1);
        }
        scratch.attenuation_factor(circuit)
    }

    /// Applies per-qubit readout (assignment) errors to sampled counts by
    /// stochastically flipping measured bits.
    ///
    /// # Panics
    ///
    /// Panics if the counts width exceeds the model width.
    pub fn apply_readout_errors<R: Rng + ?Sized>(&self, counts: &Counts, rng: &mut R) -> Counts {
        assert!(
            counts.n_qubits() <= self.n_qubits(),
            "counts wider than device"
        );
        let mut noisy = Counts::new(counts.n_qubits());
        for (outcome, k) in counts.iter() {
            for _ in 0..k {
                let mut o = outcome;
                for (q, profile) in self.qubits[..counts.n_qubits()].iter().enumerate() {
                    let bit = o >> q & 1;
                    let flip_p = if bit == 0 {
                        profile.readout_p01
                    } else {
                        profile.readout_p10
                    };
                    if rng.gen::<f64>() < flip_p {
                        o ^= 1 << q;
                    }
                }
                noisy.record(o, 1);
            }
        }
        noisy
    }

    /// The `2x2` single-qubit assignment matrix `A[measured][prepared]` for
    /// qubit `q`, used by tensored readout mitigation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn assignment_matrix_1q(&self, q: usize) -> [[f64; 2]; 2] {
        let p = &self.qubits[q];
        [
            [1.0 - p.readout_p01, p.readout_p10],
            [p.readout_p01, 1.0 - p.readout_p10],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn noiseless_model_does_not_attenuate() {
        let m = StaticNoiseModel::noiseless(4);
        let c = ghz(4);
        assert!((m.attenuation_factor(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attenuation_decreases_with_depth() {
        let m = StaticNoiseModel::uniform(6, 100.0, 90.0, 3e-4, 8e-3, 0.02);
        let shallow = ghz(6);
        let mut deep = ghz(6);
        for _ in 0..10 {
            for q in 0..5 {
                deep.cx(q, q + 1);
            }
        }
        let fs = m.attenuation_factor(&shallow);
        let fd = m.attenuation_factor(&deep);
        assert!(fs > fd, "shallow {fs} should exceed deep {fd}");
        assert!(fd > 0.0 && fs < 1.0);
    }

    #[test]
    fn low_t1_override_hurts_fidelity() {
        let m = StaticNoiseModel::uniform(4, 100.0, 90.0, 3e-4, 8e-3, 0.02);
        let c = ghz(4);
        let healthy = m.attenuation_with_t1(&c, &[100.0; 4]);
        let sick = m.attenuation_with_t1(&c, &[100.0, 5.0, 100.0, 100.0]);
        assert!(healthy > sick);
    }

    #[test]
    fn readout_errors_perturb_counts() {
        let m = StaticNoiseModel::uniform(3, 100.0, 90.0, 0.0, 0.0, 0.05);
        let clean = Counts::from_pairs(3, [(0b000, 5000)]);
        let mut rng = rng_from_seed(3);
        let noisy = m.apply_readout_errors(&clean, &mut rng);
        assert_eq!(noisy.shots(), 5000);
        // Expect roughly p01 * 0.6-scaled flips per qubit.
        let p_flip = m.qubits[0].readout_p01;
        let expected_zero = (1.0 - p_flip).powi(3);
        let observed_zero = noisy.probability(0);
        assert!(
            (observed_zero - expected_zero).abs() < 0.02,
            "observed {observed_zero}, expected {expected_zero}"
        );
    }

    #[test]
    fn readout_error_zero_is_identity() {
        let m = StaticNoiseModel::noiseless(2);
        let clean = Counts::from_pairs(2, [(0b01, 100), (0b10, 50)]);
        let mut rng = rng_from_seed(4);
        let noisy = m.apply_readout_errors(&clean, &mut rng);
        assert_eq!(noisy.count(0b01), 100);
        assert_eq!(noisy.count(0b10), 50);
    }

    #[test]
    fn assignment_matrix_columns_sum_to_one() {
        let m = StaticNoiseModel::uniform(2, 100.0, 90.0, 0.0, 0.0, 0.04);
        let a = m.assignment_matrix_1q(0);
        assert!((a[0][0] + a[1][0] - 1.0).abs() < 1e-12);
        assert!((a[0][1] + a[1][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let m = StaticNoiseModel::uniform(3, 80.0, 70.0, 1e-3, 1e-2, 0.03);
        let json = serde_json::to_string(&m).unwrap();
        let back: StaticNoiseModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn mean_t1_reported() {
        let mut m = StaticNoiseModel::uniform(2, 100.0, 90.0, 0.0, 0.0, 0.0);
        m.qubits[1].t1_us = 50.0;
        assert!((m.mean_t1_us() - 75.0).abs() < 1e-12);
    }
}

//! # qismet-qnoise
//!
//! Static **and transient** NISQ noise modeling for the QISMET reproduction
//! (ASPLOS 2023). The paper's thesis is that device noise has a dynamic,
//! transient component that static error-mitigation assumptions miss; this
//! crate provides both layers:
//!
//! * [`StaticNoiseModel`] — calibration-cycle noise: per-qubit T1/T2 and
//!   readout error, per-gate depolarizing error, gate durations, plus the
//!   circuit-level *attenuation factor* used by the fast objective model.
//! * [`NoisySimulator`] — the faithful density-matrix executor that applies
//!   thermal-relaxation and depolarizing Kraus channels gate by gate.
//! * [`TlsBank`] / [`Fluctuator`] — telegraph-process TLS defects producing
//!   the T1(t) fluctuation traces of paper Fig. 3.
//! * [`CircuitFidelityModel`] — the Fig. 4 study: hourly batches of circuit
//!   fidelity under fluctuating T1.
//! * [`TransientModel`] / [`TransientTrace`] — the Section 6.2 per-iteration
//!   transient data structure injected into simulated VQA runs, with the
//!   quiet/burst generator that produces machine-like traces.
//! * [`Machine`] — synthetic stand-ins for the paper's IBMQ devices
//!   (Guadalupe, Toronto, Sydney, Casablanca, Jakarta, Mumbai, Cairo).
//! * [`TraceLibrary`] — JSON persistence for app/machine trace collections.
//!
//! # Examples
//!
//! Generating a Jakarta-like transient trace and asking how often it would
//! breach the paper's 90th-percentile skip threshold:
//!
//! ```
//! use qismet_qnoise::Machine;
//! use qismet_mathkit::rng_from_seed;
//!
//! let model = Machine::Jakarta.transient_model(0.2);
//! let trace = model.generate(&mut rng_from_seed(1), 2000);
//! let p90 = trace.magnitude_percentile(90.0);
//! let frac = trace.exceedance_fraction(p90);
//! assert!(frac <= 0.1 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channels;
mod impact;
mod machines;
mod static_model;
mod tls;
mod traceio;
mod transient;

pub use channels::{NoisySimError, NoisySimulator};
pub use impact::{fig4_circuits, BatchFidelity, CircuitFidelityModel};
pub use machines::Machine;
pub use static_model::{QubitProfile, StaticNoiseModel};
pub use tls::{Fluctuator, TlsBank};
pub use traceio::{TraceIoError, TraceKey, TraceLibrary};
pub use transient::{TransientModel, TransientTrace};

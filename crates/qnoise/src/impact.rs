//! Circuit-level impact of transient T1 fluctuations (the Fig. 4 study).
//!
//! Given a circuit and a machine profile, this module turns a fluctuating
//! T1(t) trace into hourly batches of circuit-fidelity estimates: the ideal
//! output distribution is computed once, the noisy distribution is modeled as
//! the globally-depolarized mixture `f(t) * p_ideal + (1 - f(t)) * uniform`
//! with `f(t)` the attenuation factor under the instantaneous T1, and the
//! per-circuit fidelity estimate adds finite-shot scatter — reproducing both
//! the hour-scale drift and the intra-batch variation the paper shows.

use crate::machines::Machine;
use crate::static_model::StaticNoiseModel;
use qismet_qsim::{hellinger_fidelity, Circuit, GateError, StateVector};
use rand::Rng;

/// Fidelity study of one circuit on one machine under fluctuating T1.
#[derive(Debug, Clone)]
pub struct CircuitFidelityModel {
    model: StaticNoiseModel,
    ideal_probs: Vec<f64>,
    circuit: Circuit,
}

/// Hourly batch statistics (one point of the Fig. 4 time series).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFidelity {
    /// Hour index.
    pub hour: usize,
    /// Mean fidelity across the batch.
    pub mean: f64,
    /// Minimum fidelity in the batch.
    pub min: f64,
    /// Maximum fidelity in the batch.
    pub max: f64,
    /// Every per-circuit sample (length = batch size).
    pub samples: Vec<f64>,
}

impl CircuitFidelityModel {
    /// Compiles the study for a bound circuit on a machine.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the circuit has free parameters.
    pub fn new(machine: Machine, circuit: Circuit) -> Result<Self, GateError> {
        let model = machine.static_model(circuit.n_qubits());
        let ideal = StateVector::from_circuit(&circuit)?;
        Ok(CircuitFidelityModel {
            model,
            ideal_probs: ideal.probabilities(),
            circuit,
        })
    }

    /// The static model in use.
    pub fn static_model(&self) -> &StaticNoiseModel {
        &self.model
    }

    /// Fidelity of one execution given instantaneous per-qubit T1 values,
    /// with `shots` finite-sampling scatter.
    pub fn fidelity_at<R: Rng + ?Sized>(&self, t1_us: &[f64], shots: u64, rng: &mut R) -> f64 {
        let f = self.model.attenuation_with_t1(&self.circuit, t1_us);
        let dim = self.ideal_probs.len();
        let uniform = 1.0 / dim as f64;
        let noisy: Vec<f64> = self
            .ideal_probs
            .iter()
            .map(|&p| f * p + (1.0 - f) * uniform)
            .collect();
        // Finite-shot estimate: sample counts from the noisy distribution.
        let mut cdf = Vec::with_capacity(dim);
        let mut acc = 0.0;
        for p in &noisy {
            acc += p;
            cdf.push(acc);
        }
        let mut counts = vec![0u64; dim];
        for _ in 0..shots {
            let u = rng.gen::<f64>() * acc;
            let idx = cdf.partition_point(|&c| c < u).min(dim - 1);
            counts[idx] += 1;
        }
        let empirical: Vec<f64> = counts.iter().map(|&k| k as f64 / shots as f64).collect();
        hellinger_fidelity(&empirical, &self.ideal_probs)
    }

    /// Runs the full Fig. 4 protocol: `hours` hourly batches of
    /// `batch_size` circuits, with T1 sampled from the machine's TLS bank
    /// once per hour (all qubits share the hour's fluctuation state, plus
    /// small per-qubit offsets).
    pub fn hourly_batches<R: Rng + ?Sized>(
        &self,
        machine: Machine,
        hours: usize,
        batch_size: usize,
        shots: u64,
        rng: &mut R,
    ) -> Vec<BatchFidelity> {
        let bank = machine.tls_bank();
        let n = self.circuit.n_qubits();
        // One T1 trace per qubit, sampled hourly.
        let traces: Vec<Vec<f64>> = (0..n)
            .map(|_| bank.sample_t1_trace(rng, hours as f64, 1.0))
            .collect();
        let mut out = Vec::with_capacity(hours);
        for hour in 0..hours {
            let t1: Vec<f64> = traces.iter().map(|t| t[hour]).collect();
            let mut samples = Vec::with_capacity(batch_size);
            for _ in 0..batch_size {
                // Within-batch T1 jitter models drift inside the hour; the paper's
                // zoomed panel shows near-100% fidelity variation across one
                // batch, so the jitter is substantial.
                let jittered: Vec<f64> = t1
                    .iter()
                    .map(|&v| v * (1.0 + 0.12 * qismet_mathkit::standard_normal(rng)))
                    .map(|v| v.max(0.4))
                    .collect();
                samples.push(self.fidelity_at(&jittered, shots, rng));
            }
            out.push(BatchFidelity {
                hour,
                mean: qismet_mathkit::mean(&samples),
                min: qismet_mathkit::min(&samples),
                max: qismet_mathkit::max(&samples),
                samples,
            });
        }
        out
    }
}

/// The paper's Fig. 4 circuit shapes.
pub mod fig4_circuits {
    use qismet_qsim::Circuit;

    /// The shallow circuit: 4 qubits, 6 CX gates (~83% average fidelity in
    /// the paper).
    pub fn shallow_4q() -> Circuit {
        let mut c = Circuit::new(4);
        c.ry(0.5, 0).ry(0.7, 1).ry(1.1, 2).ry(0.4, 3);
        c.cx(0, 1).cx(2, 3).cx(1, 2).cx(0, 1).cx(2, 3).cx(1, 2);
        for q in 0..4 {
            c.ry(0.3 + 0.2 * q as f64, q);
        }
        c
    }

    /// The deep circuit: 8 qubits, ~50 CX gates (~25% average fidelity in
    /// the paper). Rotation angles are small so the ideal output
    /// distribution stays concentrated — which is what makes depolarization
    /// (mixing toward uniform) expensive in fidelity, as on hardware.
    pub fn deep_8q() -> Circuit {
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.ry(0.15 + 0.05 * q as f64, q);
        }
        let mut cx = 0;
        let mut layer = 0usize;
        while cx < 50 {
            let start = layer % 2;
            let mut q = start;
            while q + 1 < 8 && cx < 50 {
                c.cx(q, q + 1);
                cx += 1;
                q += 2;
            }
            for q in 0..8 {
                c.ry(0.08 + 0.02 * ((layer + q) % 5) as f64, q);
            }
            layer += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;

    #[test]
    fn fig4_circuit_shapes() {
        let shallow = fig4_circuits::shallow_4q();
        assert_eq!(shallow.n_qubits(), 4);
        assert_eq!(shallow.cx_count(), 6);
        let deep = fig4_circuits::deep_8q();
        assert_eq!(deep.n_qubits(), 8);
        assert_eq!(deep.cx_count(), 50);
    }

    #[test]
    fn deep_circuit_has_lower_fidelity() {
        // Fig. 4 contrast on the noisiest trace machine (Cairo): the 4q/6CX
        // circuit stays high fidelity while the 8q/50CX circuit collapses.
        let mut rng = rng_from_seed(1);
        let shallow =
            CircuitFidelityModel::new(Machine::Cairo, fig4_circuits::shallow_4q()).unwrap();
        let deep = CircuitFidelityModel::new(Machine::Cairo, fig4_circuits::deep_8q()).unwrap();
        let base_t1 = vec![85.0; 8];
        let fs = shallow.fidelity_at(&base_t1[..4], 4096, &mut rng);
        let fd = deep.fidelity_at(&base_t1, 4096, &mut rng);
        assert!(fs > 0.7, "shallow fidelity {fs}");
        assert!(fd < fs - 0.15, "deep fidelity {fd} vs shallow {fs}");
    }

    #[test]
    fn t1_dips_reduce_fidelity() {
        let model =
            CircuitFidelityModel::new(Machine::Toronto, fig4_circuits::shallow_4q()).unwrap();
        let mut rng = rng_from_seed(2);
        let healthy = model.fidelity_at(&[100.0; 4], 8192, &mut rng);
        let dipped = model.fidelity_at(&[100.0, 3.0, 100.0, 100.0], 8192, &mut rng);
        assert!(healthy > dipped + 0.02, "healthy {healthy} dipped {dipped}");
    }

    #[test]
    fn hourly_batches_shape_and_variation() {
        let model =
            CircuitFidelityModel::new(Machine::Guadalupe, fig4_circuits::shallow_4q()).unwrap();
        let mut rng = rng_from_seed(3);
        let batches = model.hourly_batches(Machine::Guadalupe, 12, 20, 2048, &mut rng);
        assert_eq!(batches.len(), 12);
        for b in &batches {
            assert_eq!(b.samples.len(), 20);
            assert!(b.min <= b.mean && b.mean <= b.max);
            assert!((0.0..=1.0).contains(&b.mean));
        }
    }

    #[test]
    fn deep_circuit_shows_larger_relative_variation() {
        // Fig. 4's key contrast: the 8q/50CX circuit varies much more than
        // the 4q/6CX circuit over the same fluctuation landscape.
        let mut rng_a = rng_from_seed(4);
        let mut rng_b = rng_from_seed(4);
        let shallow =
            CircuitFidelityModel::new(Machine::Cairo, fig4_circuits::shallow_4q()).unwrap();
        let deep = CircuitFidelityModel::new(Machine::Cairo, fig4_circuits::deep_8q()).unwrap();
        let sb = shallow.hourly_batches(Machine::Cairo, 45, 8, 2048, &mut rng_a);
        let db = deep.hourly_batches(Machine::Cairo, 45, 8, 2048, &mut rng_b);
        let range = |bs: &[BatchFidelity]| {
            let means: Vec<f64> = bs.iter().map(|b| b.mean).collect();
            (qismet_mathkit::max(&means) - qismet_mathkit::min(&means))
                / qismet_mathkit::mean(&means).max(1e-9)
        };
        let rs = range(&sb);
        let rd = range(&db);
        assert!(rd > rs, "deep rel-range {rd} should exceed shallow {rs}");
    }
}

//! Persistence for transient-trace libraries.
//!
//! Section 6.2 builds per application-machine transient traces and stores
//! them for reproducible simulation. [`TraceLibrary`] is that store: a keyed
//! collection of [`TransientTrace`]s with JSON (de)serialization so traces
//! can be shipped alongside the repository and inspected by humans.

use crate::machines::Machine;
use crate::transient::TransientTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Key identifying one trace: an application name and machine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceKey {
    /// Application identifier (e.g. `"App2"`).
    pub app: String,
    /// Machine the trace was captured from.
    pub machine: Machine,
    /// Trial index (the paper records e.g. "Toronto (v1)" and "(v2)").
    pub trial: u32,
}

impl fmt::Display for TraceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}(v{})", self.app, self.machine.name(), self.trial)
    }
}

/// Errors from library IO.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Requested key not present.
    Missing(TraceKey),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace library io error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace library json error: {e}"),
            TraceIoError::Missing(k) => write!(f, "no trace stored for {k}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
            TraceIoError::Missing(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// A keyed store of transient traces.
///
/// # Examples
///
/// ```
/// use qismet_qnoise::{Machine, TraceKey, TraceLibrary, TransientModel};
/// use qismet_mathkit::rng_from_seed;
///
/// let mut lib = TraceLibrary::new();
/// let key = TraceKey { app: "App1".into(), machine: Machine::Toronto, trial: 1 };
/// let trace = TransientModel::moderate(0.1).generate(&mut rng_from_seed(1), 100);
/// lib.insert(key.clone(), trace);
/// let json = lib.to_json().unwrap();
/// let back = TraceLibrary::from_json(&json).unwrap();
/// assert!(back.get(&key).is_some());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct TraceLibrary {
    traces: BTreeMap<String, (TraceKey, TransientTrace)>,
}

impl TraceLibrary {
    /// An empty library.
    pub fn new() -> Self {
        TraceLibrary::default()
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Inserts (or replaces) a trace.
    pub fn insert(&mut self, key: TraceKey, trace: TransientTrace) {
        self.traces.insert(key.to_string(), (key, trace));
    }

    /// Looks up a trace.
    pub fn get(&self, key: &TraceKey) -> Option<&TransientTrace> {
        self.traces.get(&key.to_string()).map(|(_, t)| t)
    }

    /// Looks up a trace, erroring when absent.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::Missing`] when the key is not stored.
    pub fn require(&self, key: &TraceKey) -> Result<&TransientTrace, TraceIoError> {
        self.get(key)
            .ok_or_else(|| TraceIoError::Missing(key.clone()))
    }

    /// Iterates over stored `(key, trace)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&TraceKey, &TransientTrace)> {
        self.traces.values().map(|(k, t)| (k, t))
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates JSON failures.
    pub fn to_json(&self) -> Result<String, TraceIoError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Propagates JSON failures.
    pub fn from_json(json: &str) -> Result<Self, TraceIoError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Writes JSON to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and JSON failures.
    pub fn save(&self, path: &std::path::Path) -> Result<(), TraceIoError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads JSON from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and JSON failures.
    pub fn load(path: &std::path::Path) -> Result<Self, TraceIoError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::TransientModel;
    use qismet_mathkit::rng_from_seed;

    fn key(app: &str, machine: Machine, trial: u32) -> TraceKey {
        TraceKey {
            app: app.to_string(),
            machine,
            trial,
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut lib = TraceLibrary::new();
        let k = key("App3", Machine::Guadalupe, 2);
        let t = TransientModel::moderate(0.1).generate(&mut rng_from_seed(1), 50);
        lib.insert(k.clone(), t.clone());
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get(&k), Some(&t));
        assert!(lib.get(&key("App3", Machine::Guadalupe, 1)).is_none());
    }

    #[test]
    fn require_reports_missing() {
        let lib = TraceLibrary::new();
        let k = key("App1", Machine::Cairo, 1);
        let err = lib.require(&k).unwrap_err();
        assert!(err.to_string().contains("App1@Cairo(v1)"));
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut lib = TraceLibrary::new();
        for (i, m) in [Machine::Toronto, Machine::Cairo, Machine::Casablanca]
            .into_iter()
            .enumerate()
        {
            let t = TransientModel::severe(0.2).generate(&mut rng_from_seed(i as u64), 64);
            lib.insert(key(&format!("App{}", i + 1), m, 1), t);
        }
        let json = lib.to_json().unwrap();
        let back = TraceLibrary::from_json(&json).unwrap();
        assert_eq!(lib, back);
        assert_eq!(back.iter().count(), 3);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qismet_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lib.json");
        let mut lib = TraceLibrary::new();
        lib.insert(
            key("App6", Machine::Casablanca, 1),
            TransientModel::calm(0.05).generate(&mut rng_from_seed(9), 32),
        );
        lib.save(&path).unwrap();
        let back = TraceLibrary::load(&path).unwrap();
        assert_eq!(lib, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn display_key_format() {
        let k = key("App2", Machine::Guadalupe, 1);
        assert_eq!(k.to_string(), "App2@Guadalupe(v1)");
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(TraceLibrary::from_json("{not json").is_err());
    }
}

//! Minimal JSON emission helpers.
//!
//! The telemetry crate is dependency-free by contract, so metrics and trace
//! export build their JSON with this small writer instead of the vendored
//! serde stack. Output is deterministic: object keys are emitted in the
//! order the callers push them (callers sort where determinism matters).

/// Append `s` to `out` as a JSON string literal, escaping per RFC 8259.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one JSON object/array tree. Tracks whether a
/// separator comma is needed; the caller supplies structure via
/// `begin_*`/`end_*` and leaf values via the typed `field_*` helpers.
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    fn key(&mut self, k: &str) {
        self.sep();
        push_str_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    pub fn begin_object(&mut self, key: Option<&str>) {
        match key {
            Some(k) => self.key(k),
            None => self.sep(),
        }
        self.buf.push('{');
        self.needs_comma.push(false);
    }

    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.buf.push('}');
    }

    pub fn begin_array(&mut self, key: Option<&str>) {
        match key {
            Some(k) => self.key(k),
            None => self.sep(),
        }
        self.buf.push('[');
        self.needs_comma.push(false);
    }

    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.buf.push(']');
    }

    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        push_str_escaped(&mut self.buf, v);
    }

    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.buf.push_str(&v.to_string());
    }

    pub fn field_i64(&mut self, key: &str, v: i64) {
        self.key(key);
        self.buf.push_str(&v.to_string());
    }

    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Finite floats only; emitted via Rust's shortest-roundtrip formatter.
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.key(key);
        if v.is_finite() {
            self.buf.push_str(&v.to_string());
        } else {
            self.buf.push_str("null");
        }
    }

    pub fn elem_u64(&mut self, v: u64) {
        self.sep();
        self.buf.push_str(&v.to_string());
    }

    pub fn into_string(mut self) -> String {
        self.needs_comma.clear();
        std::mem::take(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.field_str("a\"b", "line\nbreak\t\\");
        w.begin_array(Some("xs"));
        w.elem_u64(1);
        w.elem_u64(2);
        w.end_array();
        w.begin_object(Some("o"));
        w.field_bool("t", true);
        w.field_i64("n", -3);
        w.end_object();
        w.end_object();
        assert_eq!(
            w.into_string(),
            "{\"a\\\"b\":\"line\\nbreak\\t\\\\\",\"xs\":[1,2],\"o\":{\"t\":true,\"n\":-3}}"
        );
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        let mut out = String::new();
        push_str_escaped(&mut out, "\u{1}");
        assert_eq!(out, "\"\\u0001\"");
    }
}

//! RAII span timers and the Chrome `trace_event` buffer.
//!
//! Spans always feed their latency histogram when metrics are enabled;
//! they additionally append a complete (`"ph":"X"`) event to the trace
//! buffer when tracing is enabled. The buffer serializes to the Chrome
//! JSON Array Format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): open the file written by
//! `campaign --trace-out trace.json` directly in either viewer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonWriter;
use crate::metrics::Histogram;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether trace-event capture is on (independent of the metrics gate, so
/// `--metrics-out` alone never pays the trace buffer lock).
#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn trace-event capture on or off.
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Shared epoch for trace timestamps: all `ts` fields are microseconds
/// since the first event recorded after process start (or trace reset).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small stable integer id for the current thread (Chrome's `tid`).
fn thread_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

struct TraceEvent {
    name: &'static str,
    /// Microseconds since [`epoch`].
    ts_us: u64,
    /// Duration in microseconds; `None` renders an instant event.
    dur_us: Option<u64>,
    tid: u64,
}

const MAX_TRACE_EVENTS: usize = 262_144;

#[derive(Default)]
struct TraceBuffer {
    events: Vec<TraceEvent>,
    dropped: u64,
}

static TRACE: Mutex<Option<TraceBuffer>> = Mutex::new(None);

fn with_trace<T>(f: impl FnOnce(&mut TraceBuffer) -> T) -> T {
    let mut guard = TRACE.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(TraceBuffer::default))
}

fn push_event(ev: TraceEvent) {
    with_trace(|t| {
        if t.events.len() >= MAX_TRACE_EVENTS {
            t.dropped += 1;
        } else {
            t.events.push(ev);
        }
    });
}

/// Record an instant event (e.g. a fault injection or a worker respawn) at
/// the current time on the current thread.
pub fn instant(name: &'static str) {
    if !trace_enabled() {
        return;
    }
    push_event(TraceEvent {
        name,
        ts_us: epoch().elapsed().as_micros() as u64,
        dur_us: None,
        tid: thread_tid(),
    });
}

pub(crate) fn reset_trace() {
    with_trace(|t| {
        t.events.clear();
        t.dropped = 0;
    });
}

/// Serialize and clear the trace buffer as a Chrome JSON-object-format
/// trace (`{"traceEvents": [...]}`); returns `None` when nothing was
/// captured. All events share `pid` 1 — process attribution for cluster
/// runs comes from worker-side stats instead, since workers do not ship
/// trace buffers over the wire.
pub fn drain_trace_json() -> Option<String> {
    let (events, dropped) = with_trace(|t| {
        (
            std::mem::take(&mut t.events),
            std::mem::replace(&mut t.dropped, 0),
        )
    });
    if events.is_empty() {
        return None;
    }
    let mut w = JsonWriter::new();
    w.begin_object(None);
    w.begin_array(Some("traceEvents"));
    for ev in &events {
        w.begin_object(None);
        w.field_str("name", ev.name);
        w.field_str("cat", ev.name.split('.').next().unwrap_or("main"));
        match ev.dur_us {
            Some(dur) => {
                w.field_str("ph", "X");
                w.field_u64("ts", ev.ts_us);
                w.field_u64("dur", dur);
            }
            None => {
                w.field_str("ph", "i");
                w.field_u64("ts", ev.ts_us);
                w.field_str("s", "t");
            }
        }
        w.field_u64("pid", 1);
        w.field_u64("tid", ev.tid);
        w.end_object();
    }
    w.end_array();
    if dropped > 0 {
        w.field_u64("droppedEvents", dropped);
    }
    w.end_object();
    Some(w.into_string())
}

/// RAII timer handle; see [`crate::span!`]. When neither metrics nor
/// tracing is enabled the span is inert and never reads the clock.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    hist: &'static Histogram,
}

/// Start a span. Prefer the [`crate::span!`] macro, which caches the
/// histogram handle at the call site.
#[inline]
pub fn span_start(name: &'static str, hist: &'static Histogram) -> Span {
    let active = crate::enabled() || trace_enabled();
    Span {
        name,
        start: active.then(Instant::now),
        hist,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        self.hist.record(elapsed.as_nanos() as u64);
        if trace_enabled() {
            let end_us = epoch().elapsed().as_micros() as u64;
            let dur_us = elapsed.as_micros() as u64;
            push_event(TraceEvent {
                name: self.name,
                ts_us: end_us.saturating_sub(dur_us),
                dur_us: Some(dur_us),
                tid: thread_tid(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_trace_event() {
        let _guard = crate::TEST_GATE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_trace_enabled(true);
        {
            let _s = crate::span!("test.trace.span");
            std::thread::yield_now();
        }
        instant("test.trace.instant");
        set_trace_enabled(false);
        let json = drain_trace_json().expect("events captured");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"test.trace.span\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"test.trace.instant\""));
        assert!(json.contains("\"ph\":\"i\""));
        // Drained: a second call sees nothing new.
        assert!(drain_trace_json().is_none());
    }

    #[test]
    fn inert_span_is_free() {
        let _guard = crate::TEST_GATE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Neither gate enabled: the span must not capture a start time.
        let s = span_start(
            "test.trace.inert",
            crate::metrics::histogram("test.trace.inert"),
        );
        assert!(s.start.is_none());
    }
}

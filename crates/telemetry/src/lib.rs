//! # qismet-telemetry
//!
//! Zero-dependency observability substrate for the QISMET reproduction:
//! counters, gauges, fixed-bucket log2 histograms, and RAII span timers
//! behind one global registry, plus a per-slot fleet-health table for the
//! cluster coordinator, deterministic JSON metrics export, and a Chrome
//! `trace_event`-format trace writer (load the file in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev)).
//!
//! ## Design contract
//!
//! * **Never perturbs results.** Telemetry only observes wall-clock time
//!   and event counts; no simulation or scheduling decision may read it.
//!   Campaign reports with telemetry enabled are byte-identical to
//!   telemetry disabled (pinned by `bench/tests/telemetry_identity.rs`).
//! * **No-op when disabled.** Every hot-path hook is gated on one relaxed
//!   atomic load ([`enabled`]); when off, no locks are taken, no time is
//!   read, and no memory is written. The gate is a runtime switch (not a
//!   cargo feature) so one binary can pin on-vs-off identity in tests.
//! * **Offline-friendly.** Like the vendored shims, this crate has zero
//!   dependencies; JSON is emitted by a small writer in [`json`].
//!
//! ## Usage
//!
//! ```
//! use qismet_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::counter!("demo.requests").add(3);
//! {
//!     let _span = telemetry::span!("demo.work");
//!     // ... timed region; drop records a latency histogram sample ...
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("demo.requests"), 3);
//! telemetry::reset();
//! telemetry::set_enabled(false);
//! ```

pub mod buildinfo;
pub mod fleet;
pub mod json;
pub mod metrics;
pub mod trace;

pub use buildinfo::BuildInfo;
pub use fleet::{fleet_reset, fleet_snapshot, fleet_update, write_fleet_json, SlotHealth};
pub use metrics::{
    counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsSnapshot,
};
pub use trace::{drain_trace_json, instant, set_trace_enabled, span_start, trace_enabled, Span};

use std::sync::atomic::{AtomicBool, Ordering};

/// The metrics/trace gates are process-global, so unit tests that toggle
/// them serialize on this lock to keep `cargo test`'s parallel runner from
/// interleaving a toggle with an assertion.
#[cfg(test)]
pub(crate) static TEST_GATE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is globally enabled. One relaxed load — this is
/// the entire cost of every instrumentation hook while telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off. Pre-registered handles stay valid
/// across toggles; samples recorded while disabled are simply not taken.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zero every counter, gauge, and histogram, and clear events, the fleet
/// table, and the trace buffer. Handles previously returned by
/// [`counter`]/[`gauge`]/[`histogram`] remain valid (they are zeroed in
/// place), so call-site caches survive a reset.
pub fn reset() {
    metrics::reset_metrics();
    fleet::fleet_reset();
    trace::reset_trace();
}

/// Record a structured event (e.g. a worker respawn or a poisoned spec).
/// Events carry a process-wide sequence number and appear in the metrics
/// snapshot and, when tracing is on, as instant events in the trace.
pub fn event(kind: &'static str, detail: String) {
    if !enabled() {
        return;
    }
    metrics::record_event(kind, detail);
}

/// Serializes one complete metrics document — build provenance, the global
/// metrics snapshot (counters / gauges / histograms / events), and the
/// per-slot fleet health table — as a single JSON object. This is what
/// `campaign --metrics-out` writes and what the CI schema check validates.
pub fn metrics_json(build: &BuildInfo) -> String {
    let mut w = json::JsonWriter::new();
    w.begin_object(None);
    w.begin_object(Some("build"));
    w.field_str("version", &build.version);
    w.field_str("git_hash", &build.git_hash);
    w.field_str("target_features", &build.target_features);
    w.field_bool("parallel", build.parallel);
    w.end_object();
    snapshot().write_json(&mut w);
    write_fleet_json(&mut w, &fleet_snapshot());
    w.end_object();
    w.into_string()
}

/// Counter handle cached in a call-site static: one relaxed load to check
/// the gate, one registry lookup ever.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __H: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Gauge handle cached in a call-site static.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __H: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Histogram handle cached in a call-site static.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __H: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// RAII span timer: on drop, records the elapsed nanoseconds into the
/// histogram named `$name` and (when tracing is on) pushes a Chrome
/// `trace_event` complete event. Inert — no clock read — when disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span_start($name, {
            static __H: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
                ::std::sync::OnceLock::new();
            *__H.get_or_init(|| $crate::metrics::histogram($name))
        })
    };
}

//! Build provenance stamped by `build.rs`: which crate version, commit,
//! and ISA feature set produced a given artifact. Deterministic for a
//! given binary, so embedding it in reports preserves the cluster
//! byte-identity contract (every topology runs the same build).

/// Short git commit hash of the workspace at compile time, or `"unknown"`
/// outside a git checkout.
pub const GIT_HASH: &str = env!("QISMET_GIT_HASH");

/// Comma-separated enabled target features (e.g. `avx2,fma,...` under
/// `-C target-cpu=native`).
pub const TARGET_FEATURES: &str = env!("QISMET_TARGET_FEATURES");

/// Workspace crate version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Provenance record for reports and the cluster handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    pub version: String,
    pub git_hash: String,
    pub target_features: String,
    /// Whether the embedding binary was built with its `parallel` feature.
    /// Features are per-crate, so the caller supplies this
    /// (`cfg!(feature = "parallel")` evaluated where it means something).
    pub parallel: bool,
}

impl BuildInfo {
    pub fn current(parallel: bool) -> Self {
        Self {
            version: VERSION.to_string(),
            git_hash: GIT_HASH.to_string(),
            target_features: TARGET_FEATURES.to_string(),
            parallel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_is_populated() {
        let b = BuildInfo::current(false);
        assert!(!b.version.is_empty());
        assert!(!b.git_hash.is_empty());
    }
}

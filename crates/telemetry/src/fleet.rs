//! Per-slot fleet health for the cluster coordinator.
//!
//! Unlike the metric registry, the fleet table is **always on**: updates
//! happen only on coordinator control-plane transitions (assign, done,
//! respawn, strike, ping), which are orders of magnitude rarer than kernel
//! hot-path events, and the end-of-campaign per-slot summary table must
//! print even when no `--metrics-out` was requested (silently dropped
//! respawn/quarantine/poison events are exactly the failure mode this
//! module exists to fix).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::JsonWriter;

/// Health and throughput tallies for one coordinator slot (one logical
/// worker seat, across every respawned process that occupied it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotHealth {
    /// Specs handed to this slot (re-dispatches and duplicates included).
    pub assigned: u64,
    /// Specs whose result this slot delivered first.
    pub done: u64,
    /// Specs this slot computed that a speculative twin had already won.
    pub duplicates_lost: u64,
    /// Speculative assignments this slot won.
    pub speculative_won: u64,
    /// Times the coordinator relaunched a worker into this slot.
    pub respawns: u64,
    /// Lifetime strikes accrued toward quarantine.
    pub strikes: u64,
    /// Slot reached its quarantine threshold and was retired.
    pub quarantined: bool,
    /// Heartbeat pings received while this slot computed batches.
    pub pings: u64,
    /// Worker-reported heartbeat round-trip tallies (nanoseconds). The
    /// worker measures ping-send to pong-read; pong reads are deferred to
    /// batch boundaries, so this is an upper bound on wire RTT and is best
    /// read as "control-plane responsiveness while computing".
    pub rtt_ns_sum: u64,
    pub rtt_count: u64,
    pub rtt_ns_max: u64,
    /// Worker-reported execution tallies piggybacked on `Done` frames.
    pub worker_specs_done: u64,
    pub worker_eval_ns: u64,
    pub worker_plan_hits: u64,
    pub worker_plan_misses: u64,
    /// Most recent session-level error observed on this slot, if any.
    pub last_error: Option<String>,
}

impl SlotHealth {
    /// Mean heartbeat RTT in nanoseconds (0 when no pongs were matched).
    pub fn rtt_ns_mean(&self) -> u64 {
        self.rtt_ns_sum.checked_div(self.rtt_count).unwrap_or(0)
    }
}

static FLEET: Mutex<Option<BTreeMap<u64, SlotHealth>>> = Mutex::new(None);

/// Mutate (creating on first touch) the health record for `slot`.
pub fn fleet_update(slot: u64, f: impl FnOnce(&mut SlotHealth)) {
    let mut guard = FLEET.lock().unwrap_or_else(|e| e.into_inner());
    f(guard
        .get_or_insert_with(BTreeMap::new)
        .entry(slot)
        .or_default())
}

/// Owned copy of the fleet table, slot-ordered.
pub fn fleet_snapshot() -> Vec<(u64, SlotHealth)> {
    let mut guard = FLEET.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .get_or_insert_with(BTreeMap::new)
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect()
}

/// Clear the fleet table (e.g. between campaigns in one process).
pub fn fleet_reset() {
    let mut guard = FLEET.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(m) = guard.as_mut() {
        m.clear();
    }
}

/// Serialize the fleet table as a JSON array under the key `"fleet"`.
pub fn write_fleet_json(w: &mut JsonWriter, fleet: &[(u64, SlotHealth)]) {
    w.begin_array(Some("fleet"));
    for (slot, h) in fleet {
        w.begin_object(None);
        w.field_u64("slot", *slot);
        w.field_u64("assigned", h.assigned);
        w.field_u64("done", h.done);
        w.field_u64("duplicates_lost", h.duplicates_lost);
        w.field_u64("speculative_won", h.speculative_won);
        w.field_u64("respawns", h.respawns);
        w.field_u64("strikes", h.strikes);
        w.field_bool("quarantined", h.quarantined);
        w.field_u64("pings", h.pings);
        w.field_u64("heartbeat_rtt_ns_mean", h.rtt_ns_mean());
        w.field_u64("heartbeat_rtt_ns_max", h.rtt_ns_max);
        w.field_u64("worker_specs_done", h.worker_specs_done);
        w.field_u64("worker_eval_ns", h.worker_eval_ns);
        w.field_u64("worker_plan_hits", h.worker_plan_hits);
        w.field_u64("worker_plan_misses", h.worker_plan_misses);
        if let Some(e) = &h.last_error {
            w.field_str("last_error", e);
        }
        w.end_object();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_snapshot_roundtrip() {
        fleet_update(900_001, |s| {
            s.assigned += 4;
            s.done += 3;
            s.respawns += 1;
            s.last_error = Some("io: broken pipe".into());
        });
        fleet_update(900_001, |s| s.done += 1);
        let snap = fleet_snapshot();
        let (_, h) = snap.iter().find(|(k, _)| *k == 900_001).unwrap();
        assert_eq!(h.assigned, 4);
        assert_eq!(h.done, 4);
        assert_eq!(h.respawns, 1);
        assert_eq!(h.last_error.as_deref(), Some("io: broken pipe"));
    }

    #[test]
    fn rtt_mean_handles_zero_count() {
        let h = SlotHealth::default();
        assert_eq!(h.rtt_ns_mean(), 0);
    }
}

//! Counters, gauges, fixed-bucket log2 histograms, structured events, and
//! the global registry with deterministic JSON snapshot export.
//!
//! Handles are `&'static`: registration leaks one small allocation per
//! distinct metric name for the life of the process, which is what lets the
//! hot path touch a metric with a single atomic RMW and no lock. The
//! [`crate::counter!`]/[`crate::gauge!`]/[`crate::histogram!`] macros cache
//! the handle in a call-site `OnceLock` so the registry mutex is taken once
//! per call site, ever.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::JsonWriter;

/// Monotonic event counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous signed level (queue depths, active workers).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 buckets. Bucket `b` counts samples whose bit length is
/// `b` — i.e. values in `[2^(b-1), 2^b)` — with bucket 0 holding exactly
/// the zero samples and the last bucket absorbing everything `>= 2^62`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lock-free fixed-bucket log2 histogram of `u64` samples (nanoseconds, by
/// convention, for latency metrics). Concurrent `record` calls race only on
/// relaxed adds, so a snapshot taken mid-record may be momentarily
/// inconsistent between `count` and `sum`; campaign exports snapshot after
/// all workers join, where totals are exact.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a sample: its bit length, clamped to the top bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Owned copy of a histogram's state. Merging is bucketwise addition, so it
/// is associative and commutative with the empty snapshot as identity —
/// fleet-wide histograms can be folded from per-worker snapshots in any
/// order (pinned by unit tests below).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(other.buckets.len());
        let mut buckets = vec![0u64; n];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets.get(i).copied().unwrap_or(0)
                + other.buckets.get(i).copied().unwrap_or(0);
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), i.e. a power-of-two upper bound on the quantile.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One structured event (respawn, quarantine, poison, chaos fault, ...).
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Process-wide sequence number (order across kinds).
    pub seq: u64,
    pub kind: &'static str,
    pub detail: String,
}

const MAX_EVENTS: usize = 16_384;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
    events: Vec<EventRecord>,
    event_seq: u64,
    events_dropped: u64,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

/// Register (or look up) the counter named `name`. Prefer the
/// [`crate::counter!`] macro, which caches the returned handle.
pub fn counter(name: &'static str) -> &'static Counter {
    with_registry(|r| {
        *r.counters
            .entry(name)
            .or_insert_with(|| Box::leak(Box::default()))
    })
}

/// Register (or look up) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    with_registry(|r| {
        *r.gauges
            .entry(name)
            .or_insert_with(|| Box::leak(Box::default()))
    })
}

/// Register (or look up) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    with_registry(|r| {
        *r.histograms
            .entry(name)
            .or_insert_with(|| Box::leak(Box::default()))
    })
}

pub(crate) fn record_event(kind: &'static str, detail: String) {
    with_registry(|r| {
        r.event_seq += 1;
        if r.events.len() >= MAX_EVENTS {
            r.events_dropped += 1;
            return;
        }
        let seq = r.event_seq;
        r.events.push(EventRecord { seq, kind, detail });
    });
}

pub(crate) fn reset_metrics() {
    with_registry(|r| {
        for c in r.counters.values() {
            c.reset();
        }
        for g in r.gauges.values() {
            g.reset();
        }
        for h in r.histograms.values() {
            h.reset();
        }
        r.events.clear();
        r.event_seq = 0;
        r.events_dropped = 0;
    });
}

/// Owned, name-sorted copy of every registered metric plus the event log.
/// Zero-valued metrics are omitted from both the snapshot and its JSON so
/// exports only mention subsystems that actually ran.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub events: Vec<EventRecord>,
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialize to a deterministic JSON object (keys sorted by metric
    /// name; histograms exported as count/sum/max/mean plus the non-empty
    /// tail-trimmed bucket vector).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object(Some("counters"));
        for (name, v) in &self.counters {
            w.field_u64(name, *v);
        }
        w.end_object();
        w.begin_object(Some("gauges"));
        for (name, v) in &self.gauges {
            w.field_i64(name, *v);
        }
        w.end_object();
        w.begin_object(Some("histograms"));
        for (name, h) in &self.histograms {
            w.begin_object(Some(name));
            w.field_u64("count", h.count);
            w.field_u64("sum", h.sum);
            w.field_u64("max", h.max);
            w.field_f64("mean", h.mean());
            w.field_u64("p99_upper_bound", h.quantile_upper_bound(0.99));
            let last = h
                .buckets
                .iter()
                .rposition(|&b| b != 0)
                .map(|i| i + 1)
                .unwrap_or(0);
            w.begin_array(Some("log2_buckets"));
            for &b in &h.buckets[..last] {
                w.elem_u64(b);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.begin_array(Some("events"));
        for e in &self.events {
            w.begin_object(None);
            w.field_u64("seq", e.seq);
            w.field_str("kind", e.kind);
            w.field_str("detail", &e.detail);
            w.end_object();
        }
        w.end_array();
        if self.events_dropped > 0 {
            w.field_u64("events_dropped", self.events_dropped);
        }
    }
}

/// Take a consistent-enough snapshot of the whole registry. See
/// [`Histogram::snapshot`] for the (benign) concurrency caveat.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r
            .counters
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .filter(|(_, v)| *v != 0)
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(n, g)| (n.to_string(), g.get()))
            .filter(|(_, v)| *v != 0)
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(n, h)| (n.to_string(), h.snapshot()))
            .filter(|(_, h)| !h.is_empty())
            .collect(),
        events: r.events.clone(),
        events_dropped: r.events_dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::TEST_GATE_LOCK;

    fn with_enabled<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let out = f();
        crate::set_enabled(false);
        out
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        let c = counter("test.disabled.counter");
        let h = histogram("test.disabled.hist");
        c.add(5);
        h.record(123);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        with_enabled(|| {
            let h = histogram("test.hist.basic");
            h.record(0);
            h.record(1);
            h.record(900);
            h.record(1100);
            let s = h.snapshot();
            assert_eq!(s.count, 4);
            assert_eq!(s.sum, 2001);
            assert_eq!(s.max, 1100);
            assert_eq!(s.buckets[0], 1);
            assert_eq!(s.buckets[1], 1);
            assert_eq!(s.buckets[10], 1);
            assert_eq!(s.buckets[11], 1);
            assert!((s.mean() - 500.25).abs() < 1e-12);
            // p99 falls in the top occupied bucket: upper bound 2^11.
            assert_eq!(s.quantile_upper_bound(0.99), 2048);
            h.reset();
            assert_eq!(h.snapshot().count, 0);
        });
    }

    fn arb_snapshot(seed: u64) -> HistogramSnapshot {
        // Small deterministic LCG; keeps this crate dependency-free.
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut s = HistogramSnapshot::default();
        for _ in 0..32 {
            let v = next() % 100_000;
            s.buckets[bucket_index(v)] += 1;
            s.count += 1;
            s.sum += v;
            s.max = s.max.max(v);
        }
        s
    }

    #[test]
    fn merge_is_commutative() {
        for seed in 0..16u64 {
            let a = arb_snapshot(seed);
            let b = arb_snapshot(seed.wrapping_add(101));
            assert_eq!(a.merge(&b), b.merge(&a));
        }
    }

    #[test]
    fn merge_is_associative() {
        for seed in 0..16u64 {
            let a = arb_snapshot(seed);
            let b = arb_snapshot(seed.wrapping_add(101));
            let c = arb_snapshot(seed.wrapping_add(202));
            assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        }
    }

    #[test]
    fn merge_identity_is_empty() {
        let a = arb_snapshot(7);
        let id = HistogramSnapshot::default();
        assert_eq!(a.merge(&id), a);
        assert_eq!(id.merge(&a), a);
    }

    #[test]
    fn events_capped_not_lost_silently() {
        with_enabled(|| {
            record_event("test.evt", "x".into());
            let snap = snapshot();
            assert!(snap.events.iter().any(|e| e.kind == "test.evt"));
        });
    }
}

//! Stamps build provenance into the crate environment so reports and the
//! cluster handshake can record exactly what produced them. Everything here
//! degrades to a fixed placeholder when the information is unavailable
//! (no `.git` directory, no `git` binary), keeping offline builds green.

use std::process::Command;

fn git_hash() -> String {
    let out = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

fn main() {
    // Re-stamp when the checked-out commit moves. The paths may not exist
    // (e.g. a source tarball); cargo treats missing rerun paths as benign.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/refs");
    println!("cargo:rustc-env=QISMET_GIT_HASH={}", git_hash());
    // The enabled target features for this compilation (e.g. from
    // `-C target-cpu=native`), recorded so archived benchmark artifacts say
    // which ISA extensions the kernels were compiled against.
    let features = std::env::var("CARGO_CFG_TARGET_FEATURE").unwrap_or_default();
    println!("cargo:rustc-env=QISMET_TARGET_FEATURES={features}");
}

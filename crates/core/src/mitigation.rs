//! Measurement (readout) error mitigation.
//!
//! The paper's Baseline "employs measurement error mitigation" (Section 6.3)
//! via calibration circuits — the support circuits of Fig. 7. This module
//! implements the standard calibration-matrix approach: the assignment
//! matrix `A[measured][prepared]` is estimated (here: constructed from the
//! device model, as the calibration circuits would estimate it), and noisy
//! outcome distributions are corrected by solving `A x = p_noisy`, then
//! clipping and renormalizing the quasi-probabilities.
//!
//! Both the **full** `2^n x 2^n` inversion and the scalable **tensored**
//! per-qubit variant are provided.

use qismet_mathkit::{solve, RMatrix};
use qismet_qnoise::StaticNoiseModel;
use qismet_qsim::Counts;

/// Readout mitigation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationStrategy {
    /// Invert the full `2^n x 2^n` assignment matrix (exact for correlated
    /// models; exponential cost — fine at paper scale, n <= 6).
    Full,
    /// Invert per-qubit `2x2` matrices (assumes uncorrelated readout).
    Tensored,
}

/// A compiled mitigator for a device model.
#[derive(Debug, Clone)]
pub struct ReadoutMitigator {
    n_qubits: usize,
    strategy: MitigationStrategy,
    /// Per-qubit inverted 2x2 assignment matrices.
    inv_1q: Vec<[[f64; 2]; 2]>,
    /// Full assignment matrix (built lazily only for `Full`).
    full: Option<RMatrix>,
}

/// Errors from mitigation.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigationError {
    /// The calibration matrix is singular (pathological error rates).
    SingularCalibration,
    /// Width mismatch between counts and mitigator.
    WidthMismatch {
        /// Mitigator width.
        expected: usize,
        /// Counts width.
        got: usize,
    },
}

impl std::fmt::Display for MitigationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MitigationError::SingularCalibration => {
                write!(f, "readout calibration matrix is singular")
            }
            MitigationError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "mitigator built for {expected} qubits, counts have {got}"
                )
            }
        }
    }
}

impl std::error::Error for MitigationError {}

impl ReadoutMitigator {
    /// Builds a mitigator from the device model's readout probabilities for
    /// its first `n_qubits` qubits.
    ///
    /// # Errors
    ///
    /// [`MitigationError::SingularCalibration`] when a qubit's flip
    /// probabilities sum to ~1 (non-invertible 2x2).
    ///
    /// # Panics
    ///
    /// Panics if the model has fewer than `n_qubits` qubits.
    pub fn from_model(
        model: &StaticNoiseModel,
        n_qubits: usize,
        strategy: MitigationStrategy,
    ) -> Result<Self, MitigationError> {
        assert!(model.n_qubits() >= n_qubits, "model too narrow");
        let mut inv_1q = Vec::with_capacity(n_qubits);
        for q in 0..n_qubits {
            let a = model.assignment_matrix_1q(q);
            let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
            if det.abs() < 1e-9 {
                return Err(MitigationError::SingularCalibration);
            }
            inv_1q.push([
                [a[1][1] / det, -a[0][1] / det],
                [-a[1][0] / det, a[0][0] / det],
            ]);
        }
        let full = match strategy {
            MitigationStrategy::Tensored => None,
            MitigationStrategy::Full => {
                let dim = 1usize << n_qubits;
                let mut m = RMatrix::zeros(dim, dim);
                for measured in 0..dim {
                    for prepared in 0..dim {
                        let mut p = 1.0;
                        for q in 0..n_qubits {
                            let a = model.assignment_matrix_1q(q);
                            let mb = measured >> q & 1;
                            let pb = prepared >> q & 1;
                            p *= a[mb][pb];
                        }
                        m.set(measured, prepared, p);
                    }
                }
                Some(m)
            }
        };
        Ok(ReadoutMitigator {
            n_qubits,
            strategy,
            inv_1q,
            full,
        })
    }

    /// Width the mitigator was built for.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The strategy in use.
    pub fn strategy(&self) -> MitigationStrategy {
        self.strategy
    }

    /// Number of calibration (support) circuits the strategy would execute
    /// on hardware: `2^n` basis states for full, `2` for tensored.
    pub fn calibration_circuits(&self) -> usize {
        match self.strategy {
            MitigationStrategy::Full => 1usize << self.n_qubits,
            MitigationStrategy::Tensored => 2,
        }
    }

    /// Corrects a noisy outcome distribution, returning a clipped and
    /// renormalized probability vector of length `2^n`.
    ///
    /// # Errors
    ///
    /// * [`MitigationError::WidthMismatch`] for wrong-width counts.
    /// * [`MitigationError::SingularCalibration`] if the full matrix solve
    ///   fails.
    pub fn mitigate(&self, counts: &Counts) -> Result<Vec<f64>, MitigationError> {
        if counts.n_qubits() != self.n_qubits {
            return Err(MitigationError::WidthMismatch {
                expected: self.n_qubits,
                got: counts.n_qubits(),
            });
        }
        let p_noisy = counts.to_distribution();
        let mut quasi = match (&self.full, self.strategy) {
            (Some(a), MitigationStrategy::Full) => {
                solve(a, &p_noisy).map_err(|_| MitigationError::SingularCalibration)?
            }
            _ => self.tensored_apply(&p_noisy),
        };
        // Clip negatives and renormalize (the standard quasi-probability
        // projection).
        for v in &mut quasi {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let total: f64 = quasi.iter().sum();
        if total > 0.0 {
            for v in &mut quasi {
                *v /= total;
            }
        }
        Ok(quasi)
    }

    /// Applies the tensored inverse: for each qubit, the 2x2 inverse acts on
    /// the distribution along that qubit's axis.
    fn tensored_apply(&self, p: &[f64]) -> Vec<f64> {
        let mut cur = p.to_vec();
        let dim = cur.len();
        for (q, inv) in self.inv_1q.iter().enumerate() {
            let stride = 1usize << q;
            let mut base = 0usize;
            while base < dim {
                for off in base..base + stride {
                    let i0 = off;
                    let i1 = off + stride;
                    let a0 = cur[i0];
                    let a1 = cur[i1];
                    cur[i0] = inv[0][0] * a0 + inv[0][1] * a1;
                    cur[i1] = inv[1][0] * a0 + inv[1][1] * a1;
                }
                base += stride << 1;
            }
        }
        cur
    }

    /// Mitigated expectation of a Z-parity observable over `mask`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::mitigate`] failures.
    pub fn parity_expectation(&self, counts: &Counts, mask: u64) -> Result<f64, MitigationError> {
        let p = self.mitigate(counts)?;
        let mut acc = 0.0;
        for (idx, &prob) in p.iter().enumerate() {
            let parity = (idx as u64 & mask).count_ones() % 2;
            acc += if parity == 0 { prob } else { -prob };
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;
    use qismet_qsim::{Circuit, StateVector};

    fn model(readout: f64) -> StaticNoiseModel {
        StaticNoiseModel::uniform(3, 100.0, 90.0, 0.0, 0.0, readout)
    }

    fn bell3() -> Counts {
        // GHZ-ish distribution measured through readout errors.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let sv = StateVector::from_circuit(&c).unwrap();
        let mut rng = rng_from_seed(3);
        let clean = sv.sample_counts(&mut rng, 100_000);
        model(0.06).apply_readout_errors(&clean, &mut rng)
    }

    #[test]
    fn full_mitigation_recovers_ghz_distribution() {
        let noisy = bell3();
        // Unmitigated: probability mass leaked off 000/111.
        let raw = noisy.to_distribution();
        assert!(raw[0] < 0.47);
        let mit = ReadoutMitigator::from_model(&model(0.06), 3, MitigationStrategy::Full).unwrap();
        let fixed = mit.mitigate(&noisy).unwrap();
        assert!((fixed[0] - 0.5).abs() < 0.02, "p(000) = {}", fixed[0]);
        assert!((fixed[7] - 0.5).abs() < 0.02, "p(111) = {}", fixed[7]);
        let leak: f64 = fixed[1..7].iter().sum();
        assert!(leak < 0.03, "leaked mass {leak}");
    }

    #[test]
    fn tensored_matches_full_for_uncorrelated_noise() {
        let noisy = bell3();
        let full = ReadoutMitigator::from_model(&model(0.06), 3, MitigationStrategy::Full).unwrap();
        let tens =
            ReadoutMitigator::from_model(&model(0.06), 3, MitigationStrategy::Tensored).unwrap();
        let a = full.mitigate(&noisy).unwrap();
        let b = tens.mitigate(&noisy).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn parity_expectation_corrected() {
        let noisy = bell3();
        let raw_zz = noisy.parity_expectation(0b111);
        let mit =
            ReadoutMitigator::from_model(&model(0.06), 3, MitigationStrategy::Tensored).unwrap();
        let fixed = mit.parity_expectation(&noisy, 0b111).unwrap();
        // GHZ has <ZZZ> = 0 analytically? No: |000>+|111>: ZZZ parity:
        // 000 -> +, 111 -> odd popcount=3 -> -. Expectation = 0.
        assert!(fixed.abs() <= raw_zz.abs() + 0.02);
        // <ZZ over first two qubits> = +1 ideally.
        let fixed_zz = mit.parity_expectation(&noisy, 0b011).unwrap();
        let raw_zz2 = noisy.parity_expectation(0b011);
        assert!(
            fixed_zz > raw_zz2,
            "mitigation should raise {raw_zz2} -> {fixed_zz}"
        );
        assert!((fixed_zz - 1.0).abs() < 0.03, "fixed ZZ = {fixed_zz}");
    }

    #[test]
    fn mitigated_distribution_is_normalized_probability() {
        let noisy = bell3();
        let mit = ReadoutMitigator::from_model(&model(0.06), 3, MitigationStrategy::Full).unwrap();
        let p = mit.mitigate(&noisy).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zero_error_model_is_identity() {
        let clean = Counts::from_pairs(3, [(0b101, 700), (0b010, 300)]);
        let mit = ReadoutMitigator::from_model(&model(0.0), 3, MitigationStrategy::Full).unwrap();
        let p = mit.mitigate(&clean).unwrap();
        assert!((p[0b101] - 0.7).abs() < 1e-9);
        assert!((p[0b010] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn width_mismatch_detected() {
        let mit = ReadoutMitigator::from_model(&model(0.01), 3, MitigationStrategy::Full).unwrap();
        let wrong = Counts::from_pairs(2, [(0, 10)]);
        assert!(matches!(
            mit.mitigate(&wrong),
            Err(MitigationError::WidthMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn calibration_circuit_counts() {
        let full = ReadoutMitigator::from_model(&model(0.01), 3, MitigationStrategy::Full).unwrap();
        assert_eq!(full.calibration_circuits(), 8);
        let tens =
            ReadoutMitigator::from_model(&model(0.01), 3, MitigationStrategy::Tensored).unwrap();
        assert_eq!(tens.calibration_circuits(), 2);
    }

    #[test]
    fn singular_calibration_rejected() {
        let mut m = model(0.0);
        for q in &mut m.qubits {
            q.readout_p01 = 0.5;
            q.readout_p10 = 0.5;
        }
        assert_eq!(
            ReadoutMitigator::from_model(&m, 3, MitigationStrategy::Tensored).unwrap_err(),
            MitigationError::SingularCalibration
        );
    }
}

//! The quantum-job model of Fig. 7.
//!
//! A *job* is the unit of submission to the quantum machine: a batch of
//! independent circuits that execute close together in time and therefore
//! share a noise environment. QISMET structures each job as
//!
//! * **primary** circuits — the new VQA iteration's evaluations,
//! * **repeat** circuits — the previous iteration's circuit, re-run as the
//!   transient reference,
//! * **support** circuits — error-mitigation calibration circuits
//!   (e.g. readout calibration), present in both baseline and QISMET runs.

use serde::{Deserialize, Serialize};

/// Role of a circuit inside a job (the colored boxes of Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CircuitRole {
    /// New iteration's circuits (orange/blue boxes).
    Primary,
    /// Previous iteration's repeated circuits (yellow boxes).
    Repeat,
    /// Error-mitigation support circuits (dark gray boxes).
    Support,
}

/// One circuit slot in a job: the parameters it binds and its role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitSpec {
    /// Role inside the job.
    pub role: CircuitRole,
    /// Bound parameter vector (empty for parameterless support circuits).
    pub params: Vec<f64>,
    /// VQA iteration index this circuit belongs to.
    pub iteration: usize,
}

/// A quantum job: an indexed batch of circuit specs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Job {
    /// Global job index (the transient-trace key).
    pub index: usize,
    /// The circuits, in submission order.
    pub circuits: Vec<CircuitSpec>,
}

impl Job {
    /// Creates an empty job.
    pub fn new(index: usize) -> Self {
        Job {
            index,
            circuits: Vec::new(),
        }
    }

    /// Adds a circuit and returns `self` for chaining.
    pub fn with_circuit(mut self, role: CircuitRole, params: Vec<f64>, iteration: usize) -> Self {
        self.circuits.push(CircuitSpec {
            role,
            params,
            iteration,
        });
        self
    }

    /// Number of circuits with a given role.
    pub fn count(&self, role: CircuitRole) -> usize {
        self.circuits.iter().filter(|c| c.role == role).count()
    }

    /// Total circuits in the job.
    pub fn len(&self) -> usize {
        self.circuits.len()
    }

    /// `true` when the job carries no circuits.
    pub fn is_empty(&self) -> bool {
        self.circuits.is_empty()
    }

    /// Builds the QISMET job layout for one iteration attempt:
    /// `n_primary` primary circuits for `iteration`, one repeat circuit for
    /// `iteration - 1`, and `n_support` support circuits.
    pub fn qismet_layout(
        index: usize,
        iteration: usize,
        primary_params: &[Vec<f64>],
        repeat_params: Vec<f64>,
        n_support: usize,
    ) -> Self {
        let mut job = Job::new(index);
        for p in primary_params {
            job.circuits.push(CircuitSpec {
                role: CircuitRole::Primary,
                params: p.clone(),
                iteration,
            });
        }
        job.circuits.push(CircuitSpec {
            role: CircuitRole::Repeat,
            params: repeat_params,
            iteration: iteration.saturating_sub(1),
        });
        for _ in 0..n_support {
            job.circuits.push(CircuitSpec {
                role: CircuitRole::Support,
                params: Vec::new(),
                iteration,
            });
        }
        job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_counts() {
        let job = Job::qismet_layout(7, 3, &[vec![0.1], vec![0.2], vec![0.3]], vec![0.0], 4);
        assert_eq!(job.index, 7);
        assert_eq!(job.count(CircuitRole::Primary), 3);
        assert_eq!(job.count(CircuitRole::Repeat), 1);
        assert_eq!(job.count(CircuitRole::Support), 4);
        assert_eq!(job.len(), 8);
        assert!(!job.is_empty());
    }

    #[test]
    fn repeat_points_to_previous_iteration() {
        let job = Job::qismet_layout(0, 5, &[vec![1.0]], vec![2.0], 0);
        let repeat = job
            .circuits
            .iter()
            .find(|c| c.role == CircuitRole::Repeat)
            .unwrap();
        assert_eq!(repeat.iteration, 4);
        assert_eq!(repeat.params, vec![2.0]);
    }

    #[test]
    fn builder_chain() {
        let job = Job::new(1)
            .with_circuit(CircuitRole::Primary, vec![0.5], 0)
            .with_circuit(CircuitRole::Support, vec![], 0);
        assert_eq!(job.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let job = Job::qismet_layout(2, 1, &[vec![0.1]], vec![0.2], 1);
        let json = serde_json::to_string(&job).unwrap();
        let back: Job = serde_json::from_str(&json).unwrap();
        assert_eq!(job, back);
    }
}

//! The gradient-faithful QISMET controller (paper Fig. 9).
//!
//! An iteration is accepted only when the machine-observed gradient `Gm` and
//! the predicted transient-free gradient `Gp` point the same way — scenarios
//! (a), (b), (d), (e) of Fig. 9 — or when both gradients sit inside the
//! error-threshold band (the shaded region, which "avoids frequent skipping
//! on less impacting transients"). Direction flips — scenarios (c) and (f) —
//! are rejected: they would let a truly bad configuration be perceived as
//! good, or vice versa.

use crate::estimator::TransientEstimate;

/// Why the controller decided the way it did (Fig. 9 scenario labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// (a)/(b): both gradients positive — direction preserved.
    BothPositive,
    /// (d)/(e): both gradients negative — direction preserved.
    BothNegative,
    /// Shaded band: both gradients within the threshold region.
    WithinThreshold,
    /// (c): machine says worse, prediction says better — a good
    /// configuration would be discarded.
    FlipGoodHiddenAsBad,
    /// (f): machine says better, prediction says worse — a bad
    /// configuration would be adopted.
    FlipBadDisguisedAsGood,
}

/// The controller's verdict on one iteration attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Accept the iteration?
    pub accept: bool,
    /// Which Fig. 9 scenario produced the verdict.
    pub reason: DecisionReason,
    /// The transient estimate magnitude that informed the verdict.
    pub tm: f64,
}

/// Decides acceptance for a transient estimate under an error threshold.
///
/// `threshold` is the half-width of the always-accept band: gradients with
/// magnitude at most `threshold` are treated as direction-neutral. A
/// non-finite threshold (calibration warmup) accepts everything.
///
/// # Examples
///
/// ```
/// use qismet::{decide, TransientEstimate};
/// // Machine sees +0.5, prediction says -0.3: scenario (f), reject.
/// let est = TransientEstimate::new(-1.0, -0.2, -0.5);
/// let d = decide(&est, 0.05);
/// assert!(!d.accept);
/// ```
pub fn decide(est: &TransientEstimate, threshold: f64) -> Decision {
    let gm = est.gm();
    let gp = est.gp();
    let tm = est.tm();
    if !threshold.is_finite() {
        return Decision {
            accept: true,
            reason: DecisionReason::WithinThreshold,
            tm,
        };
    }
    let thr = threshold.max(0.0);
    // Classify each gradient: positive / negative / inside the band.
    let gm_pos = gm > thr;
    let gm_neg = gm < -thr;
    let gp_pos = gp > thr;
    let gp_neg = gp < -thr;

    if !gm_pos && !gm_neg && !gp_pos && !gp_neg {
        return Decision {
            accept: true,
            reason: DecisionReason::WithinThreshold,
            tm,
        };
    }
    if gm_pos && gp_neg {
        // Machine perceives worsening but prediction says the candidate is
        // truly good: accepting the *energy estimate* would mislabel a good
        // configuration — Fig. 9 (c).
        return Decision {
            accept: false,
            reason: DecisionReason::FlipGoodHiddenAsBad,
            tm,
        };
    }
    if gm_neg && gp_pos {
        // Fig. 9 (f): a truly bad configuration perceived as good.
        return Decision {
            accept: false,
            reason: DecisionReason::FlipBadDisguisedAsGood,
            tm,
        };
    }
    // Directions agree (one of them may be inside the band, which counts as
    // agreement).
    let reason = if gm_pos || gp_pos {
        DecisionReason::BothPositive
    } else {
        DecisionReason::BothNegative
    };
    Decision {
        accept: true,
        reason,
        tm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(gm: f64, tm: f64) -> TransientEstimate {
        // Construct measurements with Em(i) = -1 that produce the requested
        // Gm and Tm (then Gp = Gm - Tm).
        TransientEstimate::new(-1.0, -1.0 + tm, -1.0 + gm)
    }

    #[test]
    fn scenario_a_b_both_positive_accepted() {
        // Gm = +0.5, Tm = +0.1 -> Gp = +0.4: accept.
        let d = decide(&est(0.5, 0.1), 0.05);
        assert!(d.accept);
        assert_eq!(d.reason, DecisionReason::BothPositive);
    }

    #[test]
    fn scenario_d_e_both_negative_accepted() {
        let d = decide(&est(-0.5, -0.1), 0.05);
        assert!(d.accept);
        assert_eq!(d.reason, DecisionReason::BothNegative);
    }

    #[test]
    fn scenario_c_rejected() {
        // Machine positive, prediction negative: Gm = +0.3, Tm = +0.7 ->
        // Gp = -0.4.
        let d = decide(&est(0.3, 0.7), 0.05);
        assert!(!d.accept);
        assert_eq!(d.reason, DecisionReason::FlipGoodHiddenAsBad);
    }

    #[test]
    fn scenario_f_rejected() {
        // Machine negative, prediction positive: Gm = -0.3, Tm = -0.7 ->
        // Gp = +0.4.
        let d = decide(&est(-0.3, -0.7), 0.05);
        assert!(!d.accept);
        assert_eq!(d.reason, DecisionReason::FlipBadDisguisedAsGood);
    }

    #[test]
    fn threshold_band_always_accepts() {
        // Tiny opposing swings inside the band.
        let d = decide(&est(0.03, 0.05), 0.1);
        assert!(d.accept);
        assert_eq!(d.reason, DecisionReason::WithinThreshold);
    }

    #[test]
    fn band_edge_behavior() {
        // Gm just above the band, Gp just below -band: reject.
        let d = decide(&est(0.11, 0.23), 0.1);
        assert!(!d.accept);
        // Gm above band, Gp inside band: counts as agreement -> accept.
        let d = decide(&est(0.2, 0.15), 0.1);
        assert!(d.accept);
    }

    #[test]
    fn warmup_threshold_accepts_everything() {
        let d = decide(&est(5.0, -10.0), f64::NAN);
        assert!(d.accept);
    }

    #[test]
    fn larger_threshold_skips_less() {
        // The same flip scenario, tolerated at a coarse threshold.
        let e = est(0.3, 0.7);
        assert!(!decide(&e, 0.05).accept);
        assert!(decide(&e, 0.5).accept);
    }

    #[test]
    fn decision_reports_tm() {
        let d = decide(&est(0.2, 0.6), 0.05);
        assert!((d.tm - 0.6).abs() < 1e-12);
    }
}

//! Error-threshold calibration from a target skip rate.
//!
//! Section 6.3: "The QISMET error threshold is set so as to skip at most 10%
//! of the iterations", with the conservative/aggressive variants at 1% / 25%
//! and Fig. 19 naming thresholds by the |Tm| percentile they correspond to
//! (99p / 90p / 75p). The calibrator keeps an online history of |Tm|
//! estimates and exposes the configured percentile as the controller's
//! threshold.

use serde::{Deserialize, Serialize};

/// Skip-rate presets from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SkipTarget {
    /// Skip at most ~1% of iterations (`99p`, "QISMET-conservative").
    Conservative,
    /// Skip at most ~10% (`90p`, the paper's best trade-off).
    Best,
    /// Skip at most ~25% (`75p`, "QISMET-aggressive").
    Aggressive,
    /// Custom maximum skip fraction in `(0, 1)`.
    Custom(f64),
}

impl SkipTarget {
    /// The |Tm| percentile that realizes the target skip rate.
    pub fn percentile(self) -> f64 {
        match self {
            SkipTarget::Conservative => 99.0,
            SkipTarget::Best => 90.0,
            SkipTarget::Aggressive => 75.0,
            SkipTarget::Custom(f) => 100.0 * (1.0 - f.clamp(1e-6, 0.999)),
        }
    }

    /// Paper-style label (`"90p"`).
    pub fn label(self) -> String {
        format!("{:.0}p", self.percentile())
    }
}

/// Online threshold calibrator targeting a skip *rate*.
///
/// Section 6.3: "The QISMET error threshold is set so as to skip at most
/// 10% of the iterations." The calibrator realizes that spec directly:
/// starting from a percentile of the observed |Tm| history, it servoes the
/// threshold with a stochastic-approximation quantile tracker — every
/// skipped attempt nudges the threshold up (we are skipping, so demand more
/// evidence), every accepted one nudges it down, with step sizes balanced so
/// the long-run skip fraction settles at the target.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdCalibrator {
    target: SkipTarget,
    history: Vec<f64>,
    warmup: usize,
    capacity: usize,
    adaptive: Option<f64>,
}

impl ThresholdCalibrator {
    /// Creates a calibrator; the threshold is `NaN` (accept-everything)
    /// until `warmup` observations arrive.
    pub fn new(target: SkipTarget, warmup: usize) -> Self {
        ThresholdCalibrator {
            target,
            history: Vec::new(),
            warmup: warmup.max(2),
            capacity: 4096,
            adaptive: None,
        }
    }

    /// The configured target.
    pub fn target(&self) -> SkipTarget {
        self.target
    }

    /// The target skip fraction (e.g. 0.10 for [`SkipTarget::Best`]).
    pub fn target_fraction(&self) -> f64 {
        1.0 - self.target.percentile() / 100.0
    }

    /// Records one |Tm| observation.
    pub fn observe(&mut self, tm: f64) {
        self.history.push(tm.abs());
        if self.history.len() > self.capacity {
            self.history.remove(0);
        }
    }

    /// Feeds back the controller's decision for the current attempt so the
    /// threshold servoes toward the target skip rate.
    pub fn record_decision(&mut self, skipped: bool) {
        let Some(thr) = self.adaptive_threshold() else {
            return;
        };
        let target = self.target_fraction();
        // Quantile-tracking step: scale relative to the |Tm| spread.
        let scale = qismet_mathkit::percentile(&self.history, 75.0).max(1e-9);
        let eta = 0.05 * scale;
        let next = if skipped {
            thr + eta * (1.0 - target)
        } else {
            thr - eta * target
        };
        self.adaptive = Some(next.max(0.0));
    }

    fn adaptive_threshold(&mut self) -> Option<f64> {
        if self.history.len() < self.warmup {
            return None;
        }
        if self.adaptive.is_none() {
            // Seed from the |Tm| percentile the paper names (99p/90p/75p).
            self.adaptive = Some(qismet_mathkit::percentile(
                &self.history,
                self.target.percentile(),
            ));
        }
        self.adaptive
    }

    /// The current threshold, or `NaN` during warmup.
    pub fn threshold(&mut self) -> f64 {
        self.adaptive_threshold().unwrap_or(f64::NAN)
    }

    /// Observations recorded so far.
    pub fn observations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::{normal, rng_from_seed};

    #[test]
    fn preset_percentiles_match_paper() {
        assert_eq!(SkipTarget::Conservative.percentile(), 99.0);
        assert_eq!(SkipTarget::Best.percentile(), 90.0);
        assert_eq!(SkipTarget::Aggressive.percentile(), 75.0);
        assert_eq!(SkipTarget::Best.label(), "90p");
        assert!((SkipTarget::Custom(0.05).percentile() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_gives_nan() {
        let mut c = ThresholdCalibrator::new(SkipTarget::Best, 10);
        for _ in 0..9 {
            c.observe(1.0);
        }
        assert!(c.threshold().is_nan());
        c.observe(1.0);
        assert!(c.threshold().is_finite());
    }

    #[test]
    fn threshold_seeds_from_percentile_of_gaussian() {
        let mut c = ThresholdCalibrator::new(SkipTarget::Best, 16);
        let mut rng = rng_from_seed(5);
        for _ in 0..20_000 {
            c.observe(normal(&mut rng, 0.0, 1.0));
        }
        // 90th percentile of |N(0,1)| is ~1.6449.
        let thr = c.threshold();
        assert!((thr - 1.6449).abs() < 0.1, "threshold {thr}");
    }

    #[test]
    fn aggressive_threshold_is_lower() {
        let mut best = ThresholdCalibrator::new(SkipTarget::Best, 16);
        let mut aggr = ThresholdCalibrator::new(SkipTarget::Aggressive, 16);
        let mut cons = ThresholdCalibrator::new(SkipTarget::Conservative, 16);
        let mut rng = rng_from_seed(6);
        for _ in 0..5000 {
            let v = normal(&mut rng, 0.0, 1.0);
            best.observe(v);
            aggr.observe(v);
            cons.observe(v);
        }
        assert!(aggr.threshold() < best.threshold());
        assert!(best.threshold() < cons.threshold());
    }

    #[test]
    fn servo_converges_to_target_skip_rate() {
        // Simulate a controller that skips whenever |Tm| > threshold; the
        // servo should settle so ~10% of attempts are skipped.
        let mut c = ThresholdCalibrator::new(SkipTarget::Best, 16);
        let mut rng = rng_from_seed(7);
        let mut skips = 0usize;
        let n = 30_000;
        for _ in 0..n {
            let tm = normal(&mut rng, 0.0, 1.0);
            c.observe(tm);
            let thr = c.threshold();
            let skip = thr.is_finite() && tm.abs() > thr;
            if skip {
                skips += 1;
            }
            c.record_decision(skip);
        }
        let rate = skips as f64 / n as f64;
        assert!(
            (rate - 0.10).abs() < 0.03,
            "servo skip rate {rate}, want ~0.10"
        );
    }

    #[test]
    fn servo_raises_threshold_when_overskipping() {
        let mut c = ThresholdCalibrator::new(SkipTarget::Best, 4);
        for _ in 0..8 {
            c.observe(1.0);
        }
        let before = c.threshold();
        for _ in 0..50 {
            c.record_decision(true);
        }
        assert!(c.threshold() > before);
    }

    #[test]
    fn target_fractions() {
        let mut c = ThresholdCalibrator::new(SkipTarget::Best, 2);
        assert!((c.target_fraction() - 0.10).abs() < 1e-12);
        let _ = c.threshold();
        let c = ThresholdCalibrator::new(SkipTarget::Aggressive, 2);
        assert!((c.target_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn history_is_bounded() {
        let mut c = ThresholdCalibrator::new(SkipTarget::Best, 4);
        for _ in 0..10_000 {
            c.observe(1.0);
        }
        assert!(c.observations() <= 4096);
    }
}

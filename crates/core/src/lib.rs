//! # qismet
//!
//! **QISMET: Quantum Iteration Skipping to Mitigate Error Transients** —
//! the core library of this reproduction of Ravi et al., ASPLOS 2023
//! (DOI 10.1145/3575693.3575739).
//!
//! NISQ devices exhibit *transient* noise: sudden, short-lived shifts in
//! qubit characteristics (TLS defects, thermal fluctuations) that flip the
//! per-iteration gradient directions a variational quantum algorithm's
//! classical tuner relies on. QISMET defends the tuner:
//!
//! 1. **Estimate** ([`TransientEstimate`], Fig. 8): each job re-runs the
//!    previous iteration's circuit; the difference between its two
//!    executions estimates the transient `Tm`, from which a transient-free
//!    energy `Ep` and gradient `Gp` are predicted.
//! 2. **Decide** ([`decide`], Fig. 9): accept the iteration only when the
//!    machine gradient `Gm` and prediction `Gp` agree in direction (or both
//!    sit inside the calibrated threshold band).
//! 3. **Retry** ([`run_qismet`], Fig. 7): rejected iterations re-execute in
//!    a fresh job, at most [`QismetConfig::retry_budget`] times, then
//!    force-accept so genuine device drift is adapted to.
//!
//! Thresholds calibrate online from the |Tm| history to a target skip rate
//! ([`ThresholdCalibrator`]; the paper's `99p`/`90p`/`75p`). The crate also
//! ships the comparison machinery the paper evaluates against
//! ([`run_only_transients`], [`run_filtered_baseline`]), readout-error
//! mitigation ([`ReadoutMitigator`]) matching the baseline's setup, the
//! Fig. 7 job model ([`Job`]), and the Section 8.3 overhead accounting
//! ([`overhead_report`]).
//!
//! # Examples
//!
//! Running QISMET against the paper's App2 at reduced scale:
//!
//! ```
//! use qismet::{run_qismet, QismetConfig};
//! use qismet_optim::{GainSchedule, Spsa};
//! use qismet_vqa::AppSpec;
//!
//! let mut app = AppSpec::by_id(2).unwrap().build(400, Some(0.2), 42);
//! let mut spsa = Spsa::new(app.theta0.len(), GainSchedule::spall_default(), 1);
//! let record = run_qismet(
//!     &mut spsa,
//!     &mut app.objective,
//!     app.theta0.clone(),
//!     50,
//!     QismetConfig::paper_default(),
//! );
//! assert_eq!(record.record.measured.len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod controller;
mod estimator;
mod job;
mod mitigation;
mod overhead;
mod runner;
mod threshold;

pub use config::QismetConfig;
pub use controller::{decide, Decision, DecisionReason};
pub use estimator::TransientEstimate;
pub use job::{CircuitRole, CircuitSpec, Job};
pub use mitigation::{MitigationError, MitigationStrategy, ReadoutMitigator};
pub use overhead::{overhead_report, JobComposition, OverheadReport};
pub use runner::{
    run_filtered_baseline, run_only_transients, run_only_transients_budgeted, run_qismet,
    run_qismet_budgeted, QismetRecord,
};
pub use threshold::{SkipTarget, ThresholdCalibrator};

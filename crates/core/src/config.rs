//! QISMET configuration.

use crate::threshold::SkipTarget;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the QISMET framework (Section 8.1 names exactly
/// two: the error threshold and the retry budget).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QismetConfig {
    /// Target skip rate, realized as a |Tm| percentile threshold.
    pub skip_target: SkipTarget,
    /// Maximum repetitions of a rejected iteration before force-accepting
    /// ("max-out"); the paper fixes this to 5.
    pub retry_budget: usize,
    /// Controller warmup: iterations accepted unconditionally while the
    /// threshold calibrates.
    pub warmup: usize,
}

impl QismetConfig {
    /// The paper's evaluated configuration: skip at most 10% (`90p`), retry
    /// budget 5.
    pub fn paper_default() -> Self {
        QismetConfig {
            skip_target: SkipTarget::Best,
            retry_budget: 5,
            warmup: 16,
        }
    }

    /// QISMET-conservative (`99p`, at most ~1% skips).
    pub fn conservative() -> Self {
        QismetConfig {
            skip_target: SkipTarget::Conservative,
            ..Self::paper_default()
        }
    }

    /// QISMET-aggressive (`75p`, at most ~25% skips).
    pub fn aggressive() -> Self {
        QismetConfig {
            skip_target: SkipTarget::Aggressive,
            ..Self::paper_default()
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.retry_budget == 0 {
            return Err("retry_budget must be at least 1".into());
        }
        if let SkipTarget::Custom(f) = self.skip_target {
            if !(0.0..1.0).contains(&f) || f <= 0.0 {
                return Err("custom skip fraction must be in (0, 1)".into());
            }
        }
        Ok(())
    }
}

impl Default for QismetConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = QismetConfig::paper_default();
        assert_eq!(c.retry_budget, 5);
        assert_eq!(c.skip_target, SkipTarget::Best);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn presets_differ_in_target_only() {
        let a = QismetConfig::conservative();
        let b = QismetConfig::aggressive();
        assert_eq!(a.retry_budget, b.retry_budget);
        assert_ne!(a.skip_target, b.skip_target);
    }

    #[test]
    fn validation() {
        let mut c = QismetConfig::paper_default();
        c.retry_budget = 0;
        assert!(c.validate().is_err());
        let mut c = QismetConfig::paper_default();
        c.skip_target = SkipTarget::Custom(1.5);
        assert!(c.validate().is_err());
        c.skip_target = SkipTarget::Custom(0.1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let c = QismetConfig::aggressive();
        let json = serde_json::to_string(&c).unwrap();
        let back: QismetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

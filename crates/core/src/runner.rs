//! The QISMET tuning loop (Fig. 7) and the comparison-scheme loops.
//!
//! Per iteration, one quantum job carries the optimizer's evaluations for
//! the new candidate, a **rerun** of the previous iteration's circuit, and
//! (implicitly) support circuits. The controller compares the machine
//! gradient against the predicted transient-free gradient and either lets
//! the VQA proceed or repeats the job under fresh noise, up to the retry
//! budget.

use crate::config::QismetConfig;
use crate::controller::{decide, DecisionReason};
use crate::estimator::TransientEstimate;
use crate::threshold::ThresholdCalibrator;
use qismet_filters::{OnlyTransientsPolicy, SeriesFilter};
use qismet_optim::Proposer;
use qismet_vqa::{JobRequest, NoisyObjective, RunRecord};

/// Full record of a QISMET (or Only-Transients) run.
#[derive(Debug, Clone, PartialEq)]
pub struct QismetRecord {
    /// The underlying run record (measured/exact series, jobs, evals).
    pub record: RunRecord,
    /// Rejected attempts (jobs that were re-executed).
    pub skips: usize,
    /// Iterations where the retry budget ran out and the last attempt was
    /// force-accepted (Section 8.1's adaptation escape hatch).
    pub forced_accepts: usize,
    /// The controller's final decision reason per iteration.
    pub decisions: Vec<DecisionReason>,
    /// The calibrated threshold at each iteration (NaN during warmup).
    pub threshold_trace: Vec<f64>,
}

impl QismetRecord {
    /// Fraction of attempts that were skipped.
    pub fn skip_rate(&self) -> f64 {
        let attempts = self.record.measured.len() + self.skips;
        if attempts == 0 {
            return 0.0;
        }
        self.skips as f64 / attempts as f64
    }
}

/// Runs QISMET-controlled VQA tuning.
///
/// # Panics
///
/// Panics if the config is invalid or the objective's transient trace is too
/// short (worst case `iterations * (retry_budget + 1) + 1` jobs).
pub fn run_qismet(
    proposer: &mut dyn Proposer,
    objective: &mut NoisyObjective,
    theta0: Vec<f64>,
    iterations: usize,
    config: QismetConfig,
) -> QismetRecord {
    run_qismet_budgeted(proposer, objective, theta0, iterations, usize::MAX, config)
}

/// Like [`run_qismet`] but with a hard **job budget**: the run stops when
/// either `iterations` complete or `max_jobs` quantum jobs have been
/// consumed. This is the machine-time accounting of the paper's Fig. 19
/// threshold study — skipped (repeated) jobs spend the same device budget as
/// productive ones, which is why over-aggressive skipping *delays
/// convergence* under low transient noise.
pub fn run_qismet_budgeted(
    proposer: &mut dyn Proposer,
    objective: &mut NoisyObjective,
    theta0: Vec<f64>,
    iterations: usize,
    max_jobs: usize,
    config: QismetConfig,
) -> QismetRecord {
    config.validate().expect("invalid QISMET config");
    let mut calibrator = ThresholdCalibrator::new(config.skip_target, config.warmup);
    run_controlled(
        proposer,
        objective,
        theta0,
        iterations,
        max_jobs,
        config.retry_budget,
        move |est| {
            calibrator.observe(est.tm());
            let thr = calibrator.threshold();
            let d = decide(est, thr);
            calibrator.record_decision(!d.accept);
            (d.accept, d.reason, thr)
        },
    )
}

/// Runs the Section 5.3 "Only-Transients" alternative: skip whenever the
/// |Tm| estimate breaches the policy's percentile threshold, regardless of
/// gradient direction.
///
/// # Panics
///
/// Same trace-capacity requirement as [`run_qismet`].
pub fn run_only_transients(
    proposer: &mut dyn Proposer,
    objective: &mut NoisyObjective,
    theta0: Vec<f64>,
    iterations: usize,
    policy: OnlyTransientsPolicy,
    retry_budget: usize,
) -> QismetRecord {
    run_only_transients_budgeted(
        proposer,
        objective,
        theta0,
        iterations,
        usize::MAX,
        policy,
        retry_budget,
    )
}

/// Job-budgeted variant of [`run_only_transients`]; see
/// [`run_qismet_budgeted`] for the budget semantics.
pub fn run_only_transients_budgeted(
    proposer: &mut dyn Proposer,
    objective: &mut NoisyObjective,
    theta0: Vec<f64>,
    iterations: usize,
    max_jobs: usize,
    mut policy: OnlyTransientsPolicy,
    retry_budget: usize,
) -> QismetRecord {
    run_controlled(
        proposer,
        objective,
        theta0,
        iterations,
        max_jobs,
        retry_budget,
        move |est| {
            let skip = policy.observe_and_decide(est.tm());
            let reason = if skip {
                // Only-Transients does not inspect direction; report the
                // magnitude-flip reason closest in spirit.
                DecisionReason::FlipBadDisguisedAsGood
            } else {
                DecisionReason::WithinThreshold
            };
            (!skip, reason, policy.threshold())
        },
    )
}

/// Shared controlled-loop skeleton. `verdict` returns
/// `(accept, reason, threshold_now)` for each attempt.
fn run_controlled(
    proposer: &mut dyn Proposer,
    objective: &mut NoisyObjective,
    theta0: Vec<f64>,
    iterations: usize,
    max_jobs: usize,
    retry_budget: usize,
    mut verdict: impl FnMut(&TransientEstimate) -> (bool, DecisionReason, f64),
) -> QismetRecord {
    let mut theta = theta0;
    let mut measured = Vec::with_capacity(iterations);
    let mut exact = Vec::with_capacity(iterations);
    let mut decisions = Vec::with_capacity(iterations);
    let mut threshold_trace = Vec::with_capacity(iterations);
    let mut skips = 0usize;
    let mut forced_accepts = 0usize;

    // Em(0): the incumbent's energy from its own job.
    let mut em_prev = objective.measure(&theta);
    objective.advance_job();

    for _ in 0..iterations {
        if objective.job() >= max_jobs {
            break;
        }
        let mut attempts = 0usize;
        let (candidate, em_curr, reason, thr) = loop {
            // The job: optimizer evaluations + rerun of the previous
            // iteration's circuit + candidate energy, all under this job's
            // noise. When the optimizer names its query points up front,
            // the evaluations and the rerun are assembled into one
            // JobRequest and handed to the execution backend as a single
            // batch; the candidate (whose parameters depend on the batch's
            // results) follows as a second wave of the same job.
            let (proposal, em_rerun) = match proposer.eval_points(&theta) {
                Some(points) => {
                    let request = JobRequest::shared_job(points).with_rerun(theta.clone());
                    let result = objective
                        .execute(&request)
                        .unwrap_or_else(|e| panic!("{e}"));
                    let em_rerun = result.rerun_value().expect("rerun was attached");
                    (
                        proposer.propose_from(&theta, result.eval_values()),
                        em_rerun,
                    )
                }
                None => {
                    let proposal = {
                        let obj = &mut *objective;
                        proposer.propose(&theta, &mut |p: &[f64]| obj.measure(p))
                    };
                    let em_rerun = objective.measure(&theta);
                    (proposal, em_rerun)
                }
            };
            let em_curr = objective.measure(&proposal.candidate);
            let est = TransientEstimate::new(em_prev, em_rerun, em_curr);
            let (accept, reason, thr) = verdict(&est);
            if accept {
                break (proposal.candidate, em_curr, reason, thr);
            }
            attempts += 1;
            skips += 1;
            if attempts >= retry_budget {
                // Max-out: accept so that persistent device changes are
                // adapted to rather than fought (Section 8.1).
                forced_accepts += 1;
                break (proposal.candidate, em_curr, reason, thr);
            }
            // Repeat the job under fresh noise.
            objective.advance_job();
        };
        theta = candidate;
        em_prev = em_curr;
        measured.push(em_curr);
        exact.push(objective.eval_exact(&theta));
        decisions.push(reason);
        threshold_trace.push(thr);
        proposer.advance();
        objective.advance_job();
    }

    let accepted = measured.len();
    QismetRecord {
        record: RunRecord {
            measured,
            exact,
            final_params: theta,
            jobs: objective.job(),
            evals: objective.evals(),
            accepted,
            rejected: skips,
        },
        skips,
        forced_accepts,
        decisions,
        threshold_trace,
    }
}

/// Runs a plain baseline but reports a filtered view of the measured series
/// (the paper's Kalman comparison, Section 7.4: filtering "applied on top of
/// the noisy VQA tuning performed with SPSA"). Returns `(raw, filtered)`.
pub fn run_filtered_baseline(
    proposer: &mut dyn Proposer,
    objective: &mut NoisyObjective,
    theta0: Vec<f64>,
    iterations: usize,
    filter: &mut dyn SeriesFilter,
) -> (RunRecord, Vec<f64>) {
    let record = qismet_vqa::run_tuning(
        proposer,
        objective,
        theta0,
        iterations,
        qismet_vqa::TuningScheme::Baseline,
    );
    let filtered = filter.filter_series(&record.measured);
    (record, filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;
    use qismet_optim::{GainSchedule, Spsa};
    use qismet_qnoise::{StaticNoiseModel, TransientModel, TransientTrace};
    use qismet_vqa::{Ansatz, AnsatzKind, Entanglement, NoisyObjectiveConfig, Tfim};

    fn objective_with(trace: TransientTrace, seed: u64) -> (NoisyObjective, f64) {
        let tfim = Tfim::paper_6q();
        let gs = tfim.exact_ground_energy().unwrap();
        let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
        let cfg = NoisyObjectiveConfig {
            static_model: StaticNoiseModel::uniform(6, 120.0, 100.0, 2e-4, 5e-3, 0.02),
            trace,
            magnitude_ref: gs.abs(),
            shot_sigma: 0.03,
            within_job_spread: 0.25,
            seed,
        };
        (NoisyObjective::new(ansatz, tfim.hamiltonian(), cfg), gs)
    }

    #[test]
    fn qismet_runs_and_skips_under_transients() {
        let trace = TransientModel::severe(0.35).generate(&mut rng_from_seed(21), 4000);
        let (mut obj, _) = objective_with(trace, 31);
        let theta0 = obj.exact().ansatz().initial_params(4);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let rec = run_qismet(
            &mut spsa,
            &mut obj,
            theta0,
            300,
            QismetConfig::paper_default(),
        );
        assert_eq!(rec.record.measured.len(), 300);
        assert!(rec.skips > 0, "no skips under severe transients");
        // Skip rate should be loosely bounded by the 90p target plus retry
        // amplification.
        assert!(rec.skip_rate() < 0.35, "skip rate {}", rec.skip_rate());
        assert_eq!(rec.decisions.len(), 300);
        // Jobs exceed iterations by the skip count (plus the initial job).
        assert_eq!(rec.record.jobs, 300 + rec.skips + 1);
    }

    #[test]
    fn qismet_without_transients_matches_baseline_closely() {
        let quiet = TransientTrace::zeros(3000);
        let (mut obj_q, _) = objective_with(quiet.clone(), 7);
        let theta0 = obj_q.exact().ansatz().initial_params(4);
        let mut spsa_q = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let qrec = run_qismet(
            &mut spsa_q,
            &mut obj_q,
            theta0.clone(),
            250,
            QismetConfig::paper_default(),
        );
        let (mut obj_b, _) = objective_with(quiet, 7);
        let mut spsa_b = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let brec = qismet_vqa::run_tuning(
            &mut spsa_b,
            &mut obj_b,
            theta0,
            250,
            qismet_vqa::TuningScheme::Baseline,
        );
        // With no transients, QISMET should rarely skip...
        assert!(
            qrec.skip_rate() < 0.12,
            "quiet skip rate {}",
            qrec.skip_rate()
        );
        // ...and end up at a comparable exact energy.
        let qe = qrec.record.final_exact_energy(25);
        let be = brec.final_exact_energy(25);
        assert!(
            (qe - be).abs() < 0.8,
            "quiet-case divergence: qismet {qe} vs baseline {be}"
        );
    }

    #[test]
    fn qismet_beats_baseline_under_transients() {
        // The headline claim, at test scale.
        let trace = TransientModel::severe(0.4).generate(&mut rng_from_seed(77), 8000);
        let (mut obj_q, gs) = objective_with(trace.clone(), 13);
        let theta0 = obj_q.exact().ansatz().initial_params(4);
        let mut spsa_q = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let qrec = run_qismet(
            &mut spsa_q,
            &mut obj_q,
            theta0.clone(),
            500,
            QismetConfig::paper_default(),
        );
        let (mut obj_b, _) = objective_with(trace, 13);
        let mut spsa_b = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let brec = qismet_vqa::run_tuning(
            &mut spsa_b,
            &mut obj_b,
            theta0,
            500,
            qismet_vqa::TuningScheme::Baseline,
        );
        let q_final = qrec.record.final_energy(50);
        let b_final = brec.final_energy(50);
        assert!(
            q_final < b_final,
            "qismet {q_final} should beat baseline {b_final} (ground {gs})"
        );
    }

    #[test]
    fn forced_accepts_bounded_by_retry_budget() {
        // A trace that is *always* bursting: the controller keeps rejecting,
        // so every iteration should exhaust its retries and force-accept.
        let hostile = TransientTrace::from_values(
            (0..2000)
                .map(|k| if k % 2 == 0 { 0.8 } else { -0.8 })
                .collect(),
        );
        let (mut obj, _) = objective_with(hostile, 3);
        let theta0 = obj.exact().ansatz().initial_params(4);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let cfg = QismetConfig {
            warmup: 4,
            ..QismetConfig::paper_default()
        };
        let rec = run_qismet(&mut spsa, &mut obj, theta0, 40, cfg);
        // Alternating-sign transients flip gradients constantly; expect many
        // forced accepts but never more than one per iteration.
        assert!(rec.forced_accepts <= 40);
        assert!(rec.skips <= 40 * 5);
    }

    /// Forwards a proposer while hiding `eval_points`, forcing
    /// `run_controlled` onto the legacy per-call evaluation path.
    struct Unbatched<P: Proposer>(P);

    impl<P: Proposer> Proposer for Unbatched<P> {
        fn propose(
            &mut self,
            theta: &[f64],
            objective: &mut dyn FnMut(&[f64]) -> f64,
        ) -> qismet_optim::Proposal {
            self.0.propose(theta, objective)
        }
        fn advance(&mut self) {
            self.0.advance()
        }
        fn iteration(&self) -> usize {
            self.0.iteration()
        }
        fn evals_per_proposal(&self) -> usize {
            self.0.evals_per_proposal()
        }
        fn name(&self) -> &'static str {
            "unbatched"
        }
    }

    #[test]
    fn qismet_record_identical_through_batched_and_per_call_paths() {
        // Acceptance criterion of the Backend refactor: run_qismet must
        // produce an identical QismetRecord whether each iteration's job
        // executes as one batched JobRequest or as per-call evaluations —
        // same seeds => same measured series, decisions, and thresholds.
        let trace = TransientModel::severe(0.35).generate(&mut rng_from_seed(55), 6000);
        let run = |batched: bool| {
            let (mut obj, _) = objective_with(trace.clone(), 17);
            let theta0 = obj.exact().ansatz().initial_params(4);
            let spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
            let cfg = QismetConfig::paper_default();
            if batched {
                let mut p = spsa;
                run_qismet(&mut p, &mut obj, theta0, 150, cfg)
            } else {
                let mut p = Unbatched(spsa);
                run_qismet(&mut p, &mut obj, theta0, 150, cfg)
            }
        };
        let via_batch = run(true);
        let via_calls = run(false);
        // Field-by-field: the threshold trace is NaN during warmup, so the
        // float series are compared bitwise rather than through PartialEq.
        assert_eq!(via_batch.record, via_calls.record);
        assert_eq!(via_batch.skips, via_calls.skips);
        assert_eq!(via_batch.forced_accepts, via_calls.forced_accepts);
        assert_eq!(via_batch.decisions, via_calls.decisions);
        assert!(via_batch.skips > 0, "want a transient-rich comparison");
        for (a, b) in via_batch
            .record
            .measured
            .iter()
            .zip(&via_calls.record.measured)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            via_batch.threshold_trace.len(),
            via_calls.threshold_trace.len()
        );
        for (a, b) in via_batch
            .threshold_trace
            .iter()
            .zip(&via_calls.threshold_trace)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn only_transients_skips_more_blindly() {
        let trace = TransientModel::moderate(0.3).generate(&mut rng_from_seed(17), 6000);
        let (mut obj, _) = objective_with(trace, 19);
        let theta0 = obj.exact().ansatz().initial_params(4);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let rec = run_only_transients(
            &mut spsa,
            &mut obj,
            theta0,
            300,
            OnlyTransientsPolicy::new(50.0),
            5,
        );
        // A 50p threshold skips roughly half of all attempts.
        assert!(
            rec.skip_rate() > 0.25,
            "50p policy skip rate {}",
            rec.skip_rate()
        );
    }

    #[test]
    fn filtered_baseline_returns_both_series() {
        let trace = TransientModel::moderate(0.2).generate(&mut rng_from_seed(23), 600);
        let (mut obj, _) = objective_with(trace, 29);
        let theta0 = obj.exact().ansatz().initial_params(4);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        let mut kalman = qismet_filters::KalmanFilter::new(1.0, 0.1, 1e-4);
        let (record, filtered) =
            run_filtered_baseline(&mut spsa, &mut obj, theta0, 150, &mut kalman);
        assert_eq!(record.measured.len(), 150);
        assert_eq!(filtered.len(), 150);
        // The filtered series has lower variance than the raw one.
        let raw_var = qismet_mathkit::variance(&record.measured[50..]);
        let fil_var = qismet_mathkit::variance(&filtered[50..]);
        assert!(
            fil_var < raw_var,
            "filter should smooth: {fil_var} vs {raw_var}"
        );
    }
}

//! Transient estimation and transient-free prediction (paper Fig. 8).
//!
//! Job `beta` re-runs the previous iteration's circuit alongside the new
//! iteration's circuit. With
//!
//! * `Em(i)`   — iteration `i`'s energy measured in its own (earlier) job,
//! * `EmR(i)`  — the same circuit re-measured in the current job,
//! * `Em(i+1)` — the new iteration's energy in the current job,
//!
//! QISMET computes
//!
//! ```text
//! Gm(i+1) = Em(i+1) - Em(i)      // machine-observed gradient
//! Tm(i+1) = EmR(i)  - Em(i)      // transient estimate
//! Ep(i+1) = Em(i+1) - Tm(i+1)    // transient-free energy prediction
//! Gp(i+1) = Ep(i+1) - Em(i)      // transient-free gradient prediction
//! ```
//!
//! The key assumption (Section 5.1): the transient hitting the rerun of
//! iteration `i` is (approximately) the transient hitting iteration `i+1`,
//! because both execute in the same job — circuit `i` is "the closest
//! possible reference circuit".

/// The three energy measurements feeding one controller decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientEstimate {
    /// `Em(i)`: previous iteration's energy from its own job.
    pub em_prev: f64,
    /// `EmR(i)`: previous iteration's circuit re-measured in the current job.
    pub em_rerun: f64,
    /// `Em(i+1)`: current iteration's energy in the current job.
    pub em_curr: f64,
}

impl TransientEstimate {
    /// Bundles the three measurements.
    pub fn new(em_prev: f64, em_rerun: f64, em_curr: f64) -> Self {
        TransientEstimate {
            em_prev,
            em_rerun,
            em_curr,
        }
    }

    /// Machine-observed gradient `Gm(i+1) = Em(i+1) - Em(i)`.
    pub fn gm(&self) -> f64 {
        self.em_curr - self.em_prev
    }

    /// Transient-error estimate `Tm(i+1) = EmR(i) - Em(i)`.
    pub fn tm(&self) -> f64 {
        self.em_rerun - self.em_prev
    }

    /// Transient-free energy prediction `Ep(i+1) = Em(i+1) - Tm(i+1)`.
    pub fn ep(&self) -> f64 {
        self.em_curr - self.tm()
    }

    /// Transient-free gradient prediction `Gp(i+1) = Ep(i+1) - Em(i)`.
    pub fn gp(&self) -> f64 {
        self.ep() - self.em_prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_identities() {
        let est = TransientEstimate::new(-1.0, -0.7, -0.5);
        // Tm = EmR - Em = 0.3 (an adverse transient raised the rerun).
        assert!((est.tm() - 0.3).abs() < 1e-12);
        // Gm = Em(i+1) - Em(i) = 0.5.
        assert!((est.gm() - 0.5).abs() < 1e-12);
        // Ep = Em(i+1) - Tm = -0.8.
        assert!((est.ep() + 0.8).abs() < 1e-12);
        // Gp = Ep - Em(i) = 0.2.
        assert!((est.gp() - 0.2).abs() < 1e-12);
        // Identity: Gp = Gm - Tm.
        assert!((est.gp() - (est.gm() - est.tm())).abs() < 1e-12);
    }

    #[test]
    fn no_transient_means_gm_equals_gp() {
        let est = TransientEstimate::new(-1.0, -1.0, -1.2);
        assert_eq!(est.tm(), 0.0);
        assert_eq!(est.gm(), est.gp());
    }

    #[test]
    fn transient_flips_perceived_gradient() {
        // True improvement of -0.1 masked by a +0.4 transient: the machine
        // sees the candidate as worse (+0.3) while the prediction recovers
        // the improvement.
        let em_prev = -1.0;
        let true_improvement = -0.1;
        let transient = 0.4;
        let est = TransientEstimate::new(
            em_prev,
            em_prev + transient,
            em_prev + true_improvement + transient,
        );
        assert!(est.gm() > 0.0, "machine sees worsening");
        assert!(est.gp() < 0.0, "prediction recovers improvement");
        assert!((est.gp() - true_improvement).abs() < 1e-12);
    }

    #[test]
    fn constructive_transient_detected_symmetrically() {
        // A transient that *lowers* energies (negative Tm) can make a bad
        // candidate look good; the predictor strips it.
        let est = TransientEstimate::new(-1.0, -1.3, -1.2);
        assert!(est.tm() < 0.0);
        assert!(est.gm() < 0.0, "machine sees improvement");
        assert!(est.gp() > 0.0, "prediction reveals worsening");
    }
}

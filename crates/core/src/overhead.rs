//! Execution-overhead accounting (Section 8.3).
//!
//! QISMET re-runs the previous iteration's circuit in every job and repeats
//! whole jobs on rejection, so its circuit-execution cost exceeds the
//! baseline's. The paper's observation: the *relative* overhead shrinks when
//! error-mitigation support circuits (which both configurations carry)
//! dominate the job, and in transient-rich settings the avoided lost
//! iterations more than pay for it.

use serde::{Deserialize, Serialize};

/// Per-job circuit composition for overhead analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobComposition {
    /// Circuits the optimizer itself needs per iteration (gradient
    /// evaluations plus the candidate evaluation).
    pub vqa_circuits: usize,
    /// Error-mitigation support circuits per job.
    pub support_circuits: usize,
}

/// Overhead report comparing QISMET to the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Circuits per baseline job.
    pub baseline_per_job: usize,
    /// Circuits per QISMET job (adds the repeat circuit).
    pub qismet_per_job: usize,
    /// Total baseline circuits over the run.
    pub baseline_total: usize,
    /// Total QISMET circuits over the run (including retried jobs).
    pub qismet_total: usize,
    /// QISMET / baseline circuit ratio.
    pub ratio: f64,
}

/// Computes the overhead for a run of `iterations` accepted iterations with
/// `retried_jobs` extra (rejected and re-executed) jobs.
pub fn overhead_report(
    comp: JobComposition,
    iterations: usize,
    retried_jobs: usize,
) -> OverheadReport {
    let baseline_per_job = comp.vqa_circuits + comp.support_circuits;
    // QISMET adds one repeat circuit per job.
    let qismet_per_job = baseline_per_job + 1;
    let baseline_total = baseline_per_job * iterations;
    let qismet_total = qismet_per_job * (iterations + retried_jobs);
    OverheadReport {
        baseline_per_job,
        qismet_per_job,
        baseline_total,
        qismet_total,
        ratio: if baseline_total == 0 {
            f64::NAN
        } else {
            qismet_total as f64 / baseline_total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_vqa_overhead_matches_paper_bound() {
        // Section 8.3: with a single VQA circuit and no support circuits,
        // no skips, overhead is exactly 2x.
        let comp = JobComposition {
            vqa_circuits: 1,
            support_circuits: 0,
        };
        let r = overhead_report(comp, 100, 0);
        assert_eq!(r.baseline_per_job, 1);
        assert_eq!(r.qismet_per_job, 2);
        assert!((r.ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn support_circuits_dilute_the_overhead() {
        // With many mitigation circuits per job the relative cost drops.
        let comp = JobComposition {
            vqa_circuits: 3,
            support_circuits: 64,
        };
        let r = overhead_report(comp, 100, 0);
        assert!(r.ratio < 1.05, "ratio {}", r.ratio);
    }

    #[test]
    fn retries_increase_total() {
        let comp = JobComposition {
            vqa_circuits: 3,
            support_circuits: 0,
        };
        let none = overhead_report(comp, 100, 0);
        let some = overhead_report(comp, 100, 10);
        assert!(some.qismet_total > none.qismet_total);
        assert!((some.ratio - none.ratio * 1.1).abs() < 1e-9);
    }

    #[test]
    fn zero_iterations_is_nan_ratio() {
        let comp = JobComposition {
            vqa_circuits: 1,
            support_circuits: 0,
        };
        assert!(overhead_report(comp, 0, 0).ratio.is_nan());
    }
}

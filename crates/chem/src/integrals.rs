//! One- and two-electron integrals over contracted s-type Gaussians.
//!
//! Closed-form formulas (s-orbitals only) with the Boys function `F0`
//! handling the Coulomb integrals. References: Szabo & Ostlund, *Modern
//! Quantum Chemistry*, appendix A.

use crate::basis::{dist_sqr, gaussian_product_center, primitive_overlap, BasisFunction};
use qismet_mathkit::boys_f0;
use std::f64::consts::PI;

/// Overlap integral `<a|b>`.
pub fn overlap(a: &BasisFunction, b: &BasisFunction) -> f64 {
    let r2 = a.dist_sqr(b);
    let mut s = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            s += pa.coeff * pb.coeff * primitive_overlap(pa.alpha, pb.alpha, r2);
        }
    }
    s
}

/// Kinetic energy integral `<a| -1/2 nabla^2 |b>`.
pub fn kinetic(a: &BasisFunction, b: &BasisFunction) -> f64 {
    let r2 = a.dist_sqr(b);
    let mut t = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            let p = pa.alpha + pb.alpha;
            let mu = pa.alpha * pb.alpha / p;
            let s = primitive_overlap(pa.alpha, pb.alpha, r2);
            t += pa.coeff * pb.coeff * mu * (3.0 - 2.0 * mu * r2) * s;
        }
    }
    t
}

/// Nuclear attraction integral `<a| -Z / |r - C| |b>` for a nucleus of
/// charge `z` at `c` (bohr).
pub fn nuclear_attraction(a: &BasisFunction, b: &BasisFunction, c: [f64; 3], z: f64) -> f64 {
    let r2 = a.dist_sqr(b);
    let mut v = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            let p = pa.alpha + pb.alpha;
            let mu = pa.alpha * pb.alpha / p;
            let center = gaussian_product_center(pa.alpha, a.center, pb.alpha, b.center);
            let rpc2 = dist_sqr(center, c);
            let pre = -2.0 * PI / p * z * (-mu * r2).exp();
            v += pa.coeff * pb.coeff * pre * boys_f0(p * rpc2);
        }
    }
    v
}

/// Two-electron repulsion integral in chemist notation `(ab|cd)`:
/// `integral a(1) b(1) (1/r12) c(2) d(2)`.
pub fn electron_repulsion(
    a: &BasisFunction,
    b: &BasisFunction,
    c: &BasisFunction,
    d: &BasisFunction,
) -> f64 {
    let rab2 = a.dist_sqr(b);
    let rcd2 = c.dist_sqr(d);
    let mut eri = 0.0;
    for pa in &a.primitives {
        for pb in &b.primitives {
            let p = pa.alpha + pb.alpha;
            let mu_ab = pa.alpha * pb.alpha / p;
            let pcen = gaussian_product_center(pa.alpha, a.center, pb.alpha, b.center);
            let kab = (-mu_ab * rab2).exp();
            for pc in &c.primitives {
                for pd in &d.primitives {
                    let q = pc.alpha + pd.alpha;
                    let mu_cd = pc.alpha * pd.alpha / q;
                    let qcen = gaussian_product_center(pc.alpha, c.center, pd.alpha, d.center);
                    let kcd = (-mu_cd * rcd2).exp();
                    let rpq2 = dist_sqr(pcen, qcen);
                    let pre = 2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt());
                    eri += pa.coeff
                        * pb.coeff
                        * pc.coeff
                        * pd.coeff
                        * pre
                        * kab
                        * kcd
                        * boys_f0(p * q / (p + q) * rpq2);
                }
            }
        }
    }
    eri
}

/// All integrals for a two-center, two-function problem (H2 in a minimal
/// basis), in the atomic-orbital basis.
#[derive(Debug, Clone, PartialEq)]
pub struct H2Integrals {
    /// Overlap matrix (2x2, symmetric).
    pub s: [[f64; 2]; 2],
    /// Core Hamiltonian `T + V` (2x2, symmetric).
    pub hcore: [[f64; 2]; 2],
    /// Two-electron integrals `(ij|kl)` with full 8-fold symmetry stored
    /// densely.
    pub eri: [[[[f64; 2]; 2]; 2]; 2],
    /// Nuclear repulsion energy `1/R`.
    pub e_nuc: f64,
    /// Bond length in bohr.
    pub r_bohr: f64,
}

/// Computes all H2/STO-3G integrals at a bond length given in bohr.
///
/// # Panics
///
/// Panics if `r_bohr` is not strictly positive.
pub fn h2_integrals(r_bohr: f64) -> H2Integrals {
    assert!(r_bohr > 0.0, "bond length must be positive");
    let centers = [[0.0, 0.0, 0.0], [0.0, 0.0, r_bohr]];
    let chi: Vec<BasisFunction> = centers
        .iter()
        .map(|&c| BasisFunction::sto3g_hydrogen(c))
        .collect();

    let mut s = [[0.0; 2]; 2];
    let mut hcore = [[0.0; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            s[i][j] = overlap(&chi[i], &chi[j]);
            let t = kinetic(&chi[i], &chi[j]);
            let v: f64 = centers
                .iter()
                .map(|&c| nuclear_attraction(&chi[i], &chi[j], c, 1.0))
                .sum();
            hcore[i][j] = t + v;
        }
    }

    let mut eri = [[[[0.0; 2]; 2]; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    eri[i][j][k][l] = electron_repulsion(&chi[i], &chi[j], &chi[k], &chi[l]);
                }
            }
        }
    }

    H2Integrals {
        s,
        hcore,
        eri,
        e_nuc: 1.0 / r_bohr,
        r_bohr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from Szabo & Ostlund (Table 3.5 region) for H2 at
    // R = 1.4 bohr in STO-3G:
    //   S12 ~ 0.6593, T11 ~ 0.7600, V11 (both nuclei) ~ -1.8806... split as
    //   core H11 ~ -1.1204, H12 ~ -0.9584,
    //   (11|11) ~ 0.7746, (11|22) ~ 0.5697, (11|12)=(12|11)... ~ 0.4441,
    //   (12|12) ~ 0.2970.
    const R: f64 = 1.4;

    #[test]
    fn overlap_matrix_reference() {
        let ints = h2_integrals(R);
        assert!((ints.s[0][0] - 1.0).abs() < 1e-10);
        assert!((ints.s[1][1] - 1.0).abs() < 1e-10);
        assert!(
            (ints.s[0][1] - 0.6593).abs() < 2e-3,
            "S12 = {}",
            ints.s[0][1]
        );
        assert!((ints.s[0][1] - ints.s[1][0]).abs() < 1e-12);
    }

    #[test]
    fn kinetic_reference() {
        let chi0 = BasisFunction::sto3g_hydrogen([0.0; 3]);
        let t11 = kinetic(&chi0, &chi0);
        assert!((t11 - 0.7600).abs() < 2e-3, "T11 = {t11}");
    }

    #[test]
    fn core_hamiltonian_reference() {
        let ints = h2_integrals(R);
        assert!(
            (ints.hcore[0][0] + 1.1204).abs() < 3e-3,
            "H11 = {}",
            ints.hcore[0][0]
        );
        assert!(
            (ints.hcore[0][1] + 0.9584).abs() < 3e-3,
            "H12 = {}",
            ints.hcore[0][1]
        );
        // Symmetry of the homonuclear diatomic.
        assert!((ints.hcore[0][0] - ints.hcore[1][1]).abs() < 1e-10);
    }

    #[test]
    fn eri_reference_values() {
        let ints = h2_integrals(R);
        assert!(
            (ints.eri[0][0][0][0] - 0.7746).abs() < 2e-3,
            "(11|11) = {}",
            ints.eri[0][0][0][0]
        );
        assert!(
            (ints.eri[0][0][1][1] - 0.5697).abs() < 2e-3,
            "(11|22) = {}",
            ints.eri[0][0][1][1]
        );
        assert!(
            (ints.eri[0][1][0][1] - 0.2970).abs() < 2e-3,
            "(12|12) = {}",
            ints.eri[0][1][0][1]
        );
        assert!(
            (ints.eri[0][0][0][1] - 0.4441).abs() < 2e-3,
            "(11|12) = {}",
            ints.eri[0][0][0][1]
        );
    }

    #[test]
    fn eri_eightfold_symmetry() {
        let ints = h2_integrals(1.1);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        let v = ints.eri[i][j][k][l];
                        for w in [
                            ints.eri[j][i][k][l],
                            ints.eri[i][j][l][k],
                            ints.eri[k][l][i][j],
                            ints.eri[l][k][j][i],
                        ] {
                            assert!((v - w).abs() < 1e-10);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nuclear_attraction_is_negative() {
        let chi0 = BasisFunction::sto3g_hydrogen([0.0; 3]);
        let v = nuclear_attraction(&chi0, &chi0, [0.0; 3], 1.0);
        assert!(v < -1.0, "on-center attraction {v}");
    }

    #[test]
    fn nuclear_repulsion() {
        let ints = h2_integrals(2.0);
        assert_eq!(ints.e_nuc, 0.5);
    }

    #[test]
    fn integrals_decay_with_separation() {
        let near = h2_integrals(1.0);
        let far = h2_integrals(6.0);
        assert!(near.s[0][1] > far.s[0][1]);
        assert!(near.eri[0][1][0][1] > far.eri[0][1][0][1]);
        assert!(far.s[0][1] < 0.05);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_bond() {
        h2_integrals(0.0);
    }
}

//! End-to-end H2 molecule assembly: geometry to qubit Hamiltonian.
//!
//! This drives the paper's Fig. 18 experiment: VQE potential-energy
//! estimation of H2 over bond lengths 0.4-2.0 angstrom, one Hamiltonian per
//! geometry.

use crate::fci::{fci_from_integrals, FciSolution};
use crate::integrals::h2_integrals;
use crate::scf::{ScfError, ScfSolution};
use crate::second_q::to_spin_orbitals;
use qismet_qsim::{PauliString, PauliSum};

/// Conversion constant: 1 angstrom in bohr.
pub const ANGSTROM_TO_BOHR: f64 = 1.889_726_124_626_2;

/// A fully solved H2 problem at one geometry.
#[derive(Debug, Clone)]
pub struct H2Problem {
    /// Bond length in angstrom.
    pub bond_angstrom: f64,
    /// The 4-qubit Jordan-Wigner Hamiltonian **including** the nuclear
    /// repulsion as an identity term, so its ground energy is the total
    /// molecular energy.
    pub hamiltonian: PauliSum,
    /// Restricted Hartree-Fock solution.
    pub scf: ScfSolution,
    /// FCI solution (the exact answer VQE chases).
    pub fci: FciSolution,
}

/// Errors from problem assembly.
#[derive(Debug)]
pub enum H2Error {
    /// SCF failure.
    Scf(ScfError),
    /// Jordan-Wigner produced residual imaginary coefficients.
    NonHermitian {
        /// Largest offending |Im|.
        residual: f64,
    },
}

impl std::fmt::Display for H2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H2Error::Scf(e) => write!(f, "H2 SCF failure: {e}"),
            H2Error::NonHermitian { residual } => {
                write!(f, "JW residual imaginary coefficient {residual:e}")
            }
        }
    }
}

impl std::error::Error for H2Error {}

impl From<ScfError> for H2Error {
    fn from(e: ScfError) -> Self {
        H2Error::Scf(e)
    }
}

impl H2Problem {
    /// Solves the H2 electronic structure at a bond length (angstrom) and
    /// assembles the qubit Hamiltonian.
    ///
    /// # Errors
    ///
    /// * [`H2Error::Scf`] if Hartree-Fock does not converge.
    /// * [`H2Error::NonHermitian`] if the JW algebra leaves imaginary
    ///   residue (indicates an integral symmetry violation).
    ///
    /// # Panics
    ///
    /// Panics if `bond_angstrom` is not strictly positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use qismet_chem::H2Problem;
    /// let p = H2Problem::at_bond_length(0.735).unwrap();
    /// // STO-3G equilibrium total energy ~ -1.137 hartree.
    /// assert!((p.fci.energy + 1.137).abs() < 2e-3);
    /// assert_eq!(p.hamiltonian.n_qubits(), 4);
    /// ```
    pub fn at_bond_length(bond_angstrom: f64) -> Result<H2Problem, H2Error> {
        assert!(bond_angstrom > 0.0, "bond length must be positive");
        let r_bohr = bond_angstrom * ANGSTROM_TO_BOHR;
        let ints = h2_integrals(r_bohr);
        let (scf, mo, fci) = fci_from_integrals(&ints)?;
        let so = to_spin_orbitals(&mo);
        let mut hamiltonian = crate::jw::jordan_wigner(&so.h_one, &so.h_two)
            .map_err(|residual| H2Error::NonHermitian { residual })?;
        hamiltonian.add_term(so.e_nuc, PauliString::identity(4));
        Ok(H2Problem {
            bond_angstrom,
            hamiltonian,
            scf,
            fci,
        })
    }

    /// Exact ground energy of the qubit Hamiltonian (equals FCI by
    /// construction; exposed for sanity checking).
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn qubit_ground_energy(&self) -> Result<f64, qismet_mathkit::EigError> {
        self.hamiltonian.ground_energy()
    }
}

/// One point of a dissociation curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Bond length in angstrom.
    pub bond_angstrom: f64,
    /// FCI (exact) total energy, hartree.
    pub fci_energy: f64,
    /// RHF total energy, hartree.
    pub hf_energy: f64,
}

/// Computes the exact dissociation curve over the given bond lengths.
///
/// # Errors
///
/// Propagates per-geometry failures.
pub fn dissociation_curve(bond_lengths_angstrom: &[f64]) -> Result<Vec<CurvePoint>, H2Error> {
    bond_lengths_angstrom
        .iter()
        .map(|&r| {
            let p = H2Problem::at_bond_length(r)?;
            Ok(CurvePoint {
                bond_angstrom: r,
                fci_energy: p.fci.energy,
                hf_energy: p.scf.energy,
            })
        })
        .collect()
}

/// The paper's Fig. 18 grid: 10 bond lengths covering 0.4-2.0 angstrom.
pub fn fig18_bond_lengths() -> Vec<f64> {
    (0..10).map(|k| 0.4 + 0.177_777_78 * k as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_energy_reference() {
        let p = H2Problem::at_bond_length(0.735).unwrap();
        assert!(
            (p.fci.energy + 1.1373).abs() < 1.5e-3,
            "E_FCI = {}",
            p.fci.energy
        );
        assert!(p.scf.energy > p.fci.energy);
    }

    #[test]
    fn qubit_hamiltonian_matches_fci() {
        for r in [0.5, 0.735, 1.2, 1.8] {
            let p = H2Problem::at_bond_length(r).unwrap();
            let eq = p.qubit_ground_energy().unwrap();
            assert!(
                (eq - p.fci.energy).abs() < 1e-7,
                "r = {r}: qubit {eq} vs fci {}",
                p.fci.energy
            );
        }
    }

    #[test]
    fn hamiltonian_is_compact() {
        // The JW H2 Hamiltonian has 15 distinct Pauli terms (incl. identity)
        // in the standard interleaved ordering.
        let p = H2Problem::at_bond_length(0.735).unwrap();
        let n_terms = p.hamiltonian.terms().len();
        assert!(
            (10..=20).contains(&n_terms),
            "unexpected term count {n_terms}"
        );
        // All terms act on 4 qubits with even weight (number-conserving).
        for (_, s) in p.hamiltonian.terms() {
            assert_eq!(s.n_qubits(), 4);
        }
    }

    #[test]
    fn curve_shape_matches_fig18() {
        let curve = dissociation_curve(&fig18_bond_lengths()).unwrap();
        assert_eq!(curve.len(), 10);
        // Energy decreases to a minimum near 0.735 A then rises toward the
        // dissociation plateau.
        let energies: Vec<f64> = curve.iter().map(|p| p.fci_energy).collect();
        let (imin, &emin) = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let rmin = curve[imin].bond_angstrom;
        assert!((0.55..=0.95).contains(&rmin), "minimum at {rmin} A");
        assert!(emin < -1.10, "minimum energy {emin}");
        // Monotone rise after the minimum.
        for k in (imin + 1)..curve.len() {
            assert!(energies[k] >= energies[k - 1] - 1e-9);
        }
        // HF deviates from FCI increasingly with bond length.
        let gap_short = curve[1].hf_energy - curve[1].fci_energy;
        let gap_long = curve[9].hf_energy - curve[9].fci_energy;
        assert!(gap_long > gap_short);
    }

    #[test]
    fn fig18_grid_spans_paper_range() {
        let grid = fig18_bond_lengths();
        assert_eq!(grid.len(), 10);
        assert!((grid[0] - 0.4).abs() < 1e-9);
        assert!((grid[9] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_geometry() {
        let _ = H2Problem::at_bond_length(-1.0);
    }
}

//! # qismet-chem
//!
//! Electronic-structure substrate for the QISMET reproduction's molecular
//! experiments (paper Fig. 18: H2 potential energy over bond length).
//!
//! Everything is computed from first principles — no embedded third-party
//! integral tables:
//!
//! * [`BasisFunction`] — STO-3G hydrogen 1s contractions.
//! * [`h2_integrals`] — closed-form s-orbital Gaussian integrals (overlap,
//!   kinetic, nuclear attraction via the Boys function, electron repulsion).
//! * [`run_rhf`] — restricted Hartree-Fock SCF.
//! * [`run_fci`] — full CI in the 2-electron / 2-orbital space (the exact
//!   reference energy).
//! * [`jordan_wigner`] — fermion-to-qubit mapping with a complex-weighted
//!   Pauli algebra ([`CPauliSum`]), validated against FCI.
//! * [`H2Problem`] / [`dissociation_curve`] — geometry-to-Hamiltonian
//!   assembly for the VQE experiments.
//!
//! # Examples
//!
//! ```
//! use qismet_chem::H2Problem;
//!
//! let problem = H2Problem::at_bond_length(0.735).unwrap();
//! let e_exact = problem.fci.energy;        // ~ -1.1373 hartree
//! let e_qubit = problem.qubit_ground_energy().unwrap();
//! assert!((e_exact - e_qubit).abs() < 1e-7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
mod fci;
mod h2;
mod integrals;
mod jw;
mod scf;
mod second_q;

pub use basis::{BasisFunction, Primitive, STO3G_H_COEFFS, STO3G_H_EXPONENTS};
pub use fci::{fci_from_integrals, run_fci, transform_to_mo, FciSolution, MoIntegrals};
pub use h2::{
    dissociation_curve, fig18_bond_lengths, CurvePoint, H2Error, H2Problem, ANGSTROM_TO_BOHR,
};
pub use integrals::{
    electron_repulsion, h2_integrals, kinetic, nuclear_attraction, overlap, H2Integrals,
};
pub use jw::{annihilation, creation, jordan_wigner, number_operator, pauli_mul, CPauliSum};
pub use scf::{run_rhf, ScfError, ScfSolution};
pub use second_q::{to_spin_orbitals, SpinOrbitalHamiltonian};

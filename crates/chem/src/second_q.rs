//! Second quantization: MO integrals to spin-orbital tensors.
//!
//! Spin-orbital ordering is interleaved: `p = 2 * spatial + spin` with
//! `spin 0 = alpha, 1 = beta`. The two-body tensor is produced in physicist
//! notation `<pq|rs>` as consumed by [`crate::jw::jordan_wigner`].

// Dense index arithmetic reads clearest with explicit loop indices; the
// iterator rewrites clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::fci::MoIntegrals;

/// Spin-orbital tensors for a 2-spatial-orbital problem (4 spin orbitals).
#[derive(Debug, Clone, PartialEq)]
pub struct SpinOrbitalHamiltonian {
    /// One-body integrals `h_pq` over spin orbitals.
    pub h_one: Vec<Vec<f64>>,
    /// Two-body physicist tensor `<pq|rs>` over spin orbitals.
    pub h_two: Vec<Vec<Vec<Vec<f64>>>>,
    /// Nuclear repulsion (constant shift).
    pub e_nuc: f64,
}

/// Spatial index of a spin orbital.
#[inline]
fn spatial(p: usize) -> usize {
    p / 2
}

/// Spin of a spin orbital (0 = alpha, 1 = beta).
#[inline]
fn spin(p: usize) -> usize {
    p % 2
}

/// Expands MO integrals into spin orbitals.
///
/// One-body: `h_pq = h_spatial(p,q) * delta(spin_p, spin_q)`.
/// Two-body: `<pq|rs> = (P R|Q S)_chem * delta(s_p, s_r) * delta(s_q, s_s)`
/// where capital letters denote spatial indices.
pub fn to_spin_orbitals(mo: &MoIntegrals) -> SpinOrbitalHamiltonian {
    let n = 4;
    let mut h_one = vec![vec![0.0; n]; n];
    for p in 0..n {
        for q in 0..n {
            if spin(p) == spin(q) {
                h_one[p][q] = mo.h[spatial(p)][spatial(q)];
            }
        }
    }
    let mut h_two = vec![vec![vec![vec![0.0; n]; n]; n]; n];
    for p in 0..n {
        for q in 0..n {
            for r in 0..n {
                for s in 0..n {
                    if spin(p) == spin(r) && spin(q) == spin(s) {
                        // <pq|rs> = (pr|qs) in chemist notation.
                        h_two[p][q][r][s] = mo.eri[spatial(p)][spatial(r)][spatial(q)][spatial(s)];
                    }
                }
            }
        }
    }
    SpinOrbitalHamiltonian {
        h_one,
        h_two,
        e_nuc: mo.e_nuc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fci::{fci_from_integrals, transform_to_mo};
    use crate::integrals::h2_integrals;
    use crate::scf::run_rhf;

    fn mo_at(r: f64) -> MoIntegrals {
        let ints = h2_integrals(r);
        let scf = run_rhf(&ints).unwrap();
        transform_to_mo(&ints, &scf)
    }

    #[test]
    fn spin_conservation_enforced() {
        let so = to_spin_orbitals(&mo_at(1.4));
        // Alpha-beta one-body couplings vanish.
        assert_eq!(so.h_one[0][1], 0.0);
        assert_eq!(so.h_one[1][2], 0.0);
        // Same-spin couplings carry the spatial value.
        assert_eq!(so.h_one[0][0], so.h_one[1][1]);
        assert_eq!(so.h_one[0][2], so.h_one[1][3]);
    }

    #[test]
    fn two_body_tensor_is_physicist_hermitian() {
        let so = to_spin_orbitals(&mo_at(1.4));
        // <pq|rs> = <qp|sr> and real-symmetric <pq|rs> = <rs|pq>.
        for p in 0..4 {
            for q in 0..4 {
                for r in 0..4 {
                    for s in 0..4 {
                        let v = so.h_two[p][q][r][s];
                        assert!((v - so.h_two[q][p][s][r]).abs() < 1e-12);
                        assert!((v - so.h_two[r][s][p][q]).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn jw_ground_energy_matches_fci() {
        // The load-bearing validation: the Jordan-Wigner qubit Hamiltonian's
        // minimum eigenvalue must equal the independently computed FCI
        // ground energy.
        for r in [0.8, 1.4, 2.5] {
            let ints = h2_integrals(r);
            let (_, mo, fci) = fci_from_integrals(&ints).unwrap();
            let so = to_spin_orbitals(&mo);
            let pauli = crate::jw::jordan_wigner(&so.h_one, &so.h_two).unwrap();
            let e_qubit = pauli.ground_energy().unwrap() + so.e_nuc;
            assert!(
                (e_qubit - fci.energy).abs() < 1e-7,
                "r = {r}: qubit {e_qubit} vs fci {}",
                fci.energy
            );
        }
    }

    #[test]
    fn coulomb_diagonal_positive() {
        let so = to_spin_orbitals(&mo_at(1.4));
        // <pq|pq> with p,q opposite spin = Coulomb repulsion > 0.
        assert!(so.h_two[0][1][0][1] > 0.0);
        assert!(so.h_two[2][3][2][3] > 0.0);
    }
}

//! Full configuration interaction for H2 in a minimal basis.
//!
//! Two electrons in two molecular orbitals: the Sz = 0 determinant space is
//! four-dimensional and FCI is a 4x4 symmetric eigenproblem. This provides
//! the exact (within the basis) ground energy that both the Jordan-Wigner
//! qubit Hamiltonian and the VQE must reproduce.

use crate::integrals::H2Integrals;
use crate::scf::{run_rhf, ScfError, ScfSolution};
use qismet_mathkit::{sym_eig, RMatrix};

/// Molecular-orbital integrals for the 2-orbital problem.
#[derive(Debug, Clone, PartialEq)]
pub struct MoIntegrals {
    /// One-electron integrals `h_pq` in the MO basis.
    pub h: [[f64; 2]; 2],
    /// Two-electron integrals `(pq|rs)` (chemist notation) in the MO basis.
    pub eri: [[[[f64; 2]; 2]; 2]; 2],
    /// Nuclear repulsion.
    pub e_nuc: f64,
}

/// Transforms AO integrals into the MO basis using SCF coefficients.
pub fn transform_to_mo(ints: &H2Integrals, scf: &ScfSolution) -> MoIntegrals {
    let c = scf.mo_coeffs;
    let mut h = [[0.0; 2]; 2];
    for p in 0..2 {
        for q in 0..2 {
            let mut acc = 0.0;
            for mu in 0..2 {
                for nu in 0..2 {
                    acc += c[mu][p] * c[nu][q] * ints.hcore[mu][nu];
                }
            }
            h[p][q] = acc;
        }
    }
    let mut eri = [[[[0.0; 2]; 2]; 2]; 2];
    for p in 0..2 {
        for q in 0..2 {
            for r in 0..2 {
                for s in 0..2 {
                    let mut acc = 0.0;
                    for mu in 0..2 {
                        for nu in 0..2 {
                            for la in 0..2 {
                                for si in 0..2 {
                                    acc += c[mu][p]
                                        * c[nu][q]
                                        * c[la][r]
                                        * c[si][s]
                                        * ints.eri[mu][nu][la][si];
                                }
                            }
                        }
                    }
                    eri[p][q][r][s] = acc;
                }
            }
        }
    }
    MoIntegrals {
        h,
        eri,
        e_nuc: ints.e_nuc,
    }
}

/// FCI solution for the 2-electron / 2-orbital problem.
#[derive(Debug, Clone, PartialEq)]
pub struct FciSolution {
    /// Total ground-state energy (electronic + nuclear), hartree.
    pub energy: f64,
    /// All four Sz = 0 eigenvalues (total energies), ascending.
    pub spectrum: [f64; 4],
    /// Correlation energy relative to the provided SCF solution.
    pub correlation: f64,
}

/// Runs FCI on top of a converged SCF solution.
///
/// Determinant basis (spin orbitals `1a, 1b, 2a, 2b`):
/// `D1 = |1a 1b|`, `D2 = |1a 2b|`, `D3 = |2a 1b|`, `D4 = |2a 2b|`.
/// Matrix elements follow the Slater-Condon rules; for the homonuclear H2
/// case the `h_12`-type couplings vanish by symmetry and the spectrum is
/// insensitive to the determinant phase convention.
pub fn run_fci(mo: &MoIntegrals, scf: &ScfSolution) -> FciSolution {
    let h = &mo.h;
    let g = &mo.eri;
    let j11 = g[0][0][0][0];
    let j22 = g[1][1][1][1];
    let j12 = g[0][0][1][1];
    let k12 = g[0][1][0][1];
    let s12 = h[0][1] + g[0][1][0][0]; // single-excitation coupling, beta
    let s12p = h[0][1] + g[0][1][1][1];

    let d1 = 2.0 * h[0][0] + j11;
    let d2 = h[0][0] + h[1][1] + j12;
    let d4 = 2.0 * h[1][1] + j22;

    let m = RMatrix::from_rows(&[
        &[d1, s12, s12, k12],
        &[s12, d2, k12, s12p],
        &[s12, k12, d2, s12p],
        &[k12, s12p, s12p, d4],
    ]);
    let eig = sym_eig(&m).expect("4x4 symmetric CI matrix");
    let spectrum = [
        eig.values[0] + mo.e_nuc,
        eig.values[1] + mo.e_nuc,
        eig.values[2] + mo.e_nuc,
        eig.values[3] + mo.e_nuc,
    ];
    FciSolution {
        energy: spectrum[0],
        spectrum,
        correlation: spectrum[0] - scf.energy,
    }
}

/// Convenience: integrals -> SCF -> FCI in one call.
///
/// # Errors
///
/// Propagates SCF failures.
pub fn fci_from_integrals(
    ints: &H2Integrals,
) -> Result<(ScfSolution, MoIntegrals, FciSolution), ScfError> {
    let scf = run_rhf(ints)?;
    let mo = transform_to_mo(ints, &scf);
    let fci = run_fci(&mo, &scf);
    Ok((scf, mo, fci))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrals::h2_integrals;

    #[test]
    fn mo_one_electron_offdiagonal_vanishes_by_symmetry() {
        let ints = h2_integrals(1.4);
        let scf = run_rhf(&ints).unwrap();
        let mo = transform_to_mo(&ints, &scf);
        // Bonding/antibonding have opposite parity: h12 = 0.
        assert!(mo.h[0][1].abs() < 1e-8, "h12 = {}", mo.h[0][1]);
        // Odd ERIs vanish too.
        assert!(mo.eri[0][1][0][0].abs() < 1e-8);
        assert!(mo.eri[0][1][1][1].abs() < 1e-8);
    }

    #[test]
    fn fci_energy_at_equilibrium() {
        // Literature: E_FCI(H2, STO-3G, R = 1.4 bohr) ~ -1.1372 Ha
        // (correlation ~ -20.5 mHa on top of RHF -1.1167).
        let ints = h2_integrals(1.4);
        let (scf, mo, fci) = fci_from_integrals(&ints).unwrap();
        assert!((fci.energy + 1.1372).abs() < 2e-3, "E_FCI = {}", fci.energy);
        assert!(fci.correlation < 0.0, "correlation must lower the energy");
        assert!(
            (fci.correlation + 0.0205).abs() < 3e-3,
            "E_corr = {}",
            fci.correlation
        );
        assert!(fci.energy < scf.energy);
        let _ = mo;
    }

    #[test]
    fn fci_dissociates_to_two_hydrogen_atoms() {
        // STO-3G hydrogen atom energy is -0.4666 Ha; FCI H2 at large R must
        // approach 2 * -0.4666 = -0.9332 Ha (RHF famously does not).
        let ints = h2_integrals(12.0);
        let (scf, _, fci) = fci_from_integrals(&ints).unwrap();
        assert!(
            (fci.energy + 0.9332).abs() < 3e-3,
            "E_FCI(inf) = {}",
            fci.energy
        );
        assert!(scf.energy > fci.energy + 0.1, "RHF should overshoot");
    }

    #[test]
    fn spectrum_is_sorted_and_contains_triplet() {
        let ints = h2_integrals(1.4);
        let (scf, mo, fci) = fci_from_integrals(&ints).unwrap();
        for k in 1..4 {
            assert!(fci.spectrum[k] >= fci.spectrum[k - 1]);
        }
        // The triplet energy h11 + h22 + J12 - K12 must appear in the
        // spectrum (as an eigenvalue of the middle block).
        let expected_triplet =
            mo.h[0][0] + mo.h[1][1] + mo.eri[0][0][1][1] - mo.eri[0][1][0][1] + mo.e_nuc;
        let found = fci
            .spectrum
            .iter()
            .any(|&e| (e - expected_triplet).abs() < 1e-8);
        assert!(
            found,
            "triplet {expected_triplet} not in {:?}",
            fci.spectrum
        );
        let _ = scf;
    }

    #[test]
    fn correlation_grows_with_bond_stretch() {
        let short = fci_from_integrals(&h2_integrals(1.0)).unwrap().2;
        let long = fci_from_integrals(&h2_integrals(3.0)).unwrap().2;
        assert!(
            long.correlation < short.correlation,
            "stretch increases correlation"
        );
    }

    #[test]
    fn fci_minimum_near_equilibrium_bond() {
        let rs = [1.1, 1.2, 1.3, 1.35, 1.4, 1.45, 1.5, 1.7, 2.0];
        let es: Vec<f64> = rs
            .iter()
            .map(|&r| fci_from_integrals(&h2_integrals(r)).unwrap().2.energy)
            .collect();
        let (imin, _) = es
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        // Minimum near 1.35-1.45 bohr (~0.71-0.77 angstrom).
        assert!(
            (1.3..=1.5).contains(&rs[imin]),
            "minimum at {} bohr",
            rs[imin]
        );
    }
}

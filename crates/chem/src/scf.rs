//! Restricted Hartree-Fock for H2 in a minimal basis.
//!
//! Textbook closed-shell SCF (Szabo & Ostlund chapter 3): build the Fock
//! matrix from the density, solve the generalized eigenproblem through
//! Loewdin orthogonalization, iterate to self-consistency.

// Dense index arithmetic reads clearest with explicit loop indices; the
// iterator rewrites clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::integrals::H2Integrals;
use qismet_mathkit::{generalized_sym_eig, RMatrix};

/// Converged Hartree-Fock solution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfSolution {
    /// Total RHF energy (electronic + nuclear repulsion), hartree.
    pub energy: f64,
    /// Electronic energy only.
    pub electronic_energy: f64,
    /// Orbital energies, ascending.
    pub orbital_energies: [f64; 2],
    /// MO coefficient matrix: column `k` is MO `k` in the AO basis.
    pub mo_coeffs: [[f64; 2]; 2],
    /// SCF iterations used.
    pub iterations: usize,
}

/// SCF failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum ScfError {
    /// Did not converge within the iteration budget.
    NoConvergence {
        /// Energy change at the last step.
        last_delta: f64,
    },
    /// The eigensolver failed (singular overlap etc.).
    Eigen(String),
}

impl std::fmt::Display for ScfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScfError::NoConvergence { last_delta } => {
                write!(f, "SCF failed to converge (last dE = {last_delta:e})")
            }
            ScfError::Eigen(e) => write!(f, "SCF eigensolver failure: {e}"),
        }
    }
}

impl std::error::Error for ScfError {}

/// Runs restricted Hartree-Fock on precomputed H2 integrals.
///
/// # Errors
///
/// * [`ScfError::NoConvergence`] if the density does not settle in 200
///   iterations (does not happen for H2/STO-3G at sane geometries).
/// * [`ScfError::Eigen`] if the overlap matrix is numerically singular.
pub fn run_rhf(ints: &H2Integrals) -> Result<ScfSolution, ScfError> {
    let s = RMatrix::from_rows(&[&ints.s[0][..], &ints.s[1][..]]);
    let hcore = RMatrix::from_rows(&[&ints.hcore[0][..], &ints.hcore[1][..]]);

    // Initial guess: core Hamiltonian.
    let mut density = [[0.0f64; 2]; 2];
    let mut energy_prev = 0.0;
    let mut mo = [[0.0f64; 2]; 2];
    // Overwritten on the first SCF cycle; the initial values are never read.
    #[allow(unused_assignments)]
    let mut eps = [0.0f64; 2];

    const MAX_ITER: usize = 200;
    const TOL: f64 = 1e-12;

    for iter in 0..MAX_ITER {
        // Fock matrix: F = Hcore + G(D),
        // G_ij = sum_kl D_kl [ (ij|kl) - 1/2 (ik|jl) ].
        let mut f = [[0.0f64; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                let mut g = 0.0;
                for k in 0..2 {
                    for l in 0..2 {
                        g += density[k][l] * (ints.eri[i][j][k][l] - 0.5 * ints.eri[i][k][j][l]);
                    }
                }
                f[i][j] = ints.hcore[i][j] + g;
            }
        }
        let fm = RMatrix::from_rows(&[&f[0][..], &f[1][..]]);
        let eig = generalized_sym_eig(&fm, &s).map_err(|e| ScfError::Eigen(e.to_string()))?;
        eps = [eig.values[0], eig.values[1]];
        for r in 0..2 {
            for c in 0..2 {
                mo[r][c] = eig.vectors.at(r, c);
            }
        }
        // Normalize the occupied MO against S (generalized eigenvectors come
        // back S-orthonormal from our solver, but guard against drift).
        let c0 = [mo[0][0], mo[1][0]];
        let sc = s.matvec(&c0);
        let n = (c0[0] * sc[0] + c0[1] * sc[1]).sqrt();
        let c0 = [c0[0] / n, c0[1] / n];

        // Closed-shell density: D = 2 c_occ c_occ^T.
        let mut new_density = [[0.0f64; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                new_density[i][j] = 2.0 * c0[i] * c0[j];
            }
        }

        // Electronic energy: E = 1/2 sum_ij D_ij (Hcore_ij + F_ij).
        let mut e_elec = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                e_elec += 0.5 * new_density[i][j] * (hcore.at(i, j) + f[i][j]);
            }
        }

        let delta = (e_elec - energy_prev).abs();
        density = new_density;
        energy_prev = e_elec;
        if delta < TOL && iter > 0 {
            return Ok(ScfSolution {
                energy: e_elec + ints.e_nuc,
                electronic_energy: e_elec,
                orbital_energies: eps,
                mo_coeffs: mo,
                iterations: iter + 1,
            });
        }
    }
    Err(ScfError::NoConvergence {
        last_delta: energy_prev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrals::h2_integrals;

    #[test]
    fn rhf_energy_at_equilibrium_matches_reference() {
        // Szabo & Ostlund: E_RHF(H2, STO-3G, R = 1.4 bohr) = -1.1167 Ha.
        let ints = h2_integrals(1.4);
        let scf = run_rhf(&ints).unwrap();
        assert!((scf.energy + 1.1167).abs() < 2e-3, "E_RHF = {}", scf.energy);
        assert!(scf.iterations < 100);
    }

    #[test]
    fn orbital_energies_ordered_and_bonding_below_zero() {
        let ints = h2_integrals(1.4);
        let scf = run_rhf(&ints).unwrap();
        assert!(scf.orbital_energies[0] < scf.orbital_energies[1]);
        // Bonding orbital of H2 near -0.578 Ha.
        assert!(
            (scf.orbital_energies[0] + 0.578).abs() < 5e-3,
            "eps0 = {}",
            scf.orbital_energies[0]
        );
    }

    #[test]
    fn bonding_orbital_is_symmetric() {
        let ints = h2_integrals(1.4);
        let scf = run_rhf(&ints).unwrap();
        // The occupied MO of a homonuclear diatomic is the symmetric
        // combination: coefficients equal up to sign.
        let c = scf.mo_coeffs;
        assert!(
            (c[0][0] - c[1][0]).abs() < 1e-8 || (c[0][0] + c[1][0]).abs() < 1e-8,
            "c = {c:?}"
        );
    }

    #[test]
    fn energy_curve_has_minimum_near_equilibrium() {
        let energies: Vec<(f64, f64)> = [1.0, 1.2, 1.4, 1.6, 1.8, 2.2]
            .iter()
            .map(|&r| (r, run_rhf(&h2_integrals(r)).unwrap().energy))
            .collect();
        // Minimum should be near 1.35-1.4 bohr: energy at 1.4 below both
        // ends.
        let e14 = energies.iter().find(|(r, _)| *r == 1.4).unwrap().1;
        assert!(e14 < energies[0].1);
        assert!(e14 < energies.last().unwrap().1);
    }

    #[test]
    fn rhf_overbinds_at_dissociation() {
        // The famous RHF failure: at large R the energy sits well above
        // two isolated H atoms (2 * -0.4666 = -0.9332 Ha in STO-3G).
        let scf = run_rhf(&h2_integrals(10.0)).unwrap();
        assert!(scf.energy > -0.95, "E = {}", scf.energy);
    }

    #[test]
    fn scf_is_deterministic() {
        let a = run_rhf(&h2_integrals(1.4)).unwrap();
        let b = run_rhf(&h2_integrals(1.4)).unwrap();
        assert_eq!(a, b);
    }
}

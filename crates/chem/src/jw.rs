//! Jordan-Wigner fermion-to-qubit mapping, with the small complex-weighted
//! Pauli algebra it needs.
//!
//! Ladder operators map as
//! `a_p = (X_p + i Y_p)/2 * Z_{p-1} ... Z_0` (and the conjugate for
//! `a^dag_p`), so products of ladder operators become sums of Pauli strings
//! with complex intermediate coefficients. A Hermitian molecular Hamiltonian
//! always lands on real coefficients, which we assert before handing back a
//! [`PauliSum`].

// Dense index arithmetic reads clearest with explicit loop indices; the
// iterator rewrites clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use qismet_mathkit::Complex64;
use qismet_qsim::{Pauli, PauliString, PauliSum};
use std::collections::BTreeMap;

/// Multiplies two single-qubit Paulis: returns `(phase, product)` with
/// `phase` in `{1, i, -1, -i}`.
pub fn pauli_mul(a: Pauli, b: Pauli) -> (Complex64, Pauli) {
    use Pauli::*;
    let one = Complex64::ONE;
    let i = Complex64::I;
    match (a, b) {
        (I, p) => (one, p),
        (p, I) => (one, p),
        (X, X) | (Y, Y) | (Z, Z) => (one, I),
        (X, Y) => (i, Z),
        (Y, X) => (-i, Z),
        (Y, Z) => (i, X),
        (Z, Y) => (-i, X),
        (Z, X) => (i, Y),
        (X, Z) => (-i, Y),
    }
}

/// A sum of Pauli strings with complex coefficients, closed under addition
/// and multiplication. The intermediate representation of the JW transform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CPauliSum {
    n_qubits: usize,
    terms: BTreeMap<Vec<char>, Complex64>,
}

impl CPauliSum {
    /// The zero operator over `n` qubits.
    pub fn zero(n_qubits: usize) -> Self {
        CPauliSum {
            n_qubits,
            terms: BTreeMap::new(),
        }
    }

    /// The identity with a coefficient.
    pub fn identity(n_qubits: usize, coeff: Complex64) -> Self {
        let mut s = Self::zero(n_qubits);
        s.add_term(coeff, &vec![Pauli::I; n_qubits]);
        s
    }

    /// Builds from one weighted string.
    pub fn from_term(n_qubits: usize, coeff: Complex64, paulis: &[Pauli]) -> Self {
        let mut s = Self::zero(n_qubits);
        s.add_term(coeff, paulis);
        s
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of stored terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when no terms are stored.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    fn key(paulis: &[Pauli]) -> Vec<char> {
        paulis.iter().map(|p| p.to_char()).collect()
    }

    fn paulis_of_key(key: &[char]) -> Vec<Pauli> {
        key.iter()
            .map(|&c| Pauli::from_char(c).expect("internal key is valid"))
            .collect()
    }

    /// Adds `coeff * paulis`, merging like terms.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_term(&mut self, coeff: Complex64, paulis: &[Pauli]) {
        assert_eq!(paulis.len(), self.n_qubits, "pauli width");
        let entry = self
            .terms
            .entry(Self::key(paulis))
            .or_insert(Complex64::ZERO);
        *entry += coeff;
    }

    /// Adds another sum in place.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_assign(&mut self, other: &CPauliSum) {
        assert_eq!(self.n_qubits, other.n_qubits, "width");
        for (k, &c) in &other.terms {
            let entry = self.terms.entry(k.clone()).or_insert(Complex64::ZERO);
            *entry += c;
        }
    }

    /// Scales all coefficients by a complex factor.
    pub fn scaled(&self, k: Complex64) -> CPauliSum {
        CPauliSum {
            n_qubits: self.n_qubits,
            terms: self
                .terms
                .iter()
                .map(|(s, &c)| (s.clone(), c * k))
                .collect(),
        }
    }

    /// Operator product `self * other` with full phase tracking.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mul(&self, other: &CPauliSum) -> CPauliSum {
        assert_eq!(self.n_qubits, other.n_qubits, "width");
        let mut out = CPauliSum::zero(self.n_qubits);
        for (ka, &ca) in &self.terms {
            let pa = Self::paulis_of_key(ka);
            for (kb, &cb) in &other.terms {
                let pb = Self::paulis_of_key(kb);
                let mut phase = Complex64::ONE;
                let mut prod = Vec::with_capacity(self.n_qubits);
                for q in 0..self.n_qubits {
                    let (ph, p) = pauli_mul(pa[q], pb[q]);
                    phase *= ph;
                    prod.push(p);
                }
                out.add_term(ca * cb * phase, &prod);
            }
        }
        out.prune(0.0);
        out
    }

    /// Drops terms with |coeff| <= tol.
    pub fn prune(&mut self, tol: f64) {
        self.terms.retain(|_, c| c.abs() > tol);
    }

    /// Converts to a real [`PauliSum`].
    ///
    /// # Errors
    ///
    /// Returns the largest offending imaginary magnitude if any coefficient
    /// has `|Im| > tol` — a Hermitian operator must be real in the Pauli
    /// basis, so a failure here indicates an algebra bug upstream.
    pub fn into_real(mut self, tol: f64) -> Result<PauliSum, f64> {
        self.prune(1e-14);
        let max_imag = self
            .terms
            .values()
            .map(|c| c.im.abs())
            .fold(0.0f64, f64::max);
        if max_imag > tol {
            return Err(max_imag);
        }
        let mut out = PauliSum::zero(self.n_qubits);
        for (k, c) in self.terms {
            out.add_term(c.re, PauliString::new(Self::paulis_of_key(&k)));
        }
        Ok(out)
    }
}

/// The JW image of the annihilation operator `a_p` on an `n`-qubit register:
/// `Z_0 .. Z_{p-1} (X_p + i Y_p) / 2`.
pub fn annihilation(n: usize, p: usize) -> CPauliSum {
    assert!(p < n, "orbital index out of range");
    let mut x_string = vec![Pauli::I; n];
    let mut y_string = vec![Pauli::I; n];
    for q in 0..p {
        x_string[q] = Pauli::Z;
        y_string[q] = Pauli::Z;
    }
    x_string[p] = Pauli::X;
    y_string[p] = Pauli::Y;
    let mut s = CPauliSum::zero(n);
    s.add_term(Complex64::from_re(0.5), &x_string);
    s.add_term(Complex64::new(0.0, 0.5), &y_string);
    s
}

/// The JW image of the creation operator `a^dag_p`.
pub fn creation(n: usize, p: usize) -> CPauliSum {
    assert!(p < n, "orbital index out of range");
    let mut x_string = vec![Pauli::I; n];
    let mut y_string = vec![Pauli::I; n];
    for q in 0..p {
        x_string[q] = Pauli::Z;
        y_string[q] = Pauli::Z;
    }
    x_string[p] = Pauli::X;
    y_string[p] = Pauli::Y;
    let mut s = CPauliSum::zero(n);
    s.add_term(Complex64::from_re(0.5), &x_string);
    s.add_term(Complex64::new(0.0, -0.5), &y_string);
    s
}

/// The number operator `n_p = a^dag_p a_p` (useful for tests and particle
/// sector checks): `(I - Z_p) / 2`.
pub fn number_operator(n: usize, p: usize) -> CPauliSum {
    creation(n, p).mul(&annihilation(n, p))
}

/// Maps a second-quantized Hamiltonian
/// `H = sum_pq h[p][q] a+_p a_q + 1/2 sum_pqrs g[p][q][r][s] a+_p a+_q a_s a_r`
/// (physicist-notation two-body tensor `g[p][q][r][s] = <pq|rs>`) onto
/// qubits via Jordan-Wigner.
///
/// # Errors
///
/// Returns the residual imaginary magnitude if the result fails to be real
/// (indicating a non-Hermitian input tensor).
pub fn jordan_wigner(h_one: &[Vec<f64>], h_two: &[Vec<Vec<Vec<f64>>>]) -> Result<PauliSum, f64> {
    let n = h_one.len();
    let mut acc = CPauliSum::zero(n);
    for p in 0..n {
        for q in 0..n {
            let coeff = h_one[p][q];
            if coeff.abs() < 1e-14 {
                continue;
            }
            let term = creation(n, p).mul(&annihilation(n, q));
            acc.add_assign(&term.scaled(Complex64::from_re(coeff)));
        }
    }
    for p in 0..n {
        for q in 0..n {
            for r in 0..n {
                for s in 0..n {
                    let coeff = h_two[p][q][r][s];
                    if coeff.abs() < 1e-14 {
                        continue;
                    }
                    // 1/2 a+_p a+_q a_s a_r
                    let term = creation(n, p)
                        .mul(&creation(n, q))
                        .mul(&annihilation(n, s))
                        .mul(&annihilation(n, r));
                    acc.add_assign(&term.scaled(Complex64::from_re(0.5 * coeff)));
                }
            }
        }
    }
    let mut sum = acc.into_real(1e-9)?;
    sum.prune(1e-12);
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_multiplication_table() {
        use Pauli::*;
        let (ph, p) = pauli_mul(X, Y);
        assert_eq!(p, Z);
        assert!(ph.approx_eq(Complex64::I, 1e-15));
        let (ph, p) = pauli_mul(Y, X);
        assert_eq!(p, Z);
        assert!(ph.approx_eq(-Complex64::I, 1e-15));
        let (ph, p) = pauli_mul(Z, Z);
        assert_eq!(p, I);
        assert!(ph.approx_eq(Complex64::ONE, 1e-15));
    }

    #[test]
    fn pauli_mul_matches_dense_matrices() {
        use Pauli::*;
        for a in [I, X, Y, Z] {
            for b in [I, X, Y, Z] {
                let (phase, p) = pauli_mul(a, b);
                let dense = a.matrix().matmul(&b.matrix()).unwrap();
                let expect = p.matrix().scaled_c(phase);
                assert!(dense.approx_eq(&expect, 1e-14), "{a:?} * {b:?}");
            }
        }
    }

    #[test]
    fn anticommutation_relations() {
        // {a_p, a+_q} = delta_pq.
        let n = 3;
        for p in 0..n {
            for q in 0..n {
                let mut anti = annihilation(n, p).mul(&creation(n, q));
                anti.add_assign(&creation(n, q).mul(&annihilation(n, p)));
                anti.prune(1e-12);
                if p == q {
                    assert_eq!(anti.len(), 1, "p={p}, q={q}: {anti:?}");
                    let real = anti.into_real(1e-12).unwrap();
                    assert_eq!(real.terms().len(), 1);
                    assert!((real.terms()[0].0 - 1.0).abs() < 1e-12);
                    assert!(real.terms()[0].1.is_identity());
                } else {
                    assert!(anti.is_empty(), "p={p}, q={q}");
                }
            }
        }
    }

    #[test]
    fn a_squared_is_zero() {
        let n = 2;
        let aa = annihilation(n, 1).mul(&annihilation(n, 1));
        assert!(aa.is_empty());
        let cc = creation(n, 0).mul(&creation(n, 0));
        assert!(cc.is_empty());
    }

    #[test]
    fn number_operator_is_projector_form() {
        // n_p = (I - Z_p)/2.
        let op = number_operator(2, 1).into_real(1e-12).unwrap();
        let mut found_i = false;
        let mut found_z = false;
        for (c, s) in op.terms() {
            if s.is_identity() {
                assert!((c - 0.5).abs() < 1e-12);
                found_i = true;
            } else {
                assert_eq!(s.label(), "ZI");
                assert!((c + 0.5).abs() < 1e-12);
                found_z = true;
            }
        }
        assert!(found_i && found_z);
    }

    #[test]
    fn single_mode_hamiltonian() {
        // H = e * a+_0 a_0 on one qubit -> e/2 (I - Z).
        let h_one = vec![vec![1.5]];
        let h_two = vec![vec![vec![vec![0.0]]]];
        let sum = jordan_wigner(&h_one, &h_two).unwrap();
        let m = sum.to_matrix();
        // Eigenvalues 0 (empty) and 1.5 (occupied).
        let eig = qismet_mathkit::herm_eig(&m).unwrap();
        assert!((eig.values[0] - 0.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.5).abs() < 1e-10);
    }

    #[test]
    fn hopping_hamiltonian_spectrum() {
        // H = -t (a+_0 a_1 + a+_1 a_0): single-particle eigenvalues -t, +t;
        // two-particle sector (both sites filled) has energy 0.
        let t = 0.7;
        let h_one = vec![vec![0.0, -t], vec![-t, 0.0]];
        let h_two = vec![vec![vec![vec![0.0; 2]; 2]; 2]; 2];
        let sum = jordan_wigner(&h_one, &h_two).unwrap();
        let eig = qismet_mathkit::herm_eig(&sum.to_matrix()).unwrap();
        let mut vals = eig.values.clone();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] + t).abs() < 1e-10, "{vals:?}");
        assert!((vals[3] - t).abs() < 1e-10, "{vals:?}");
    }

    #[test]
    fn hubbard_interaction_energy() {
        // H = U n_0 n_1: occupation of both modes costs U.
        // In physicist convention, g[p][q][r][s] = <pq|rs> with
        // n_0 n_1 = a+_0 a+_1 a_1 a_0 appearing twice (pq and qp orderings),
        // so set <01|01> = <10|10> = U and the 1/2 restores U n_0 n_1.
        let u = 2.0;
        let mut h_two = vec![vec![vec![vec![0.0; 2]; 2]; 2]; 2];
        h_two[0][1][0][1] = u;
        h_two[1][0][1][0] = u;
        let h_one = vec![vec![0.0; 2]; 2];
        let sum = jordan_wigner(&h_one, &h_two).unwrap();
        let eig = qismet_mathkit::herm_eig(&sum.to_matrix()).unwrap();
        // Spectrum: 0, 0, 0, U.
        assert!((eig.values[3] - u).abs() < 1e-10, "{:?}", eig.values);
        assert!(eig.values[2].abs() < 1e-10);
    }

    #[test]
    fn rejects_non_hermitian_input() {
        let h_one = vec![vec![0.0, 1.0], vec![0.0, 0.0]]; // not symmetric
        let h_two = vec![vec![vec![vec![0.0; 2]; 2]; 2]; 2];
        // a+_0 a_1 alone is not Hermitian -> imaginary Pauli coefficients.
        assert!(jordan_wigner(&h_one, &h_two).is_err());
    }
}

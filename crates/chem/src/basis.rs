//! STO-3G basis functions for hydrogen.
//!
//! Each atomic orbital is a contraction of three s-type Gaussian primitives.
//! The exponents/coefficients below are the standard STO-3G hydrogen values
//! (zeta = 1.24), the same basis the quantum-chemistry references for the
//! H2-on-a-quantum-computer experiments use.

/// One s-type Gaussian primitive `N * exp(-alpha * r^2)` with its
/// normalization constant folded in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    /// Gaussian exponent (bohr^-2).
    pub alpha: f64,
    /// Contraction coefficient times the primitive normalization constant.
    pub coeff: f64,
}

/// A contracted s-type Gaussian basis function centered on an atom.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisFunction {
    /// Center in bohr (3D).
    pub center: [f64; 3],
    /// The contracted primitives, each with normalization folded in.
    pub primitives: Vec<Primitive>,
}

/// Standard STO-3G exponents for hydrogen (zeta = 1.24).
pub const STO3G_H_EXPONENTS: [f64; 3] = [3.425_250_91, 0.623_913_73, 0.168_855_40];

/// Standard STO-3G contraction coefficients for hydrogen.
pub const STO3G_H_COEFFS: [f64; 3] = [0.154_328_97, 0.535_328_14, 0.444_634_54];

impl BasisFunction {
    /// Builds the STO-3G hydrogen 1s function at `center` (bohr).
    ///
    /// Primitives are individually normalized ((2a/pi)^(3/4)) and the
    /// contraction is renormalized so `<chi|chi> = 1`.
    pub fn sto3g_hydrogen(center: [f64; 3]) -> Self {
        let mut primitives: Vec<Primitive> = STO3G_H_EXPONENTS
            .iter()
            .zip(STO3G_H_COEFFS.iter())
            .map(|(&alpha, &c)| Primitive {
                alpha,
                coeff: c * (2.0 * alpha / std::f64::consts::PI).powf(0.75),
            })
            .collect();
        // Renormalize the contraction.
        let mut s = 0.0;
        for a in &primitives {
            for b in &primitives {
                s += a.coeff * b.coeff * primitive_overlap(a.alpha, b.alpha, 0.0);
            }
        }
        let norm = 1.0 / s.sqrt();
        for p in &mut primitives {
            p.coeff *= norm;
        }
        BasisFunction { center, primitives }
    }

    /// Squared distance to another function's center.
    pub fn dist_sqr(&self, other: &BasisFunction) -> f64 {
        dist_sqr(self.center, other.center)
    }
}

/// Squared Euclidean distance between two points.
pub fn dist_sqr(a: [f64; 3], b: [f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

/// Gaussian product center `P = (alpha A + beta B) / (alpha + beta)`.
pub fn gaussian_product_center(alpha: f64, a: [f64; 3], beta: f64, b: [f64; 3]) -> [f64; 3] {
    let p = alpha + beta;
    [
        (alpha * a[0] + beta * b[0]) / p,
        (alpha * a[1] + beta * b[1]) / p,
        (alpha * a[2] + beta * b[2]) / p,
    ]
}

/// Unnormalized overlap of two s-primitives separated by `r2 = |A-B|^2`:
/// `(pi / (alpha+beta))^(3/2) * exp(-alpha*beta/(alpha+beta) * r2)`.
pub fn primitive_overlap(alpha: f64, beta: f64, r2: f64) -> f64 {
    let p = alpha + beta;
    let mu = alpha * beta / p;
    (std::f64::consts::PI / p).powf(1.5) * (-mu * r2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracted_function_is_normalized() {
        let chi = BasisFunction::sto3g_hydrogen([0.0; 3]);
        let mut s = 0.0;
        for a in &chi.primitives {
            for b in &chi.primitives {
                s += a.coeff * b.coeff * primitive_overlap(a.alpha, b.alpha, 0.0);
            }
        }
        assert!((s - 1.0).abs() < 1e-12, "self-overlap {s}");
    }

    #[test]
    fn product_center_between_atoms() {
        let p = gaussian_product_center(1.0, [0.0; 3], 1.0, [0.0, 0.0, 2.0]);
        assert_eq!(p, [0.0, 0.0, 1.0]);
        let p = gaussian_product_center(3.0, [0.0; 3], 1.0, [0.0, 0.0, 4.0]);
        assert_eq!(p, [0.0, 0.0, 1.0]);
    }

    #[test]
    fn distance_helper() {
        assert_eq!(dist_sqr([0.0; 3], [3.0, 4.0, 0.0]), 25.0);
        let a = BasisFunction::sto3g_hydrogen([0.0; 3]);
        let b = BasisFunction::sto3g_hydrogen([0.0, 0.0, 1.4]);
        assert!((a.dist_sqr(&b) - 1.96).abs() < 1e-12);
    }

    #[test]
    fn overlap_decays_with_distance() {
        let near = primitive_overlap(0.5, 0.5, 1.0);
        let far = primitive_overlap(0.5, 0.5, 9.0);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn sto3g_constants_match_reference() {
        // Guard against accidental edits to the tabulated basis.
        assert!((STO3G_H_EXPONENTS[0] - 3.42525091).abs() < 1e-8);
        assert!((STO3G_H_COEFFS[2] - 0.44463454).abs() < 1e-8);
    }
}

//! Scripted-worker tests for the hardened [`WorkerPool`].
//!
//! Each test drives the *real* coordinator — handshake, dispatch queue,
//! deadline handling, blame accounting — against in-memory mock transports
//! whose behavior is a deterministic per-session script. No processes, no
//! sockets: assign-deadline recovery, heartbeat keepalive, quarantine,
//! poison-spec isolation, and speculative dedup are all exercised at the
//! `Connector`/`Transport` seam the production paths use.

use qismet_cluster::{
    Assign, ClusterError, Connector, Done, Hello, Message, Outcome, Transport, WorkerPool,
};
use serde::Value;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const FP: u64 = 0x51c2_7a11_feed_f00d;

/// The deterministic record a scripted worker produces for `index` — the
/// same pure-function-of-the-spec contract real workers honor.
fn record(index: usize) -> Value {
    Value::Object(vec![
        ("index".into(), Value::U64(index as u64)),
        ("energy".into(), Value::F64(-(index as f64) / 8.0)),
    ])
}

fn seed_of(index: usize) -> u64 {
    0x9e37_79b9 ^ (index as u64).wrapping_mul(0x1000_0001)
}

fn expected(n: usize) -> Vec<(usize, Value)> {
    (0..n).map(|i| (i, record(i))).collect()
}

/// One session's scripted behavior. A connector holds a queue of these;
/// the last script repeats for every further session.
#[derive(Clone)]
enum Script {
    /// Serve every assignment normally.
    Solid,
    /// Serve normally, but sleep this long before each result (straggler).
    SlowSolid(Duration),
    /// Send this many heartbeat pings before each result (slow, alive).
    PingThenSolid(usize),
    /// Serve `n` results, then fail the channel on the next read.
    DieAfter(usize),
    /// Never produce a result: every post-handshake read times out, the
    /// way a transport deadline surfaces a hung peer.
    Hang,
    /// Reset the channel whenever this spec index is next in line.
    CrashOnSpec(usize),
    /// Fail the connect itself (worker unreachable).
    ConnectFail,
    /// Answer an assignment with a result for a spec that was never
    /// assigned (protocol violation).
    Rogue,
}

/// Counters shared across every scripted session of one pool run.
#[derive(Default)]
struct PoolLog {
    /// `Pong` frames the coordinator sent back to scripted pings.
    pongs: AtomicUsize,
    /// Results produced across all sessions (counts speculative twins).
    dones: AtomicUsize,
}

struct ScriptedTransport {
    script: Script,
    threads: usize,
    log: Arc<PoolLog>,
    /// Coordinator `Hello` received and not yet answered.
    greeted: bool,
    hello: Option<Hello>,
    pending: VecDeque<usize>,
    served: usize,
    pings_left: usize,
    deadline: Option<Duration>,
}

impl Transport for ScriptedTransport {
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        match msg {
            Message::Hello(h) => {
                self.hello = Some(h.clone());
                self.greeted = true;
            }
            Message::Assign(Assign { indices }) => self.pending.extend(indices.iter().copied()),
            Message::Pong => {
                self.log.pongs.fetch_add(1, Ordering::SeqCst);
            }
            _ => {}
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Message> {
        if self.greeted {
            self.greeted = false;
            let theirs = self.hello.as_ref().expect("coordinator hello stored");
            return Ok(Message::Hello(Hello {
                worker_id: theirs.worker_id,
                fingerprint: theirs.fingerprint,
                spec_count: theirs.spec_count,
                token: theirs.token.clone(),
                threads: self.threads,
                build: theirs.build.clone(),
            }));
        }
        if matches!(self.script, Script::Hang) {
            assert!(
                self.deadline.is_some(),
                "a hung mock without an assign deadline would block the pool forever"
            );
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "scripted hang: read deadline expired",
            ));
        }
        let Some(&next) = self.pending.front() else {
            return Err(io::ErrorKind::UnexpectedEof.into());
        };
        match self.script {
            Script::DieAfter(n) if self.served >= n => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "scripted channel death",
                ));
            }
            Script::CrashOnSpec(bad) if next == bad => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("scripted crash on spec {bad}"),
                ));
            }
            Script::SlowSolid(pause) => std::thread::sleep(pause),
            Script::PingThenSolid(n) => {
                if self.pings_left > 0 {
                    self.pings_left -= 1;
                    return Ok(Message::Ping);
                }
                self.pings_left = n;
            }
            Script::Rogue => {
                return Ok(Message::Done(Done {
                    index: next + 999,
                    seed: 0,
                    outcome: Outcome::Record(record(next + 999)),
                    stats: None,
                }));
            }
            _ => {}
        }
        self.pending.pop_front();
        self.served += 1;
        self.log.dones.fetch_add(1, Ordering::SeqCst);
        Ok(Message::Done(Done {
            index: next,
            seed: seed_of(next),
            outcome: Outcome::Record(record(next)),
            stats: None,
        }))
    }

    fn peer(&self) -> String {
        "scripted".into()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.deadline = timeout;
        Ok(())
    }
}

struct ScriptedConnector {
    scripts: Mutex<VecDeque<Script>>,
    threads: usize,
    log: Arc<PoolLog>,
}

impl ScriptedConnector {
    fn slot(scripts: &[Script], threads: usize, log: &Arc<PoolLog>) -> Box<dyn Connector> {
        assert!(!scripts.is_empty(), "a slot needs at least one script");
        Box::new(ScriptedConnector {
            scripts: Mutex::new(scripts.iter().cloned().collect()),
            threads,
            log: Arc::clone(log),
        })
    }
}

impl Connector for ScriptedConnector {
    fn connect(&self, _worker: usize) -> io::Result<Box<dyn Transport>> {
        let script = {
            let mut scripts = self.scripts.lock().expect("script queue poisoned");
            if scripts.len() > 1 {
                scripts.pop_front().expect("non-empty script queue")
            } else {
                scripts.front().expect("non-empty script queue").clone()
            }
        };
        if matches!(script, Script::ConnectFail) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "scripted connect failure",
            ));
        }
        let pings_left = match script {
            Script::PingThenSolid(n) => n,
            _ => 0,
        };
        Ok(Box::new(ScriptedTransport {
            script,
            threads: self.threads,
            log: Arc::clone(&self.log),
            greeted: false,
            hello: None,
            pending: VecDeque::new(),
            served: 0,
            pings_left,
            deadline: None,
        }))
    }

    fn describe(&self) -> String {
        "scripted worker".into()
    }
}

/// Runs a pool over `n` specs, collecting sink entries as (index, seed).
fn run_pool(
    pool: &WorkerPool,
    n: usize,
) -> (
    Result<qismet_cluster::ClusterOutcome, ClusterError>,
    Vec<(usize, u64)>,
) {
    let pending: Vec<usize> = (0..n).collect();
    let sunk = Mutex::new(Vec::new());
    let result = pool.run(FP, n, &pending, |entry| {
        sunk.lock()
            .expect("sink log poisoned")
            .push((entry.index, entry.seed));
        Ok(())
    });
    let sunk = sunk.into_inner().expect("sink log poisoned");
    (result, sunk)
}

#[test]
fn hung_session_hits_the_deadline_and_the_respawn_completes_the_work() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::Hang, Script::Solid],
        2,
        &log,
    )])
    .with_assign_timeout(Some(Duration::from_millis(50)));
    let (result, _) = run_pool(&pool, 4);
    let outcome = result.expect("the respawned session must finish the campaign");
    assert_eq!(outcome.records, expected(4));
    assert_eq!(outcome.respawns, 1, "exactly one deadline-driven respawn");
    assert_eq!(outcome.lost_workers, 0);
}

#[test]
fn heartbeats_are_answered_and_keep_a_slow_session_alive() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::PingThenSolid(2)],
        1,
        &log,
    )])
    .with_assign_timeout(Some(Duration::from_millis(50)));
    let (result, _) = run_pool(&pool, 3);
    let outcome = result.expect("a pinging worker must never be torn down");
    assert_eq!(outcome.records, expected(3));
    assert_eq!(outcome.respawns, 0, "heartbeats must not count as losses");
    // Two pings per result, each answered with a coordinator Pong.
    assert_eq!(log.pongs.load(Ordering::SeqCst), 6);
}

#[test]
fn respawn_budget_exhaustion_loses_the_worker_with_a_typed_error() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::DieAfter(0)],
        2,
        &log,
    )])
    .with_max_respawns(1);
    let (result, sunk) = run_pool(&pool, 4);
    match result.expect_err("a worker dying before any result must be lost") {
        ClusterError::WorkerLost {
            worker, respawns, ..
        } => {
            assert_eq!(worker, 0);
            assert_eq!(respawns, 1);
        }
        other => panic!("expected WorkerLost, got {other}"),
    }
    assert!(sunk.is_empty(), "no result ever flowed");
}

#[test]
fn unreachable_worker_consumes_the_budget_like_a_channel_loss() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::ConnectFail],
        2,
        &log,
    )])
    .with_max_respawns(0);
    let (result, _) = run_pool(&pool, 2);
    assert!(
        matches!(
            result.expect_err("an unreachable worker must surface as lost"),
            ClusterError::WorkerLost { worker: 0, .. }
        ),
        "connect failures share the worker-lost path"
    );
}

#[test]
fn lost_slot_work_is_redispatched_to_the_surviving_worker() {
    let log = Arc::new(PoolLog::default());
    // Slot 0 dies before every first result and exhausts one respawn; its
    // batches land back in the queue for the slow-but-solid survivor.
    let pool = WorkerPool::new(vec![
        ScriptedConnector::slot(&[Script::DieAfter(0)], 1, &log),
        ScriptedConnector::slot(&[Script::SlowSolid(Duration::from_millis(40))], 1, &log),
    ])
    .with_max_respawns(1);
    let (result, _) = run_pool(&pool, 8);
    let outcome = result.expect("the survivor must absorb the lost slot's work");
    assert_eq!(outcome.records, expected(8));
    assert_eq!(outcome.lost_workers, 1);
    assert_eq!(outcome.quarantined_workers, 0);
}

#[test]
fn lifetime_strikes_quarantine_a_flaky_worker() {
    let log = Arc::new(PoolLog::default());
    // Each session is productive (one result), so the consecutive-failure
    // respawn budget refills forever — only the lifetime strike counter
    // catches a worker limping like this.
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::DieAfter(1)],
        1,
        &log,
    )])
    .with_max_respawns(10)
    .with_quarantine_after(Some(2));
    let (result, sunk) = run_pool(&pool, 6);
    match result.expect_err("the only worker got quarantined mid-campaign") {
        ClusterError::WorkerQuarantined {
            worker, strikes, ..
        } => {
            assert_eq!(worker, 0);
            assert_eq!(strikes, 2);
        }
        other => panic!("expected WorkerQuarantined, got {other}"),
    }
    assert_eq!(sunk.len(), 2, "one result per session reached the sink");
}

#[test]
fn quarantined_slot_work_is_redispatched_to_the_surviving_worker() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![
        ScriptedConnector::slot(&[Script::DieAfter(1)], 1, &log),
        ScriptedConnector::slot(&[Script::SlowSolid(Duration::from_millis(40))], 1, &log),
    ])
    .with_max_respawns(10)
    .with_quarantine_after(Some(2));
    let (result, _) = run_pool(&pool, 8);
    let outcome = result.expect("the survivor must absorb the quarantined slot's work");
    assert_eq!(outcome.records, expected(8));
    assert_eq!(outcome.quarantined_workers, 1);
    assert_eq!(outcome.lost_workers, 0);
}

#[test]
fn a_spec_that_keeps_killing_workers_is_poisoned_and_reported() {
    let log = Arc::new(PoolLog::default());
    // Every session of the only worker dies the moment spec 2 is next in
    // line. Blamed crashes do not charge the respawn budget, so the default
    // budget of 2 survives the repeated re-dispatch; after two precise
    // strikes the spec is isolated and everything else completes.
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::CrashOnSpec(2)],
        4,
        &log,
    )]);
    let (result, mut sunk) = run_pool(&pool, 4);
    match result.expect_err("spec 2 must be poisoned") {
        ClusterError::PoisonedSpecs { indices, completed } => {
            assert_eq!(indices, vec![2]);
            assert_eq!(completed, 3);
        }
        other => panic!("expected PoisonedSpecs, got {other}"),
    }
    sunk.sort_unstable();
    let survivors: Vec<usize> = sunk.iter().map(|&(index, _)| index).collect();
    assert_eq!(
        survivors,
        vec![0, 1, 3],
        "every non-poisoned spec must reach the durable sink"
    );
    assert!(sunk.iter().all(|&(index, seed)| seed == seed_of(index)));
}

#[test]
fn speculation_duplicates_a_straggler_and_dedups_first_result_wins() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![
        ScriptedConnector::slot(&[Script::SlowSolid(Duration::from_millis(500))], 1, &log),
        ScriptedConnector::slot(&[Script::Solid], 1, &log),
    ])
    .with_speculative(true);
    let (result, sunk) = run_pool(&pool, 4);
    let outcome = result.expect("speculative execution must not change the result");
    assert_eq!(outcome.records, expected(4));
    assert_eq!(outcome.respawns, 0);
    // The fast worker finished the queue, then mirrored the straggler's
    // in-flight spec: one more result was produced than specs exist, and
    // the duplicate was dropped before the sink/merge.
    assert_eq!(log.dones.load(Ordering::SeqCst), 5);
    assert_eq!(sunk.len(), 4, "the speculative twin must not re-journal");
}

#[test]
fn rogue_results_for_unassigned_specs_are_a_fatal_protocol_error() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(&[Script::Rogue], 2, &log)]);
    let (result, _) = run_pool(&pool, 2);
    assert!(
        matches!(
            result.expect_err("an unassigned result must not be merged"),
            ClusterError::Protocol { worker: 0, .. }
        ),
        "rogue results are protocol violations, not channel losses"
    );
}

#[test]
fn nonsense_pool_configuration_is_rejected_before_any_session() {
    let log = Arc::new(PoolLog::default());
    let cases: [Box<dyn Fn(WorkerPool) -> WorkerPool>; 4] = [
        Box::new(|p| p.with_assign_timeout(Some(Duration::ZERO))),
        Box::new(|p| p.with_handshake_timeout(Duration::ZERO)),
        Box::new(|p| p.with_quarantine_after(Some(0))),
        Box::new(|p| p.with_poison_after(0)),
    ];
    for misconfigure in cases {
        let pool = misconfigure(WorkerPool::new(vec![ScriptedConnector::slot(
            &[Script::Solid],
            1,
            &log,
        )]));
        let (result, sunk) = run_pool(&pool, 2);
        assert!(
            matches!(
                result.expect_err("zero durations/thresholds are nonsense"),
                ClusterError::Config(_)
            ),
            "misconfiguration must surface as ClusterError::Config"
        );
        assert!(sunk.is_empty(), "validation must run before any dispatch");
    }
}

//! Scripted-worker tests for the hardened [`WorkerPool`].
//!
//! Each test drives the *real* coordinator — handshake, dispatch queue,
//! deadline handling, blame accounting — against in-memory mock transports
//! whose behavior is a deterministic per-session script. No processes, no
//! sockets: assign-deadline recovery, heartbeat keepalive, quarantine,
//! poison-spec isolation, and speculative dedup are all exercised at the
//! `Connector`/`Transport` seam the production paths use.

use qismet_cluster::{
    Assign, ClusterError, Connector, Done, Hello, Message, Outcome, Transport, WorkerPool,
};
use serde::Value;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const FP: u64 = 0x51c2_7a11_feed_f00d;

/// The deterministic record a scripted worker produces for `index` — the
/// same pure-function-of-the-spec contract real workers honor.
fn record(index: usize) -> Value {
    Value::Object(vec![
        ("index".into(), Value::U64(index as u64)),
        ("energy".into(), Value::F64(-(index as f64) / 8.0)),
    ])
}

fn seed_of(index: usize) -> u64 {
    0x9e37_79b9 ^ (index as u64).wrapping_mul(0x1000_0001)
}

fn expected(n: usize) -> Vec<(usize, Value)> {
    (0..n).map(|i| (i, record(i))).collect()
}

/// One session's scripted behavior. A connector holds a queue of these;
/// the last script repeats for every further session.
#[derive(Clone)]
enum Script {
    /// Serve every assignment normally.
    Solid,
    /// Serve normally, but sleep this long before each result (straggler).
    SlowSolid(Duration),
    /// Send this many heartbeat pings before each result (slow, alive).
    PingThenSolid(usize),
    /// Serve `n` results, then fail the channel on the next read.
    DieAfter(usize),
    /// Never produce a result: every post-handshake read times out, the
    /// way a transport deadline surfaces a hung peer.
    Hang,
    /// Reset the channel whenever this spec index is next in line.
    CrashOnSpec(usize),
    /// Fail the connect itself (worker unreachable).
    ConnectFail,
    /// Answer an assignment with a result for a spec that was never
    /// assigned (protocol violation).
    Rogue,
}

/// Counters shared across every scripted session of one pool run.
#[derive(Default)]
struct PoolLog {
    /// `Pong` frames the coordinator sent back to scripted pings.
    pongs: AtomicUsize,
    /// Results produced across all sessions (counts speculative twins).
    dones: AtomicUsize,
}

struct ScriptedTransport {
    script: Script,
    threads: usize,
    log: Arc<PoolLog>,
    /// Coordinator `Hello` received and not yet answered.
    greeted: bool,
    hello: Option<Hello>,
    pending: VecDeque<usize>,
    served: usize,
    pings_left: usize,
    deadline: Option<Duration>,
}

impl Transport for ScriptedTransport {
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        match msg {
            Message::Hello(h) => {
                self.hello = Some(h.clone());
                self.greeted = true;
            }
            Message::Assign(Assign { indices }) => self.pending.extend(indices.iter().copied()),
            Message::Pong => {
                self.log.pongs.fetch_add(1, Ordering::SeqCst);
            }
            _ => {}
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Message> {
        if self.greeted {
            self.greeted = false;
            let theirs = self.hello.as_ref().expect("coordinator hello stored");
            return Ok(Message::Hello(Hello {
                worker_id: theirs.worker_id,
                fingerprint: theirs.fingerprint,
                spec_count: theirs.spec_count,
                token: theirs.token.clone(),
                threads: self.threads,
                build: theirs.build.clone(),
            }));
        }
        if matches!(self.script, Script::Hang) {
            assert!(
                self.deadline.is_some(),
                "a hung mock without an assign deadline would block the pool forever"
            );
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "scripted hang: read deadline expired",
            ));
        }
        let Some(&next) = self.pending.front() else {
            return Err(io::ErrorKind::UnexpectedEof.into());
        };
        match self.script {
            Script::DieAfter(n) if self.served >= n => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "scripted channel death",
                ));
            }
            Script::CrashOnSpec(bad) if next == bad => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("scripted crash on spec {bad}"),
                ));
            }
            Script::SlowSolid(pause) => std::thread::sleep(pause),
            Script::PingThenSolid(n) => {
                if self.pings_left > 0 {
                    self.pings_left -= 1;
                    return Ok(Message::Ping);
                }
                self.pings_left = n;
            }
            Script::Rogue => {
                return Ok(Message::Done(Done {
                    index: next + 999,
                    seed: 0,
                    outcome: Outcome::Record(record(next + 999)),
                    stats: None,
                }));
            }
            _ => {}
        }
        self.pending.pop_front();
        self.served += 1;
        self.log.dones.fetch_add(1, Ordering::SeqCst);
        Ok(Message::Done(Done {
            index: next,
            seed: seed_of(next),
            outcome: Outcome::Record(record(next)),
            stats: None,
        }))
    }

    fn peer(&self) -> String {
        "scripted".into()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.deadline = timeout;
        Ok(())
    }
}

struct ScriptedConnector {
    scripts: Mutex<VecDeque<Script>>,
    threads: usize,
    log: Arc<PoolLog>,
}

impl ScriptedConnector {
    fn slot(scripts: &[Script], threads: usize, log: &Arc<PoolLog>) -> Box<dyn Connector> {
        assert!(!scripts.is_empty(), "a slot needs at least one script");
        Box::new(ScriptedConnector {
            scripts: Mutex::new(scripts.iter().cloned().collect()),
            threads,
            log: Arc::clone(log),
        })
    }
}

impl Connector for ScriptedConnector {
    fn connect(&self, _worker: usize) -> io::Result<Box<dyn Transport>> {
        let script = {
            let mut scripts = self.scripts.lock().expect("script queue poisoned");
            if scripts.len() > 1 {
                scripts.pop_front().expect("non-empty script queue")
            } else {
                scripts.front().expect("non-empty script queue").clone()
            }
        };
        if matches!(script, Script::ConnectFail) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "scripted connect failure",
            ));
        }
        let pings_left = match script {
            Script::PingThenSolid(n) => n,
            _ => 0,
        };
        Ok(Box::new(ScriptedTransport {
            script,
            threads: self.threads,
            log: Arc::clone(&self.log),
            greeted: false,
            hello: None,
            pending: VecDeque::new(),
            served: 0,
            pings_left,
            deadline: None,
        }))
    }

    fn describe(&self) -> String {
        "scripted worker".into()
    }
}

/// Runs a pool over `n` specs, collecting sink entries as (index, seed).
fn run_pool(
    pool: &WorkerPool,
    n: usize,
) -> (
    Result<qismet_cluster::ClusterOutcome, ClusterError>,
    Vec<(usize, u64)>,
) {
    let pending: Vec<usize> = (0..n).collect();
    let sunk = Mutex::new(Vec::new());
    let result = pool.run(FP, n, &pending, |entry| {
        sunk.lock()
            .expect("sink log poisoned")
            .push((entry.index, entry.seed));
        Ok(())
    });
    let sunk = sunk.into_inner().expect("sink log poisoned");
    (result, sunk)
}

#[test]
fn hung_session_hits_the_deadline_and_the_respawn_completes_the_work() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::Hang, Script::Solid],
        2,
        &log,
    )])
    .with_assign_timeout(Some(Duration::from_millis(50)));
    let (result, _) = run_pool(&pool, 4);
    let outcome = result.expect("the respawned session must finish the campaign");
    assert_eq!(outcome.records, expected(4));
    assert_eq!(outcome.respawns, 1, "exactly one deadline-driven respawn");
    assert_eq!(outcome.lost_workers, 0);
}

#[test]
fn heartbeats_are_answered_and_keep_a_slow_session_alive() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::PingThenSolid(2)],
        1,
        &log,
    )])
    .with_assign_timeout(Some(Duration::from_millis(50)));
    let (result, _) = run_pool(&pool, 3);
    let outcome = result.expect("a pinging worker must never be torn down");
    assert_eq!(outcome.records, expected(3));
    assert_eq!(outcome.respawns, 0, "heartbeats must not count as losses");
    // Two pings per result, each answered with a coordinator Pong.
    assert_eq!(log.pongs.load(Ordering::SeqCst), 6);
}

#[test]
fn respawn_budget_exhaustion_loses_the_worker_with_a_typed_error() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::DieAfter(0)],
        2,
        &log,
    )])
    .with_max_respawns(1);
    let (result, sunk) = run_pool(&pool, 4);
    match result.expect_err("a worker dying before any result must be lost") {
        ClusterError::WorkerLost {
            worker, respawns, ..
        } => {
            assert_eq!(worker, 0);
            assert_eq!(respawns, 1);
        }
        other => panic!("expected WorkerLost, got {other}"),
    }
    assert!(sunk.is_empty(), "no result ever flowed");
}

#[test]
fn unreachable_worker_consumes_the_budget_like_a_channel_loss() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::ConnectFail],
        2,
        &log,
    )])
    .with_max_respawns(0);
    let (result, _) = run_pool(&pool, 2);
    assert!(
        matches!(
            result.expect_err("an unreachable worker must surface as lost"),
            ClusterError::WorkerLost { worker: 0, .. }
        ),
        "connect failures share the worker-lost path"
    );
}

#[test]
fn lost_slot_work_is_redispatched_to_the_surviving_worker() {
    let log = Arc::new(PoolLog::default());
    // Slot 0 dies before every first result and exhausts one respawn; its
    // batches land back in the queue for the slow-but-solid survivor.
    let pool = WorkerPool::new(vec![
        ScriptedConnector::slot(&[Script::DieAfter(0)], 1, &log),
        ScriptedConnector::slot(&[Script::SlowSolid(Duration::from_millis(40))], 1, &log),
    ])
    .with_max_respawns(1);
    let (result, _) = run_pool(&pool, 8);
    let outcome = result.expect("the survivor must absorb the lost slot's work");
    assert_eq!(outcome.records, expected(8));
    assert_eq!(outcome.lost_workers, 1);
    assert_eq!(outcome.quarantined_workers, 0);
}

#[test]
fn lifetime_strikes_quarantine_a_flaky_worker() {
    let log = Arc::new(PoolLog::default());
    // Each session is productive (one result), so the consecutive-failure
    // respawn budget refills forever — only the lifetime strike counter
    // catches a worker limping like this.
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::DieAfter(1)],
        1,
        &log,
    )])
    .with_max_respawns(10)
    .with_quarantine_after(Some(2));
    let (result, sunk) = run_pool(&pool, 6);
    match result.expect_err("the only worker got quarantined mid-campaign") {
        ClusterError::WorkerQuarantined {
            worker, strikes, ..
        } => {
            assert_eq!(worker, 0);
            assert_eq!(strikes, 2);
        }
        other => panic!("expected WorkerQuarantined, got {other}"),
    }
    assert_eq!(sunk.len(), 2, "one result per session reached the sink");
}

#[test]
fn quarantined_slot_work_is_redispatched_to_the_surviving_worker() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![
        ScriptedConnector::slot(&[Script::DieAfter(1)], 1, &log),
        ScriptedConnector::slot(&[Script::SlowSolid(Duration::from_millis(40))], 1, &log),
    ])
    .with_max_respawns(10)
    .with_quarantine_after(Some(2));
    let (result, _) = run_pool(&pool, 8);
    let outcome = result.expect("the survivor must absorb the quarantined slot's work");
    assert_eq!(outcome.records, expected(8));
    assert_eq!(outcome.quarantined_workers, 1);
    assert_eq!(outcome.lost_workers, 0);
}

#[test]
fn a_spec_that_keeps_killing_workers_is_poisoned_and_reported() {
    let log = Arc::new(PoolLog::default());
    // Every session of the only worker dies the moment spec 2 is next in
    // line. Blamed crashes do not charge the respawn budget, so the default
    // budget of 2 survives the repeated re-dispatch; after two precise
    // strikes the spec is isolated and everything else completes.
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(
        &[Script::CrashOnSpec(2)],
        4,
        &log,
    )]);
    let (result, mut sunk) = run_pool(&pool, 4);
    match result.expect_err("spec 2 must be poisoned") {
        ClusterError::PoisonedSpecs { indices, completed } => {
            assert_eq!(indices, vec![2]);
            assert_eq!(completed, 3);
        }
        other => panic!("expected PoisonedSpecs, got {other}"),
    }
    sunk.sort_unstable();
    let survivors: Vec<usize> = sunk.iter().map(|&(index, _)| index).collect();
    assert_eq!(
        survivors,
        vec![0, 1, 3],
        "every non-poisoned spec must reach the durable sink"
    );
    assert!(sunk.iter().all(|&(index, seed)| seed == seed_of(index)));
}

#[test]
fn speculation_duplicates_a_straggler_and_dedups_first_result_wins() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![
        ScriptedConnector::slot(&[Script::SlowSolid(Duration::from_millis(500))], 1, &log),
        ScriptedConnector::slot(&[Script::Solid], 1, &log),
    ])
    .with_speculative(true);
    let (result, sunk) = run_pool(&pool, 4);
    let outcome = result.expect("speculative execution must not change the result");
    assert_eq!(outcome.records, expected(4));
    assert_eq!(outcome.respawns, 0);
    // The fast worker finished the queue, then mirrored the straggler's
    // in-flight spec: one more result was produced than specs exist, and
    // the duplicate was dropped before the sink/merge.
    assert_eq!(log.dones.load(Ordering::SeqCst), 5);
    assert_eq!(sunk.len(), 4, "the speculative twin must not re-journal");
}

#[test]
fn rogue_results_for_unassigned_specs_are_a_fatal_protocol_error() {
    let log = Arc::new(PoolLog::default());
    let pool = WorkerPool::new(vec![ScriptedConnector::slot(&[Script::Rogue], 2, &log)]);
    let (result, _) = run_pool(&pool, 2);
    assert!(
        matches!(
            result.expect_err("an unassigned result must not be merged"),
            ClusterError::Protocol { worker: 0, .. }
        ),
        "rogue results are protocol violations, not channel losses"
    );
}

// ===========================================================================
// Campaign-service tests: the same scripted-worker idea pointed at the
// dynamic registry and service daemon instead of the static pool. Workers
// here *register* over in-memory duplex channels, join late, leave
// voluntarily, or crash to accrue name-keyed strikes — and every settled
// job's finalize payload must equal the sequential reference, whatever the
// fleet did.
// ===========================================================================

use qismet_cluster::daemon::{serve, JobPlan, JobPlanner, ServiceConfig};
use qismet_cluster::protocol::{Cancel, JobReady, Register, Submit};
use qismet_cluster::queue::JobSpec;
use qismet_cluster::{BuildStamp, DrainOk, Fingerprint, Listener, ServiceErrKind, StatusReply};
use std::sync::mpsc;
use std::time::Instant;

/// In-memory bidirectional channel: two [`Transport`] ends over shared
/// message queues. Dropping one end surfaces as a channel loss on the
/// other — exactly how the daemon experiences a crashed worker.
struct DuplexState {
    /// Inbound queue per side.
    queues: [VecDeque<Message>; 2],
    closed: [bool; 2],
}

struct DuplexEnd {
    state: Arc<(Mutex<DuplexState>, std::sync::Condvar)>,
    side: usize,
    timeout: Option<Duration>,
}

impl std::fmt::Debug for DuplexEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DuplexEnd")
            .field("side", &self.side)
            .finish()
    }
}

fn duplex() -> (DuplexEnd, DuplexEnd) {
    let state = Arc::new((
        Mutex::new(DuplexState {
            queues: [VecDeque::new(), VecDeque::new()],
            closed: [false, false],
        }),
        std::sync::Condvar::new(),
    ));
    (
        DuplexEnd {
            state: Arc::clone(&state),
            side: 0,
            timeout: None,
        },
        DuplexEnd {
            state,
            side: 1,
            timeout: None,
        },
    )
}

impl Transport for DuplexEnd {
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        let (lock, condvar) = &*self.state;
        let mut state = lock.lock().expect("duplex poisoned");
        if state.closed[1 - self.side] {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        state.queues[1 - self.side].push_back(msg.clone());
        condvar.notify_all();
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Message> {
        let (lock, condvar) = &*self.state;
        let mut state = lock.lock().expect("duplex poisoned");
        let deadline = self.timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(msg) = state.queues[self.side].pop_front() {
                return Ok(msg);
            }
            if state.closed[1 - self.side] {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            state = match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "duplex read deadline expired",
                        ));
                    }
                    condvar
                        .wait_timeout(state, deadline - now)
                        .expect("duplex poisoned")
                        .0
                }
                None => condvar.wait(state).expect("duplex poisoned"),
            };
        }
    }

    fn peer(&self) -> String {
        "duplex".into()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        Ok(())
    }
}

impl Drop for DuplexEnd {
    fn drop(&mut self) {
        let (lock, condvar) = &*self.state;
        lock.lock().expect("duplex poisoned").closed[self.side] = true;
        condvar.notify_all();
    }
}

/// A [`Listener`] fed by a channel of pre-built transports. Accept fails
/// once the feeding side closes — which the daemon treats as a clean end
/// while stopping, an I/O error under a live service.
struct ChannelListener {
    rx: mpsc::Receiver<Box<dyn Transport>>,
}

impl Listener for ChannelListener {
    fn accept(&mut self) -> io::Result<Box<dyn Transport>> {
        self.rx.recv().map_err(|_| {
            // DrainOk is written before the daemon flips its stopping flag,
            // so a test may close the feeder inside that window. Give stop()
            // a beat to land so the disconnect reads as a clean shutdown.
            std::thread::sleep(Duration::from_millis(200));
            io::Error::new(io::ErrorKind::BrokenPipe, "connection feeder closed")
        })
    }

    fn local_addr(&self) -> io::Result<String> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "in-memory"))
    }
}

/// Toy campaign semantics: a payload `label:count` expands to `count`
/// specs with the shared scripted seeds/records, and finalize renders the
/// full record set into a deterministic string — the byte-identity probe.
#[derive(Default)]
struct ToyPlanner {
    finals: Mutex<Vec<(u64, String)>>,
}

fn toy_count(payload: &str) -> Result<usize, String> {
    payload
        .rsplit(':')
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("payload `{payload}` is not label:count"))
}

fn toy_fingerprint(payload: &str) -> u64 {
    let mut fp = Fingerprint::new();
    fp.update_str(payload);
    fp.finish()
}

/// The detail string a job's finalize renders — computable directly from
/// the payload, which is what makes it a sequential reference.
fn reference_detail(payload: &str) -> String {
    let count = toy_count(payload).expect("reference payload expands");
    let mut out = format!("{payload}=>");
    for index in 0..count {
        out.push_str(&format!("{index}:{:?};", record(index)));
    }
    out
}

impl JobPlanner for ToyPlanner {
    fn open(&self, payload: &str) -> Result<JobPlan, String> {
        let count = toy_count(payload)?;
        Ok(JobPlan {
            fingerprint: toy_fingerprint(payload),
            spec_count: count,
            seeds: (0..count).map(seed_of).collect(),
        })
    }

    fn finalize(&self, spec: &JobSpec, records: Vec<(usize, Value)>) -> Result<String, String> {
        let mut out = format!("{}=>", spec.payload);
        for (index, value) in &records {
            out.push_str(&format!("{index}:{value:?};"));
        }
        self.finals
            .lock()
            .expect("finals poisoned")
            .push((spec.id, out.clone()));
        Ok(out)
    }
}

/// A running in-memory service daemon plus the feeder used to connect
/// scripted workers and clients to it.
struct ServiceHarness {
    tx: mpsc::Sender<Box<dyn Transport>>,
    handle: std::thread::JoinHandle<Result<qismet_cluster::ServiceSummary, ClusterError>>,
    planner: &'static ToyPlanner,
}

impl ServiceHarness {
    fn start(config: ServiceConfig) -> Self {
        let (tx, rx) = mpsc::channel();
        // Tests leak one planner each so `serve` can borrow it across the
        // daemon thread; the finals log stays inspectable afterwards.
        let planner: &'static ToyPlanner = Box::leak(Box::new(ToyPlanner::default()));
        let handle =
            std::thread::spawn(move || serve(Box::new(ChannelListener { rx }), planner, &config));
        ServiceHarness {
            tx,
            handle,
            planner,
        }
    }

    /// Opens a fresh connection to the daemon.
    fn connect(&self) -> DuplexEnd {
        let (ours, theirs) = duplex();
        self.tx
            .send(Box::new(theirs))
            .expect("daemon accept loop alive");
        ours
    }

    /// Closes the feeder and collects the daemon's summary.
    fn finish(self) -> qismet_cluster::ServiceSummary {
        drop(self.tx);
        self.handle
            .join()
            .expect("daemon thread panicked")
            .expect("daemon must drain cleanly")
    }

    fn finals(&self) -> Vec<(u64, String)> {
        self.planner.finals.lock().expect("finals poisoned").clone()
    }
}

fn service_config() -> ServiceConfig {
    let mut config = ServiceConfig::new("fleet");
    config.tenants = vec![
        ("alice".to_string(), "a-token".to_string()),
        ("bob".to_string(), "b-token".to_string()),
    ];
    config.handshake_timeout = Duration::from_secs(5);
    config
}

/// How a scripted *service* worker behaves across its registered session.
#[derive(Clone, Copy)]
enum FleetScript {
    /// Serve batches until the daemon says `Shutdown`.
    Serve,
    /// Voluntarily deregister after this many completed batches.
    DeregisterAfter(usize),
    /// Drop the channel (mid-batch) after this many results.
    DieAfterResults(usize),
}

/// Registers at the daemon and follows the script. Returns the batches
/// served, or the typed refusal the registration got.
fn fleet_worker(
    harness: &ServiceHarness,
    name: &str,
    token: &str,
    threads: usize,
    script: FleetScript,
) -> std::thread::JoinHandle<Result<usize, (ServiceErrKind, String)>> {
    let mut transport = harness.connect();
    let name = name.to_string();
    let token = token.to_string();
    std::thread::spawn(move || {
        transport
            .send(&Message::Register(Register {
                name,
                token,
                threads,
                build: BuildStamp::local(false),
            }))
            .expect("registration frame sends");
        match transport.recv().expect("registration reply arrives") {
            Message::RegisterAck(_) => {}
            Message::ServiceErr(err) => return Err((err.kind, err.detail)),
            other => panic!("expected RegisterAck, got {other:?}"),
        }
        let mut batches = 0usize;
        let mut results = 0usize;
        loop {
            if matches!(script, FleetScript::DeregisterAfter(limit) if batches >= limit) {
                transport
                    .send(&Message::Deregister)
                    .expect("deregister sends");
                let _ = transport.recv();
                return Ok(batches);
            }
            if transport.send(&Message::Ready).is_err() {
                return Ok(batches);
            }
            let assign = match transport.recv().expect("daemon stays responsive") {
                Message::Shutdown => return Ok(batches),
                Message::JobOpen(open) => {
                    // Honest re-expansion: fingerprint derived from the
                    // payload, exactly like the real worker.
                    let count = toy_count(&open.payload).expect("toy payload expands");
                    transport
                        .send(&Message::JobReady(JobReady {
                            job_id: open.job_id,
                            fingerprint: toy_fingerprint(&open.payload),
                            spec_count: count,
                        }))
                        .expect("job-ready sends");
                    match transport.recv().expect("assignment follows job-ready") {
                        Message::Assign(assign) => assign,
                        Message::Shutdown => return Ok(batches),
                        other => panic!("expected Assign, got {other:?}"),
                    }
                }
                Message::Assign(assign) => assign,
                other => panic!("expected JobOpen/Assign/Shutdown, got {other:?}"),
            };
            for index in assign.indices {
                if matches!(script, FleetScript::DieAfterResults(limit) if results >= limit) {
                    // Dropping the transport mid-batch is the crash.
                    return Ok(batches);
                }
                transport
                    .send(&Message::Done(Done {
                        index,
                        seed: seed_of(index),
                        outcome: Outcome::Record(record(index)),
                        stats: None,
                    }))
                    .expect("result frame sends");
                results += 1;
            }
            batches += 1;
        }
    })
}

/// Opens an authenticated client session (one command per connection).
fn client_session(
    harness: &ServiceHarness,
    token: &str,
) -> Result<DuplexEnd, (ServiceErrKind, String)> {
    let mut transport = harness.connect();
    transport
        .send(&Message::Hello(Hello {
            worker_id: 0,
            fingerprint: 0,
            spec_count: 0,
            token: token.to_string(),
            threads: 0,
            build: BuildStamp::local(false),
        }))
        .expect("client hello sends");
    match transport.recv().expect("handshake reply arrives") {
        Message::Hello(_) => Ok(transport),
        Message::ServiceErr(err) => Err((err.kind, err.detail)),
        other => panic!("expected Hello or ServiceErr, got {other:?}"),
    }
}

fn submit(
    harness: &ServiceHarness,
    token: &str,
    name: &str,
    priority: i64,
    payload: &str,
) -> Result<u64, (ServiceErrKind, String)> {
    let mut transport = client_session(harness, token)?;
    transport
        .send(&Message::Submit(Submit {
            name: name.to_string(),
            priority,
            payload: payload.to_string(),
        }))
        .expect("submit sends");
    match transport.recv().expect("submit reply arrives") {
        Message::Submitted(submitted) => Ok(submitted.job_id),
        Message::ServiceErr(err) => Err((err.kind, err.detail)),
        other => panic!("expected Submitted, got {other:?}"),
    }
}

fn status(harness: &ServiceHarness, token: &str) -> StatusReply {
    let mut transport = client_session(harness, token).expect("status handshake accepted");
    transport.send(&Message::Status).expect("status sends");
    match transport.recv().expect("status reply arrives") {
        Message::StatusReply(reply) => reply,
        other => panic!("expected StatusReply, got {other:?}"),
    }
}

fn cancel(
    harness: &ServiceHarness,
    token: &str,
    job_id: u64,
) -> Result<u64, (ServiceErrKind, String)> {
    let mut transport = client_session(harness, token)?;
    transport
        .send(&Message::Cancel(Cancel { job_id }))
        .expect("cancel sends");
    match transport.recv().expect("cancel reply arrives") {
        Message::CancelOk(id) => Ok(id),
        Message::ServiceErr(err) => Err((err.kind, err.detail)),
        other => panic!("expected CancelOk, got {other:?}"),
    }
}

fn drain(harness: &ServiceHarness, token: &str) -> DrainOk {
    let mut transport = client_session(harness, token).expect("drain handshake accepted");
    transport.set_read_timeout(None).expect("clear deadline");
    transport.send(&Message::Drain).expect("drain sends");
    match transport.recv().expect("drain reply arrives") {
        Message::DrainOk(ok) => ok,
        other => panic!("expected DrainOk, got {other:?}"),
    }
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn elastic_fleet_serves_two_tenants_and_settles_reference_identical_reports() {
    let harness = ServiceHarness::start(service_config());
    let job_a = submit(&harness, "a-token", "alpha", 1, "alpha:12").expect("alice submits");
    let job_b = submit(&harness, "b-token", "beta", 0, "beta:9").expect("bob submits");
    // Tenant isolation in status: alice sees only her job, fleet sees both.
    let alice_view = status(&harness, "a-token");
    assert_eq!(alice_view.jobs.len(), 1);
    assert_eq!(alice_view.jobs[0].job_id, job_a);
    assert_eq!(alice_view.jobs[0].tenant, "alice");
    assert_eq!(status(&harness, "fleet").jobs.len(), 2);
    // Elastic fleet: one steady worker, one that leaves after two batches,
    // one that joins late — all while both jobs are in flight.
    let steady = fleet_worker(&harness, "steady", "fleet", 2, FleetScript::Serve);
    let transient = fleet_worker(
        &harness,
        "transient",
        "fleet",
        2,
        FleetScript::DeregisterAfter(2),
    );
    std::thread::sleep(Duration::from_millis(50));
    let late = fleet_worker(&harness, "late", "fleet", 3, FleetScript::Serve);
    let drained = drain(&harness, "fleet");
    assert_eq!(drained.jobs_completed, 2);
    assert_eq!(drained.jobs_failed, 0);
    assert_eq!(
        transient.join().expect("transient exits").expect("served"),
        2
    );
    steady.join().expect("steady exits").expect("served");
    late.join().expect("late exits").expect("served");
    let finals = harness.finals();
    let summary = harness.finish();
    assert_eq!(summary.jobs_completed, 2);
    assert_eq!(summary.jobs_failed, 0);
    // Byte-identity: each job's finalize payload equals the sequential
    // reference of its own campaign, however the three workers interleaved.
    assert_eq!(finals.len(), 2);
    let by_id: std::collections::BTreeMap<u64, String> = finals.into_iter().collect();
    assert_eq!(by_id[&job_a], reference_detail("alpha:12"));
    assert_eq!(by_id[&job_b], reference_detail("beta:9"));
}

#[test]
fn voluntary_deregister_takes_no_strike_and_the_name_can_rejoin() {
    // Quarantine after a single strike: if a voluntary leave were blamed,
    // the rejoin below would be refused.
    let mut config = service_config();
    config.quarantine_after = Some(1);
    let harness = ServiceHarness::start(config);
    let job = submit(&harness, "a-token", "gamma", 0, "gamma:6").expect("submit accepted");
    let polite = fleet_worker(
        &harness,
        "polite",
        "fleet",
        1,
        FleetScript::DeregisterAfter(1),
    );
    assert_eq!(polite.join().expect("exits").expect("one batch"), 1);
    // Same name registers again — no strike accrued, so it must be let in —
    // and finishes the job alongside nobody else.
    let rejoined = fleet_worker(&harness, "polite", "fleet", 2, FleetScript::Serve);
    let drained = drain(&harness, "fleet");
    assert_eq!(drained.jobs_completed, 1);
    rejoined
        .join()
        .expect("exits")
        .expect("accepted and served");
    let strikes: usize = status_strikes(&harness);
    assert_eq!(strikes, 0, "voluntary deregistration must not be blamed");
    let finals = harness.finals();
    assert_eq!(finals, vec![(job, reference_detail("gamma:6"))]);
    harness.finish();
}

/// Total strikes across the fleet, per the status API.
fn status_strikes(harness: &ServiceHarness) -> usize {
    status(harness, "fleet")
        .workers
        .iter()
        .map(|w| w.strikes)
        .sum()
}

#[test]
fn strikes_follow_the_name_and_a_quarantined_name_is_refused() {
    let mut config = service_config();
    config.quarantine_after = Some(2);
    let harness = ServiceHarness::start(config);
    let job = submit(&harness, "b-token", "delta", 0, "delta:8").expect("submit accepted");
    // Two crashy sessions under the same name: one strike each.
    for strikes in 1..=2usize {
        let flaky = fleet_worker(
            &harness,
            "flaky",
            "fleet",
            2,
            FleetScript::DieAfterResults(1),
        );
        flaky.join().expect("exits").expect("registered");
        wait_until(
            || status_strikes(&harness) >= strikes,
            "the crash to be blamed on the name",
        );
    }
    // The name is now quarantined: a third session is refused with a typed
    // error even though every slot it held is long gone.
    let refused = fleet_worker(&harness, "flaky", "fleet", 2, FleetScript::Serve)
        .join()
        .expect("exits")
        .expect_err("quarantined name must be refused");
    assert_eq!(refused.0, ServiceErrKind::Quarantined);
    // A fresh name starts clean and completes the job — including the work
    // the crashy sessions dropped mid-batch.
    let fresh = fleet_worker(&harness, "fresh", "fleet", 2, FleetScript::Serve);
    let drained = drain(&harness, "fleet");
    assert_eq!(drained.jobs_completed, 1);
    fresh.join().expect("exits").expect("served");
    let finals = harness.finals();
    assert_eq!(finals, vec![(job, reference_detail("delta:8"))]);
    harness.finish();
}

#[test]
fn service_errors_are_typed() {
    let harness = ServiceHarness::start(service_config());
    // Registration under a wrong fleet token.
    let bad_register = fleet_worker(&harness, "w", "wrong", 1, FleetScript::Serve)
        .join()
        .expect("exits")
        .expect_err("wrong fleet token must be refused");
    assert_eq!(bad_register.0, ServiceErrKind::BadToken);
    // Client handshake under an unknown token.
    let bad_client = client_session(&harness, "nope").expect_err("unknown token refused");
    assert_eq!(bad_client.0, ServiceErrKind::BadToken);
    // Unparseable submission payload.
    let bad_payload =
        submit(&harness, "a-token", "x", 0, "not-a-count").expect_err("bad payload refused");
    assert_eq!(bad_payload.0, ServiceErrKind::BadPayload);
    // Duplicate fingerprint while the first job is still live.
    let job = submit(&harness, "a-token", "x", 0, "epsilon:5").expect("first submit accepted");
    let duplicate = submit(&harness, "b-token", "x2", 3, "epsilon:5")
        .expect_err("same campaign cannot be queued twice");
    assert_eq!(duplicate.0, ServiceErrKind::DuplicateFingerprint);
    // Cancel: unknown id, foreign tenant (indistinguishable from unknown),
    // then the owner really cancels.
    assert_eq!(
        cancel(&harness, "a-token", 999).expect_err("unknown job").0,
        ServiceErrKind::UnknownJob
    );
    assert_eq!(
        cancel(&harness, "b-token", job)
            .expect_err("foreign job hidden")
            .0,
        ServiceErrKind::UnknownJob
    );
    cancel(&harness, "a-token", job).expect("owner cancels");
    // A settled job cannot be cancelled again.
    assert_eq!(
        cancel(&harness, "a-token", job)
            .expect_err("already settled")
            .0,
        ServiceErrKind::UnknownJob
    );
    let drained = drain(&harness, "fleet");
    assert_eq!(drained.jobs_completed, 0);
    assert_eq!(drained.jobs_failed, 1, "the cancelled job counts as failed");
    harness.finish();
}

#[test]
fn nonsense_pool_configuration_is_rejected_before_any_session() {
    let log = Arc::new(PoolLog::default());
    let cases: [Box<dyn Fn(WorkerPool) -> WorkerPool>; 4] = [
        Box::new(|p| p.with_assign_timeout(Some(Duration::ZERO))),
        Box::new(|p| p.with_handshake_timeout(Duration::ZERO)),
        Box::new(|p| p.with_quarantine_after(Some(0))),
        Box::new(|p| p.with_poison_after(0)),
    ];
    for misconfigure in cases {
        let pool = misconfigure(WorkerPool::new(vec![ScriptedConnector::slot(
            &[Script::Solid],
            1,
            &log,
        )]));
        let (result, sunk) = run_pool(&pool, 2);
        assert!(
            matches!(
                result.expect_err("zero durations/thresholds are nonsense"),
                ClusterError::Config(_)
            ),
            "misconfiguration must surface as ClusterError::Config"
        );
        assert!(sunk.is_empty(), "validation must run before any dispatch");
    }
}

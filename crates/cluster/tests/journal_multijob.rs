//! Multi-job journal isolation.
//!
//! The service daemon gives every job its own checkpoint journal inside a
//! shared state directory ([`JobQueue::journal_path`]). These tests pin the
//! invariant that makes kill-anywhere resume safe under multi-tenancy: two
//! jobs sharing that directory never cross-contaminate on resume — not via
//! colliding spec indices, not via a mixed-up file, and not via a corrupted
//! line slipping past the checksum.

use qismet_cluster::protocol::CheckpointEntry;
use qismet_cluster::{load_journal, JobPhase, JobQueue, JournalWriter};
use serde::Value;
use std::path::PathBuf;

const FP_A: u64 = 0xaaaa_1111_feed_f00d;
const FP_B: u64 = 0xbbbb_2222_feed_f00d;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qismet-multijob-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A checkpoint whose record encodes which job wrote it, so replaying the
/// wrong journal is detectable by value and not just by count.
fn entry(fingerprint: u64, index: usize) -> CheckpointEntry {
    CheckpointEntry {
        fingerprint,
        index,
        seed: fingerprint ^ index as u64,
        record: Value::Object(vec![
            ("job".into(), Value::U64(fingerprint)),
            ("index".into(), Value::U64(index as u64)),
        ]),
    }
}

fn submit_two(queue: &mut JobQueue) -> (u64, u64) {
    let a = queue
        .submit("alpha", "alice", 1, "alpha:4", FP_A, 4)
        .expect("alpha submits");
    let b = queue
        .submit("beta", "bob", 0, "beta:4", FP_B, 4)
        .expect("beta submits");
    (a, b)
}

#[test]
fn per_job_journals_in_a_shared_dir_resume_without_cross_contamination() {
    let dir = temp_dir("disjoint");
    let (job_a, job_b) = {
        let mut queue = JobQueue::open(&dir).expect("queue opens");
        let (a, b) = submit_two(&mut queue);
        queue
            .set_phase(a, JobPhase::Running, None)
            .expect("alpha starts");
        queue
            .set_phase(b, JobPhase::Running, None)
            .expect("beta starts");
        (a, b)
    };
    let path_a;
    let path_b;
    {
        let queue = JobQueue::open(&dir).expect("queue reopens");
        path_a = queue.journal_path(job_a).expect("persistent queue");
        path_b = queue.journal_path(job_b).expect("persistent queue");
    }
    assert_ne!(path_a, path_b, "each job must journal into its own file");

    // Interleave checkpoints from both jobs, deliberately reusing the same
    // spec indices: index collision across jobs is the classic
    // cross-contamination vector a shared journal would invite.
    let mut writer_a = JournalWriter::append_to(&path_a).expect("journal A opens");
    let mut writer_b = JournalWriter::append_to(&path_b).expect("journal B opens");
    for index in [0usize, 2] {
        writer_a.append(&entry(FP_A, index)).expect("A appends");
        writer_b.append(&entry(FP_B, index)).expect("B appends");
    }
    writer_a.append(&entry(FP_A, 1)).expect("A appends");
    drop((writer_a, writer_b));

    // Kill-anywhere restart: the queue replays both running jobs as queued,
    // and each journal resumes only its own campaign.
    let queue = JobQueue::open(&dir).expect("queue survives restart");
    assert_eq!(queue.dropped_lines, 0);
    for id in [job_a, job_b] {
        assert_eq!(
            queue.get(id).expect("job replayed").phase,
            JobPhase::Queued,
            "interrupted running jobs must replay as queued"
        );
    }
    let loaded_a = load_journal(&path_a, FP_A).expect("A loads");
    let loaded_b = load_journal(&path_b, FP_B).expect("B loads");
    assert_eq!(
        loaded_a.entries.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    assert_eq!(
        loaded_b.entries.keys().copied().collect::<Vec<_>>(),
        vec![0, 2]
    );
    assert_eq!(loaded_a.foreign + loaded_b.foreign, 0);
    for (loaded, fp) in [(&loaded_a, FP_A), (&loaded_b, FP_B)] {
        for (index, entry) in &loaded.entries {
            assert_eq!(entry.record.get("job").and_then(Value::as_u64), Some(fp));
            assert_eq!(
                entry.record.get("index").and_then(Value::as_u64),
                Some(*index as u64)
            );
        }
    }

    // Even if a resume pointed at the *wrong* file, the fingerprint guard
    // replays nothing: every line is foreign, none enter the entry map.
    let crossed = load_journal(&path_a, FP_B).expect("crossed load succeeds");
    assert!(crossed.entries.is_empty());
    assert_eq!(crossed.foreign, 3);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupted_line_in_one_journal_is_dropped_without_touching_its_neighbor() {
    let dir = temp_dir("corrupt");
    let (job_a, job_b) = {
        let mut queue = JobQueue::open(&dir).expect("queue opens");
        submit_two(&mut queue)
    };
    let queue = JobQueue::open(&dir).expect("queue reopens");
    let path_a = queue.journal_path(job_a).expect("persistent queue");
    let path_b = queue.journal_path(job_b).expect("persistent queue");
    {
        let mut writer_a = JournalWriter::append_to(&path_a).expect("journal A opens");
        let mut writer_b = JournalWriter::append_to(&path_b).expect("journal B opens");
        for index in 0..3usize {
            writer_a.append(&entry(FP_A, index)).expect("A appends");
            writer_b.append(&entry(FP_B, index)).expect("B appends");
        }
    }

    // Flip one byte in the middle line of A's journal without updating its
    // checksum prefix — the bit-rot / torn-block scenario.
    let text = std::fs::read_to_string(&path_a).expect("A readable");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert_eq!(lines.len(), 3);
    let mut bytes = lines[1].clone().into_bytes();
    let flip_at = bytes.len() - 4;
    bytes[flip_at] ^= 0x01;
    lines[1] = String::from_utf8(bytes).expect("still utf-8");
    std::fs::write(&path_a, format!("{}\n", lines.join("\n"))).expect("A rewritten");

    // A resumes minus exactly the damaged line; B is untouched.
    let loaded_a = load_journal(&path_a, FP_A).expect("A loads");
    assert_eq!(
        loaded_a.mismatched, 1,
        "damaged line must fail its checksum"
    );
    assert_eq!(loaded_a.corrupt, 0);
    assert_eq!(
        loaded_a.entries.keys().copied().collect::<Vec<_>>(),
        vec![0, 2],
        "only the verified lines may replay"
    );
    let loaded_b = load_journal(&path_b, FP_B).expect("B loads");
    assert_eq!(loaded_b.mismatched + loaded_b.corrupt + loaded_b.foreign, 0);
    assert_eq!(loaded_b.entries.len(), 3);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn a_legacy_shared_journal_still_separates_jobs_by_fingerprint() {
    // Pre-service journals held every campaign in one file. If an operator
    // points two jobs at such a file, the fingerprint filter — not file
    // layout — is the isolation boundary, and it must hold even with a
    // forged line claiming the other job's fingerprint.
    let dir = temp_dir("shared");
    std::fs::create_dir_all(&dir).expect("dir created");
    let shared = dir.join("legacy.ckpt.jsonl");
    {
        let mut writer = JournalWriter::append_to(&shared).expect("journal opens");
        writer.append(&entry(FP_A, 0)).expect("appends");
        writer.append(&entry(FP_B, 0)).expect("appends");
        writer.append(&entry(FP_A, 1)).expect("appends");
        writer.append(&entry(FP_B, 1)).expect("appends");
    }
    let loaded_a = load_journal(&shared, FP_A).expect("A loads");
    let loaded_b = load_journal(&shared, FP_B).expect("B loads");
    for (loaded, fp) in [(&loaded_a, FP_A), (&loaded_b, FP_B)] {
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.foreign, 2, "the other job's lines are foreign");
        for entry in loaded.entries.values() {
            assert_eq!(entry.record.get("job").and_then(Value::as_u64), Some(fp));
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn tampered_queue_log_lines_are_counted_not_replayed() {
    let dir = temp_dir("queuelog");
    {
        let mut queue = JobQueue::open(&dir).expect("queue opens");
        let (a, _) = submit_two(&mut queue);
        queue.cancel(a, Some("alice")).expect("alice cancels hers");
    }
    // Corrupt the cancellation event in jobs.jsonl: the replayed queue must
    // drop that line (leaving alpha queued again) rather than trust it.
    let log_path = dir.join("jobs.jsonl");
    let text = std::fs::read_to_string(&log_path).expect("log readable");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert_eq!(lines.len(), 3, "two submissions plus one phase change");
    let mut bytes = lines[2].clone().into_bytes();
    let flip_at = bytes.len() - 6;
    bytes[flip_at] ^= 0x02;
    lines[2] = String::from_utf8(bytes).expect("still utf-8");
    std::fs::write(&log_path, format!("{}\n", lines.join("\n"))).expect("log rewritten");

    let queue = JobQueue::open(&dir).expect("queue reopens");
    assert_eq!(queue.dropped_lines, 1, "the tampered line must be counted");
    assert!(
        queue.jobs().all(|job| job.phase == JobPhase::Queued),
        "an unverifiable phase change must not replay"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

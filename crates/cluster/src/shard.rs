//! Deterministic spec partitioning and order-preserving result merging.
//!
//! Sharding is round-robin over the pending index list: worker `k` of `n`
//! gets the elements at positions `k, k + n, k + 2n, ...`. Round-robin (vs
//! contiguous blocks) keeps shards balanced even when run cost correlates
//! with grid position (e.g. magnitudes sweeping from cheap to expensive),
//! and the assignment is a pure function of `(pending, workers)` so a
//! respawned worker re-derives exactly its own unfinished share.

use std::fmt;

/// Partitions `indices` round-robin across `shards` workers.
///
/// Every input element appears in exactly one shard; concatenating the
/// shards position-by-position restores the input order.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_round_robin(indices: &[usize], shards: usize) -> Vec<Vec<usize>> {
    assert!(shards > 0, "cannot shard across zero workers");
    let mut out: Vec<Vec<usize>> = (0..shards)
        .map(|_| Vec::with_capacity(indices.len() / shards + 1))
        .collect();
    for (pos, &index) in indices.iter().enumerate() {
        out[pos % shards].push(index);
    }
    out
}

/// A merge failure: the collected parts do not cover exactly the expected
/// index set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// An expected index produced no result.
    Missing(usize),
    /// An index produced more than one result.
    Duplicate(usize),
    /// A result arrived for an index that was never expected.
    Unexpected(usize),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Missing(i) => write!(f, "no result for expected index {i}"),
            MergeError::Duplicate(i) => write!(f, "duplicate result for index {i}"),
            MergeError::Unexpected(i) => write!(f, "result for unexpected index {i}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges `(index, value)` parts into the order of `expected`, verifying
/// the parts cover exactly the expected index set.
///
/// # Errors
///
/// Returns a [`MergeError`] if any expected index is missing, duplicated,
/// or a part references an index not in `expected`.
pub fn merge_indexed<T>(expected: &[usize], parts: Vec<(usize, T)>) -> Result<Vec<T>, MergeError> {
    // Position of each expected index in the output.
    let mut position = std::collections::HashMap::with_capacity(expected.len());
    for (pos, &index) in expected.iter().enumerate() {
        if position.insert(index, pos).is_some() {
            return Err(MergeError::Duplicate(index));
        }
    }
    let mut slots: Vec<Option<T>> = expected.iter().map(|_| None).collect();
    for (index, value) in parts {
        let &pos = position.get(&index).ok_or(MergeError::Unexpected(index))?;
        if slots[pos].is_some() {
            return Err(MergeError::Duplicate(index));
        }
        slots[pos] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(pos, slot)| slot.ok_or(MergeError::Missing(expected[pos])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_is_deterministic_and_total() {
        let indices: Vec<usize> = vec![4, 9, 1, 7, 0];
        let shards = shard_round_robin(&indices, 2);
        assert_eq!(shards, vec![vec![4, 1, 0], vec![9, 7]]);
        assert_eq!(shard_round_robin(&indices, 2), shards);
    }

    #[test]
    fn more_shards_than_work_leaves_empty_shards() {
        let shards = shard_round_robin(&[3], 4);
        assert_eq!(shards[0], vec![3]);
        assert!(shards[1..].iter().all(Vec::is_empty));
    }

    #[test]
    fn merge_detects_every_failure_mode() {
        let expected = [2usize, 5, 9];
        assert_eq!(
            merge_indexed(&expected, vec![(5, "b"), (9, "c"), (2, "a")]).unwrap(),
            vec!["a", "b", "c"]
        );
        assert_eq!(
            merge_indexed(&expected, vec![(2, "a"), (5, "b")]).unwrap_err(),
            MergeError::Missing(9)
        );
        assert_eq!(
            merge_indexed(&expected, vec![(2, "a"), (2, "a2"), (5, "b"), (9, "c")]).unwrap_err(),
            MergeError::Duplicate(2)
        );
        assert_eq!(
            merge_indexed(&expected, vec![(2, "a"), (5, "b"), (9, "c"), (11, "d")]).unwrap_err(),
            MergeError::Unexpected(11)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        // Sharding is a partition: every input position lands in exactly one
        // shard, and merging the sharded parts back restores input order.
        #[test]
        fn shard_then_merge_preserves_input_order(
            n in 0usize..80,
            workers in 1usize..9,
            salt in 0u64..u64::MAX,
        ) {
            // Distinct pseudo-random indices (what a resume's pending list
            // looks like: sparse, unordered-looking, unique).
            let mut indices: Vec<usize> = (0..n)
                .map(|i| (qismet_seedlike(salt, i as u64) % 10_000) as usize)
                .collect();
            indices.sort_unstable();
            indices.dedup();

            let shards = shard_round_robin(&indices, workers);
            prop_assert_eq!(shards.len(), workers);
            let covered: usize = shards.iter().map(Vec::len).sum();
            prop_assert_eq!(covered, indices.len());

            // Each worker completes its shard in order; parts arrive
            // interleaved in an arbitrary (here: worker-major) order.
            let parts: Vec<(usize, usize)> = shards
                .iter()
                .flatten()
                .map(|&index| (index, index * 31))
                .collect();
            let merged = merge_indexed(&indices, parts).unwrap();
            let direct: Vec<usize> = indices.iter().map(|&i| i * 31).collect();
            prop_assert_eq!(merged, direct);
        }
    }

    /// SplitMix64-style scramble, local to the tests (no mathkit dep here).
    fn qismet_seedlike(parent: u64, stream: u64) -> u64 {
        let mut z = parent ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

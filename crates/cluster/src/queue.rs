//! The multi-tenant, priority-ordered job queue behind the service daemon.
//!
//! Each submitted campaign becomes a [`JobSpec`] with a monotonically
//! assigned id, an owning tenant, and a priority; the daemon walks
//! non-terminal jobs in `(priority desc, id asc)` order. Queue state is
//! persisted (when a state directory is configured) as an append-only
//! event log `jobs.jsonl` using the same `<checksum> <json>` line
//! discipline as the checkpoint [`journal`](crate::journal): submissions
//! and phase transitions append one line each, and reopening the
//! directory replays the log. Jobs that were `running` when the daemon
//! died replay as `queued` — their *results* live in the per-job
//! checkpoint journal ([`JobQueue::journal_path`]), so re-running them
//! resumes instead of recomputing.
//!
//! Duplicate-fingerprint submissions are refused while the original job
//! is non-terminal (two live jobs over one campaign would race two
//! writers on the same journal file); after it settles, resubmission is
//! legal and *resumes* from the journal.

use crate::journal::{line_checksum, split_checksummed};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A job's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Waiting for workers (or re-queued after a daemon restart).
    Queued,
    /// At least one worker has been assigned its specs.
    Running,
    /// Every spec completed and the report artifact was written.
    Completed,
    /// The job cannot finish (poisoned specs, deterministic run failure,
    /// unwritable artifact); the journal keeps completed work.
    Failed,
    /// Cancelled by a client; the journal keeps completed work.
    Cancelled,
}

impl JobPhase {
    /// Whether the phase is final (the job will never run again).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Completed | JobPhase::Failed | JobPhase::Cancelled
        )
    }

    /// Lowercase display name (used in status output and CLI tables).
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// The immutable identity of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Queue-assigned id, monotonic across the daemon's lifetime
    /// (restarts included — the log replay advances the counter).
    pub id: u64,
    /// Job display name (also names the report artifact).
    pub name: String,
    /// Owning tenant (resolved from the submission token).
    pub tenant: String,
    /// Queue priority; higher runs first.
    pub priority: i64,
    /// Planner-specific campaign description, shipped to workers verbatim.
    pub payload: String,
    /// Fingerprint of the expanded campaign (journal resume key).
    pub fingerprint: u64,
    /// How many specs the expansion produced.
    pub spec_count: usize,
}

/// One job's mutable queue state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobState {
    /// The immutable submission.
    pub spec: JobSpec,
    /// Current lifecycle phase.
    pub phase: JobPhase,
    /// Phase detail (report path, failure reason).
    pub detail: Option<String>,
}

/// Typed queue-operation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// A non-terminal job already holds this campaign fingerprint;
    /// carries its id.
    DuplicateFingerprint(u64),
    /// No job with this id is visible to the caller.
    UnknownJob(u64),
    /// The job is already in a terminal phase.
    Terminal(u64),
    /// The event log could not be appended.
    Io(String),
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::DuplicateFingerprint(id) => {
                write!(
                    f,
                    "a non-terminal job (id {id}) already holds this campaign"
                )
            }
            QueueError::UnknownJob(id) => write!(f, "no such job: {id}"),
            QueueError::Terminal(id) => write!(f, "job {id} already settled"),
            QueueError::Io(detail) => write!(f, "job log append failed: {detail}"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A phase transition, as appended to the event log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PhaseEvent {
    job_id: u64,
    phase: JobPhase,
    detail: Option<String>,
}

/// One line of the `jobs.jsonl` event log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum QueueEvent {
    /// A job was submitted.
    Submitted(JobSpec),
    /// A job changed phase.
    Phase(PhaseEvent),
}

/// The job table plus its optional on-disk event log.
#[derive(Debug)]
pub struct JobQueue {
    dir: Option<PathBuf>,
    log: Option<File>,
    jobs: BTreeMap<u64, JobState>,
    next_id: u64,
    /// Event-log lines dropped during replay (corrupt or checksum
    /// mismatch) — surfaced so operators notice a damaged state dir.
    pub dropped_lines: usize,
}

impl JobQueue {
    /// An ephemeral queue with no persistence (tests, ad-hoc daemons).
    pub fn in_memory() -> Self {
        JobQueue {
            dir: None,
            log: None,
            jobs: BTreeMap::new(),
            next_id: 1,
            dropped_lines: 0,
        }
    }

    /// Opens (creating if needed) a persistent queue rooted at `dir`,
    /// replaying `jobs.jsonl`. Jobs that were `running` when the previous
    /// daemon died replay as `queued`; their journals make the re-run a
    /// resume.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and log open/read failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let log_path = dir.join("jobs.jsonl");
        let mut queue = JobQueue {
            dir: Some(dir.to_path_buf()),
            log: None,
            jobs: BTreeMap::new(),
            next_id: 1,
            dropped_lines: 0,
        };
        match std::fs::read_to_string(&log_path) {
            Ok(text) => {
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let body = match split_checksummed(line) {
                        Some(Ok(body)) => body,
                        Some(Err(())) | None => {
                            queue.dropped_lines += 1;
                            continue;
                        }
                    };
                    match serde_json::from_str::<QueueEvent>(body) {
                        Ok(QueueEvent::Submitted(spec)) => {
                            queue.next_id = queue.next_id.max(spec.id + 1);
                            queue.jobs.insert(
                                spec.id,
                                JobState {
                                    spec,
                                    phase: JobPhase::Queued,
                                    detail: None,
                                },
                            );
                        }
                        Ok(QueueEvent::Phase(event)) => {
                            if let Some(job) = queue.jobs.get_mut(&event.job_id) {
                                // An interrupted run re-queues; its journal
                                // turns the re-run into a resume.
                                job.phase = if event.phase == JobPhase::Running {
                                    JobPhase::Queued
                                } else {
                                    event.phase
                                };
                                job.detail = event.detail;
                            }
                        }
                        Err(_) => queue.dropped_lines += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        queue.log = Some(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&log_path)?,
        );
        Ok(queue)
    }

    fn append_event(&mut self, event: &QueueEvent) -> Result<(), QueueError> {
        let Some(log) = self.log.as_mut() else {
            return Ok(());
        };
        let body = serde_json::to_string(event).map_err(|e| QueueError::Io(e.to_string()))?;
        let line = format!("{:016x} {body}\n", line_checksum(&body));
        log.write_all(line.as_bytes())
            .and_then(|()| log.flush())
            .map_err(|e| QueueError::Io(e.to_string()))
    }

    /// Enqueues a job, assigning its id.
    ///
    /// # Errors
    ///
    /// Refuses a fingerprint any *non-terminal* job (any tenant) already
    /// holds, and propagates event-log append failures.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        name: &str,
        tenant: &str,
        priority: i64,
        payload: &str,
        fingerprint: u64,
        spec_count: usize,
    ) -> Result<u64, QueueError> {
        if let Some(existing) = self
            .jobs
            .values()
            .find(|job| job.spec.fingerprint == fingerprint && !job.phase.is_terminal())
        {
            return Err(QueueError::DuplicateFingerprint(existing.spec.id));
        }
        let id = self.next_id;
        let spec = JobSpec {
            id,
            name: name.to_string(),
            tenant: tenant.to_string(),
            priority,
            payload: payload.to_string(),
            fingerprint,
            spec_count,
        };
        self.append_event(&QueueEvent::Submitted(spec.clone()))?;
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobState {
                spec,
                phase: JobPhase::Queued,
                detail: None,
            },
        );
        Ok(id)
    }

    /// Moves a job to `phase`, persisting the transition.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, jobs already terminal, and log I/O errors.
    pub fn set_phase(
        &mut self,
        id: u64,
        phase: JobPhase,
        detail: Option<String>,
    ) -> Result<(), QueueError> {
        let current = match self.jobs.get(&id) {
            Some(job) => job.phase,
            None => return Err(QueueError::UnknownJob(id)),
        };
        if current.is_terminal() {
            return Err(QueueError::Terminal(id));
        }
        self.append_event(&QueueEvent::Phase(PhaseEvent {
            job_id: id,
            phase,
            detail: detail.clone(),
        }))?;
        let job = self.jobs.get_mut(&id).expect("job checked above");
        job.phase = phase;
        job.detail = detail;
        Ok(())
    }

    /// Cancels a job. `tenant` scopes visibility: a tenant can only
    /// cancel its own jobs (others answer [`QueueError::UnknownJob`], so
    /// ids leak nothing across tenants); `None` is the all-seeing fleet
    /// principal.
    ///
    /// # Errors
    ///
    /// Fails for invisible/unknown ids, settled jobs, and log I/O errors.
    pub fn cancel(&mut self, id: u64, tenant: Option<&str>) -> Result<(), QueueError> {
        match self.jobs.get(&id) {
            Some(job) => {
                if matches!(tenant, Some(t) if job.spec.tenant != t) {
                    return Err(QueueError::UnknownJob(id));
                }
            }
            None => return Err(QueueError::UnknownJob(id)),
        }
        self.set_phase(id, JobPhase::Cancelled, Some("cancelled by client".into()))
    }

    /// The job with this id, if any.
    pub fn get(&self, id: u64) -> Option<&JobState> {
        self.jobs.get(&id)
    }

    /// Every job, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobState> {
        self.jobs.values()
    }

    /// Non-terminal jobs in scheduling order: priority desc, then id asc
    /// (submission order breaks ties).
    pub fn runnable(&self) -> Vec<&JobState> {
        let mut jobs: Vec<&JobState> = self
            .jobs
            .values()
            .filter(|job| !job.phase.is_terminal())
            .collect();
        jobs.sort_by(|a, b| {
            b.spec
                .priority
                .cmp(&a.spec.priority)
                .then(a.spec.id.cmp(&b.spec.id))
        });
        jobs
    }

    /// Whether every job has settled (an empty queue counts).
    pub fn all_terminal(&self) -> bool {
        self.jobs.values().all(|job| job.phase.is_terminal())
    }

    /// The per-job checkpoint journal path, when persistence is on. Every
    /// job journals into its own file, so concurrent jobs never interleave
    /// writers and `--resume` semantics carry over per job.
    pub fn journal_path(&self, id: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|dir| dir.join(format!("job-{id:06}.ckpt.jsonl")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qismet-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn scheduling_order_is_priority_then_submission() {
        let mut q = JobQueue::in_memory();
        let low = q.submit("low", "a", -1, "{}", 1, 4).unwrap();
        let hi = q.submit("hi", "b", 9, "{}", 2, 4).unwrap();
        let mid1 = q.submit("mid1", "a", 0, "{}", 3, 4).unwrap();
        let mid2 = q.submit("mid2", "b", 0, "{}", 4, 4).unwrap();
        let order: Vec<u64> = q.runnable().iter().map(|j| j.spec.id).collect();
        assert_eq!(order, vec![hi, mid1, mid2, low]);
    }

    #[test]
    fn duplicate_fingerprints_are_refused_until_terminal() {
        let mut q = JobQueue::in_memory();
        let id = q.submit("one", "a", 0, "{}", 0xf00d, 4).unwrap();
        assert_eq!(
            q.submit("two", "b", 0, "{}", 0xf00d, 4),
            Err(QueueError::DuplicateFingerprint(id))
        );
        q.set_phase(id, JobPhase::Completed, None).unwrap();
        // After settling, resubmission is legal (and resumes the journal).
        assert!(q.submit("two", "b", 0, "{}", 0xf00d, 4).is_ok());
    }

    #[test]
    fn tenant_scoped_cancel_hides_foreign_jobs() {
        let mut q = JobQueue::in_memory();
        let id = q.submit("one", "alice", 0, "{}", 1, 4).unwrap();
        assert_eq!(q.cancel(id, Some("bob")), Err(QueueError::UnknownJob(id)));
        assert!(q.cancel(id, Some("alice")).is_ok());
        assert_eq!(q.cancel(id, None), Err(QueueError::Terminal(id)));
    }

    #[test]
    fn replay_restores_jobs_and_requeues_interrupted_runs() {
        let dir = temp_dir("replay");
        let (id_done, id_running, id_queued) = {
            let mut q = JobQueue::open(&dir).unwrap();
            let a = q.submit("a", "alice", 1, "{\"n\":1}", 11, 4).unwrap();
            let b = q.submit("b", "bob", 2, "{\"n\":2}", 22, 8).unwrap();
            let c = q.submit("c", "bob", 0, "{\"n\":3}", 33, 2).unwrap();
            q.set_phase(a, JobPhase::Running, None).unwrap();
            q.set_phase(a, JobPhase::Completed, Some("report.json".into()))
                .unwrap();
            q.set_phase(b, JobPhase::Running, None).unwrap();
            (a, b, c)
        };
        let q = JobQueue::open(&dir).unwrap();
        assert_eq!(q.dropped_lines, 0);
        assert_eq!(q.get(id_done).unwrap().phase, JobPhase::Completed);
        assert_eq!(
            q.get(id_done).unwrap().detail.as_deref(),
            Some("report.json")
        );
        // The interrupted run is queued again, payload intact.
        let b = q.get(id_running).unwrap();
        assert_eq!(b.phase, JobPhase::Queued);
        assert_eq!(b.spec.payload, "{\"n\":2}");
        assert_eq!(q.get(id_queued).unwrap().phase, JobPhase::Queued);
        // Fresh submissions never reuse replayed ids.
        let mut q = q;
        let d = q.submit("d", "alice", 0, "{}", 44, 1).unwrap();
        assert!(d > id_queued);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_log_lines_are_dropped_not_replayed() {
        let dir = temp_dir("corrupt");
        {
            let mut q = JobQueue::open(&dir).unwrap();
            q.submit("a", "alice", 0, "{}", 11, 4).unwrap();
            q.submit("b", "bob", 0, "{}", 22, 4).unwrap();
        }
        let log = dir.join("jobs.jsonl");
        let text = std::fs::read_to_string(&log).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        // Flip a byte in the second line's body without fixing the checksum.
        let mut bytes = lines[1].clone().into_bytes();
        let at = bytes.len() - 5;
        bytes[at] ^= 0x20;
        lines[1] = String::from_utf8(bytes).unwrap();
        lines.push("not a journal line".into());
        std::fs::write(&log, format!("{}\n", lines.join("\n"))).unwrap();

        let q = JobQueue::open(&dir).unwrap();
        assert_eq!(q.dropped_lines, 2);
        assert_eq!(q.jobs().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_job_journal_paths_are_distinct() {
        let dir = temp_dir("paths");
        let mut q = JobQueue::open(&dir).unwrap();
        let a = q.submit("a", "alice", 0, "{}", 1, 1).unwrap();
        let b = q.submit("b", "bob", 0, "{}", 2, 1).unwrap();
        assert_ne!(q.journal_path(a), q.journal_path(b));
        assert!(JobQueue::in_memory().journal_path(1).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

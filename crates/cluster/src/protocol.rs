//! The coordinator <-> worker wire protocol.
//!
//! Six message kinds cover the whole lifecycle:
//!
//! * [`Hello`]: the mutual handshake. The coordinator sends one first
//!   (announcing its campaign [`fingerprint`](crate::Fingerprint), spec
//!   count, and shared authentication token); the worker verifies the token
//!   and replies with its own `Hello` (same fields, plus its thread count),
//!   so a mis-launched worker (different grid flags, different binary) — or
//!   an unauthorized coordinator dialing a serve daemon — is rejected
//!   before any work is assigned.
//! * [`Reject`](Message::Reject) (worker -> coordinator): the worker
//!   refused the handshake (token mismatch). Carries the reason and never
//!   echoes the worker's own token.
//! * [`Assign`] (coordinator -> worker): run a batch of spec indices. The
//!   batch size tracks the worker's advertised [`Hello::threads`], so a
//!   threaded worker can fan a whole batch across its own
//!   `SweepExecutor` cores.
//! * [`Done`] (worker -> coordinator): the outcome of one assigned index —
//!   a serialized record, or a typed failure message. One `Done` per index,
//!   even for batched assignments.
//! * [`Checkpoint`](Message::Checkpoint): a durably-completed run. This
//!   variant is the line format of the [`journal`](crate::journal) rather
//!   than channel traffic: the coordinator appends one per `Done` to the
//!   checkpoint file, using the same serialization as the live channel.
//! * [`Ping`](Message::Ping) / [`Pong`](Message::Pong): the liveness
//!   heartbeat. A worker whose batch is still computing sends `Ping` at its
//!   configured interval so the coordinator's per-`Assign` deadline
//!   distinguishes a *slow* worker (frames still flowing) from a *hung* one
//!   (silence past the deadline — the session is torn down and its shard
//!   re-dispatched). The coordinator answers each `Ping` with a `Pong`,
//!   which the worker discards; the reply exists so heartbeat traffic
//!   exercises both directions of the channel.
//! * [`Shutdown`](Message::Shutdown) (coordinator -> worker): drain and
//!   end the session.
//!
//! ## Service frames
//!
//! The long-running daemon ([`crate::daemon`]) speaks the same framing
//! with an extended vocabulary:
//!
//! * [`Register`] / [`RegisterAck`](Message::RegisterAck): an elastic
//!   worker joins the fleet by *dialing the daemon* (inverting the static
//!   pool's connect direction) and is assigned a dynamic slot id.
//!   [`Deregister`](Message::Deregister) leaves voluntarily — no strike.
//! * [`Ready`](Message::Ready) (worker -> daemon): the worker is idle and
//!   pulls its next assignment. The daemon answers with [`JobOpen`] when
//!   the next batch belongs to a job the worker has not expanded yet
//!   (the worker replies [`JobReady`] after verifying the fingerprint),
//!   then a plain [`Assign`]; or `Shutdown` when the service drains.
//! * [`Submit`] / [`Submitted`](Message::Submitted),
//!   [`Status`](Message::Status) / [`StatusReply`],
//!   [`Cancel`] / [`CancelOk`](Message::CancelOk),
//!   [`Drain`](Message::Drain) / [`DrainOk`]: the client API. Clients
//!   authenticate with the same mutual `Hello` exchange (per-tenant
//!   tokens), then issue exactly one command per connection.
//! * [`ServiceErr`]: the daemon's typed refusal ([`ServiceErrKind`] — bad
//!   token, unknown job, duplicate fingerprint, ...), so scripted clients
//!   can branch on the failure class instead of parsing prose.
//!
//! Framing is `<decimal byte length>\n<json body>\n`. The explicit length
//! makes truncated or interleaved writes detectable instead of silently
//! re-synchronizing mid-stream, and the trailing newline keeps the stream
//! greppable when captured for debugging. The framing is
//! transport-agnostic — the same bytes flow over child-process pipes and
//! TCP sockets (see [`crate::transport`]).

use serde::{Deserialize, Serialize, Value};
use std::io::{self, BufRead, Write};

/// Upper bound on a single framed message body (guards against parsing a
/// corrupted length header into a giant allocation).
const MAX_FRAME_BYTES: usize = 1 << 30;

/// Build provenance carried by the [`Hello`] handshake so mismatched
/// binaries (different commit, different ISA features, different feature
/// flags) are visible at connection time and recorded in fleet telemetry.
/// Advisory only: the fingerprint/token checks remain the gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildStamp {
    /// Workspace crate version.
    pub version: String,
    /// Short git commit hash at compile time (`"unknown"` outside git).
    pub git_hash: String,
    /// Enabled codegen target features of the sender's binary.
    pub target_features: String,
    /// Whether the sender was built with the `parallel` feature.
    pub parallel: bool,
}

impl BuildStamp {
    /// The stamp for the current binary. `parallel` is supplied by the
    /// caller because cargo features are per-crate: only the embedding
    /// crate knows whether its own `parallel` feature is on.
    pub fn local(parallel: bool) -> Self {
        qismet_telemetry::BuildInfo::current(parallel).into()
    }
}

impl From<qismet_telemetry::BuildInfo> for BuildStamp {
    fn from(b: qismet_telemetry::BuildInfo) -> Self {
        Self {
            version: b.version,
            git_hash: b.git_hash,
            target_features: b.target_features,
            parallel: b.parallel,
        }
    }
}

/// Compact worker-side telemetry delta piggybacked on [`Done`] frames.
///
/// Each `Done` carries the tallies accrued *since the previous `Done` of
/// the same session* (the first carries everything since session start),
/// so the coordinator aggregates fleet-wide metrics by plain addition and
/// the arithmetic survives respawns and daemon session reuse without any
/// baseline bookkeeping. All durations are nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Specs completed (successfully or not).
    pub specs_done: u64,
    /// Wall time spent executing specs.
    pub eval_ns: u64,
    /// Compiled-plan cache hits in the worker's qsim backends.
    pub plan_hits: u64,
    /// Compiled-plan cache misses (compilations).
    pub plan_misses: u64,
    /// Heartbeat round trips newly matched (ping send -> pong read; pong
    /// reads are deferred to batch boundaries, so this upper-bounds wire
    /// RTT — see the coordinator docs).
    pub rtt_count: u64,
    /// Sum of those round trips.
    pub rtt_ns_sum: u64,
    /// Largest of those round trips.
    pub rtt_ns_max: u64,
}

/// Handshake message, sent by both sides (coordinator first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Worker slot index within the pool (assigned by the coordinator; the
    /// worker echoes it back).
    pub worker_id: usize,
    /// The sender's own fingerprint of the expanded campaign.
    pub fingerprint: u64,
    /// How many specs the sender's expansion produced.
    pub spec_count: usize,
    /// Shared authentication token. The worker compares the coordinator's
    /// token against its own and answers [`Message::Reject`] on mismatch;
    /// its reply carries its own (matching) token.
    pub token: String,
    /// How many executor threads the sender runs assignments on (workers
    /// advertise it so the coordinator sizes [`Assign`] batches; the
    /// coordinator sends 0).
    pub threads: usize,
    /// Build provenance of the sender's binary.
    pub build: BuildStamp,
}

/// Coordinator order: execute a batch of spec indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assign {
    /// Flat indices into the campaign's expansion order. The worker answers
    /// with one [`Done`] per index.
    pub indices: Vec<usize>,
}

/// The result payload of one assigned run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The run's record, as a serde value tree.
    Record(Value),
    /// The run failed (e.g. panicked); carries the failure description.
    Failed(String),
}

/// Worker reply to an [`Assign`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Done {
    /// The assigned index this outcome belongs to.
    pub index: usize,
    /// The fully-resolved seed the run executed with (journal key).
    pub seed: u64,
    /// Record or failure.
    pub outcome: Outcome,
    /// Telemetry delta since this session's previous `Done` (see
    /// [`WorkerStats`]); `None` from workers predating telemetry or with
    /// collection disabled.
    pub stats: Option<WorkerStats>,
}

/// One durably-completed run, as appended to the checkpoint journal.
///
/// The (fingerprint, index, seed) triple is the resume key: a journal line
/// is only replayed into a campaign whose fingerprint matches *and* whose
/// spec at `index` still resolves to `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// Fingerprint of the campaign this run belongs to.
    pub fingerprint: u64,
    /// Flat spec index.
    pub index: usize,
    /// The seed the run executed with.
    pub seed: u64,
    /// The completed record, as a serde value tree.
    pub record: Value,
}

/// An elastic worker's request to join a service daemon's fleet.
///
/// Unlike the static pool's [`Hello`] (where the coordinator knows the
/// campaign and dials the worker), a registering worker knows nothing
/// about the jobs it will serve — campaigns are shipped later via
/// [`JobOpen`]. The token is the fleet-side shared secret, distinct from
/// the per-tenant submission tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Register {
    /// Stable worker name chosen by the operator. Quarantine strikes
    /// accrue to the *name* across sessions, so a crashy worker cannot
    /// launder its record by reconnecting.
    pub name: String,
    /// Fleet authentication token.
    pub token: String,
    /// Executor threads the worker runs assignments on (sizes batches).
    pub threads: usize,
    /// Build provenance of the worker's binary.
    pub build: BuildStamp,
}

/// Daemon -> worker: ships one job's campaign payload so the worker can
/// expand and verify it before any of its indices are assigned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOpen {
    /// Queue-assigned job id; subsequent [`Assign`] batches belong to the
    /// most recently opened job.
    pub job_id: u64,
    /// Planner-specific campaign description (the same payload the
    /// submitting client sent).
    pub payload: String,
    /// The daemon's fingerprint of the expanded campaign.
    pub fingerprint: u64,
    /// How many specs the daemon's expansion produced.
    pub spec_count: usize,
}

/// Worker -> daemon: the worker expanded a [`JobOpen`] payload and echoes
/// its own fingerprint/spec count (a mismatch means divergent binaries and
/// cuts the session before any result could contaminate the job).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReady {
    /// The job this verification answers.
    pub job_id: u64,
    /// The worker's own fingerprint of the expanded campaign.
    pub fingerprint: u64,
    /// How many specs the worker's expansion produced.
    pub spec_count: usize,
}

/// Client -> daemon: enqueue one campaign as a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submit {
    /// Job display name (also names the report artifact).
    pub name: String,
    /// Queue priority; higher runs first among runnable jobs.
    pub priority: i64,
    /// Planner-specific campaign description, shipped verbatim to
    /// workers via [`JobOpen`].
    pub payload: String,
}

/// Daemon -> client: a [`Submit`] was accepted and enqueued.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submitted {
    /// Queue-assigned job id (the handle for `status`/`cancel`).
    pub job_id: u64,
    /// The daemon's fingerprint of the expanded campaign.
    pub fingerprint: u64,
}

/// One job's public state, as reported by [`StatusReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatusInfo {
    /// Queue-assigned job id.
    pub job_id: u64,
    /// Job display name.
    pub name: String,
    /// Owning tenant.
    pub tenant: String,
    /// Queue priority.
    pub priority: i64,
    /// Lifecycle phase name (`queued`, `running`, `completed`, `failed`,
    /// `cancelled`).
    pub phase: String,
    /// Specs completed so far (resumed + freshly executed).
    pub done: usize,
    /// Total specs in the expansion.
    pub total: usize,
    /// Phase detail: the report path for completed jobs, the failure for
    /// failed ones.
    pub detail: Option<String>,
}

/// One registered worker slot's public state, as reported by
/// [`StatusReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotStatusInfo {
    /// Dynamic slot id (monotonic across the daemon's lifetime).
    pub slot: u64,
    /// Operator-chosen worker name.
    pub name: String,
    /// Whether the session is still connected.
    pub active: bool,
    /// Results this slot has delivered.
    pub done: u64,
    /// Lifetime channel strikes accrued to the worker's *name*.
    pub strikes: usize,
    /// Whether the name is quarantined (future registrations refused).
    pub quarantined: bool,
    /// The job the slot is currently serving, if any.
    pub job: Option<u64>,
}

/// Daemon -> client: answer to [`Status`](Message::Status). Tenants see
/// their own jobs; the fleet token sees everything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReply {
    /// Visible jobs, in id order.
    pub jobs: Vec<JobStatusInfo>,
    /// Registered worker slots, in slot order.
    pub workers: Vec<SlotStatusInfo>,
    /// Whether the daemon is draining (refusing new submissions).
    pub draining: bool,
}

/// Client -> daemon: cancel one job (queued jobs die immediately; running
/// jobs stop at the next assignment boundary, their journal intact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cancel {
    /// The job to cancel.
    pub job_id: u64,
}

/// Daemon -> client: answer to [`Drain`](Message::Drain), sent once every
/// job has reached a terminal phase and the daemon is about to exit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainOk {
    /// Jobs that completed successfully over the daemon's lifetime.
    pub jobs_completed: usize,
    /// Jobs that failed or were cancelled.
    pub jobs_failed: usize,
}

/// Failure classes a service daemon reports to clients and registering
/// workers, so scripted callers can branch without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceErrKind {
    /// The presented token matches no tenant (and not the fleet token).
    BadToken,
    /// The job id names no job visible to this principal.
    UnknownJob,
    /// A non-terminal job with the same campaign fingerprint already
    /// exists (double submission would race two writers on one journal).
    DuplicateFingerprint,
    /// The campaign payload did not expand (parse error, unknown app...).
    BadPayload,
    /// The daemon is draining and refuses new submissions.
    Draining,
    /// The worker name is quarantined; register under a fresh name.
    Quarantined,
}

/// A typed refusal from the service daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceErr {
    /// The failure class.
    pub kind: ServiceErrKind,
    /// Human-readable context.
    pub detail: String,
}

/// Every message that crosses a worker channel or a journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Handshake (coordinator first, then the worker's reply).
    Hello(Hello),
    /// The worker refused the handshake; carries the reason.
    Reject(String),
    /// Assign a batch of spec indices.
    Assign(Assign),
    /// Outcome of one assigned index.
    Done(Done),
    /// A durably-completed run (journal line format).
    Checkpoint(CheckpointEntry),
    /// Worker liveness heartbeat, sent while a batch is still computing.
    Ping,
    /// Coordinator acknowledgement of a [`Ping`](Message::Ping).
    Pong,
    /// Drain and end the session.
    Shutdown,
    /// An elastic worker joins a service daemon's fleet.
    Register(Register),
    /// Daemon -> worker: registration accepted; carries the dynamic slot id.
    RegisterAck(u64),
    /// Worker -> daemon: leave the fleet voluntarily (no strike). The
    /// daemon answers [`Shutdown`](Message::Shutdown).
    Deregister,
    /// Worker -> daemon: idle, pull the next assignment.
    Ready,
    /// Daemon -> worker: expand this job before its first assignment.
    JobOpen(JobOpen),
    /// Worker -> daemon: job expanded and verified.
    JobReady(JobReady),
    /// Client -> daemon: enqueue a campaign.
    Submit(Submit),
    /// Daemon -> client: submission accepted.
    Submitted(Submitted),
    /// Client -> daemon: report queue and fleet state.
    Status,
    /// Daemon -> client: answer to [`Status`](Message::Status).
    StatusReply(StatusReply),
    /// Client -> daemon: cancel one job.
    Cancel(Cancel),
    /// Daemon -> client: the job was cancelled.
    CancelOk(u64),
    /// Client -> daemon: refuse new submissions, wait for every job to
    /// settle, then exit.
    Drain,
    /// Daemon -> client: drain finished; the daemon is exiting.
    DrainOk(DrainOk),
    /// Daemon -> client/worker: typed refusal.
    ServiceErr(ServiceErr),
}

/// Writes one length-framed message and flushes.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer (e.g. a broken pipe
/// when the peer process has exited).
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    let body = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(w, "{}", body.len())?;
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one length-framed message.
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] when the channel closed cleanly
/// between messages, and [`io::ErrorKind::InvalidData`] on framing or JSON
/// corruption (a non-numeric length header, a missing trailing newline, an
/// oversized frame, or an unparsable body).
pub fn read_message<R: BufRead>(r: &mut R) -> io::Result<Message> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "message channel closed",
        ));
    }
    let len: usize = header.trim().parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid frame length header {header:?}"),
        )
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len + 1];
    r.read_exact(&mut body)?;
    if body[len] != b'\n' {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame missing trailing newline",
        ));
    }
    let text = std::str::from_utf8(&body[..len])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unparsable message body: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, msg).unwrap();
        let mut cursor = io::Cursor::new(buf);
        read_message(&mut cursor).unwrap()
    }

    #[test]
    fn every_message_kind_roundtrips() {
        let record = Value::Object(vec![
            ("final_energy".into(), Value::F64(-5.227_001)),
            ("seed".into(), Value::U64(u64::MAX - 1)),
        ]);
        let messages = [
            Message::Hello(Hello {
                worker_id: 3,
                fingerprint: 0xdead_beef_cafe_f00d,
                spec_count: 96,
                token: "s3cret".into(),
                threads: 4,
                build: qismet_telemetry::BuildInfo::current(false).into(),
            }),
            Message::Reject("token mismatch".into()),
            Message::Assign(Assign {
                indices: vec![17, 18, 19],
            }),
            Message::Done(Done {
                index: 17,
                seed: 0x5eed,
                outcome: Outcome::Record(record.clone()),
                stats: Some(WorkerStats {
                    specs_done: 1,
                    eval_ns: 12_345,
                    plan_hits: 7,
                    plan_misses: 1,
                    rtt_count: 2,
                    rtt_ns_sum: 900,
                    rtt_ns_max: 600,
                }),
            }),
            Message::Done(Done {
                index: 18,
                seed: 0x5eee,
                outcome: Outcome::Failed("run panicked: boom".into()),
                stats: None,
            }),
            Message::Checkpoint(CheckpointEntry {
                fingerprint: 1,
                index: 2,
                seed: 3,
                record,
            }),
            Message::Ping,
            Message::Pong,
            Message::Shutdown,
            Message::Register(Register {
                name: "node-7".into(),
                token: "fleet-key".into(),
                threads: 8,
                build: qismet_telemetry::BuildInfo::current(true).into(),
            }),
            Message::RegisterAck(41),
            Message::Deregister,
            Message::Ready,
            Message::JobOpen(JobOpen {
                job_id: 3,
                payload: "{\"apps\":[2]}".into(),
                fingerprint: 0x0123_4567_89ab_cdef,
                spec_count: 12,
            }),
            Message::JobReady(JobReady {
                job_id: 3,
                fingerprint: 0x0123_4567_89ab_cdef,
                spec_count: 12,
            }),
            Message::Submit(Submit {
                name: "fig9".into(),
                priority: -2,
                payload: "{\"apps\":[1,2]}".into(),
            }),
            Message::Submitted(Submitted {
                job_id: 3,
                fingerprint: 0x0123_4567_89ab_cdef,
            }),
            Message::Status,
            Message::StatusReply(StatusReply {
                jobs: vec![JobStatusInfo {
                    job_id: 3,
                    name: "fig9".into(),
                    tenant: "alice".into(),
                    priority: -2,
                    phase: "running".into(),
                    done: 4,
                    total: 12,
                    detail: None,
                }],
                workers: vec![SlotStatusInfo {
                    slot: 41,
                    name: "node-7".into(),
                    active: true,
                    done: 4,
                    strikes: 1,
                    quarantined: false,
                    job: Some(3),
                }],
                draining: true,
            }),
            Message::Cancel(Cancel { job_id: 3 }),
            Message::CancelOk(3),
            Message::Drain,
            Message::DrainOk(DrainOk {
                jobs_completed: 5,
                jobs_failed: 1,
            }),
            Message::ServiceErr(ServiceErr {
                kind: ServiceErrKind::DuplicateFingerprint,
                detail: "job 3 already holds this campaign".into(),
            }),
        ];
        for msg in &messages {
            assert_eq!(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn floats_survive_the_frame_bit_exactly() {
        let x = 0.1f64 + 0.2;
        let msg = Message::Checkpoint(CheckpointEntry {
            fingerprint: 9,
            index: 0,
            seed: 1,
            record: Value::Array(vec![Value::F64(x), Value::F64(-x)]),
        });
        match roundtrip(&msg) {
            Message::Checkpoint(e) => match e.record {
                Value::Array(items) => {
                    assert_eq!(items[0].as_f64().unwrap().to_bits(), x.to_bits());
                    assert_eq!(items[1].as_f64().unwrap().to_bits(), (-x).to_bits());
                }
                other => panic!("unexpected record {other:?}"),
            },
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn consecutive_frames_parse_in_order() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Assign(Assign { indices: vec![1] })).unwrap();
        write_message(&mut buf, &Message::Assign(Assign { indices: vec![2] })).unwrap();
        write_message(&mut buf, &Message::Shutdown).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            Message::Assign(Assign { indices: vec![1] })
        );
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            Message::Assign(Assign { indices: vec![2] })
        );
        assert_eq!(read_message(&mut cursor).unwrap(), Message::Shutdown);
        let eof = read_message(&mut cursor).unwrap_err();
        assert_eq!(eof.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        // Garbage length header.
        let mut cursor = io::Cursor::new(b"abc\n{}\n".to_vec());
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Truncated body.
        let mut cursor = io::Cursor::new(b"100\n{\"Shutdown\"".to_vec());
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Length lies about the boundary (no trailing newline where claimed).
        let mut cursor = io::Cursor::new(b"3\n\"Shutdown\"\n".to_vec());
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}

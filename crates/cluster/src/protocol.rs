//! The coordinator <-> worker wire protocol.
//!
//! Six message kinds cover the whole lifecycle:
//!
//! * [`Hello`]: the mutual handshake. The coordinator sends one first
//!   (announcing its campaign [`fingerprint`](crate::Fingerprint), spec
//!   count, and shared authentication token); the worker verifies the token
//!   and replies with its own `Hello` (same fields, plus its thread count),
//!   so a mis-launched worker (different grid flags, different binary) — or
//!   an unauthorized coordinator dialing a serve daemon — is rejected
//!   before any work is assigned.
//! * [`Reject`](Message::Reject) (worker -> coordinator): the worker
//!   refused the handshake (token mismatch). Carries the reason and never
//!   echoes the worker's own token.
//! * [`Assign`] (coordinator -> worker): run a batch of spec indices. The
//!   batch size tracks the worker's advertised [`Hello::threads`], so a
//!   threaded worker can fan a whole batch across its own
//!   `SweepExecutor` cores.
//! * [`Done`] (worker -> coordinator): the outcome of one assigned index —
//!   a serialized record, or a typed failure message. One `Done` per index,
//!   even for batched assignments.
//! * [`Checkpoint`](Message::Checkpoint): a durably-completed run. This
//!   variant is the line format of the [`journal`](crate::journal) rather
//!   than channel traffic: the coordinator appends one per `Done` to the
//!   checkpoint file, using the same serialization as the live channel.
//! * [`Ping`](Message::Ping) / [`Pong`](Message::Pong): the liveness
//!   heartbeat. A worker whose batch is still computing sends `Ping` at its
//!   configured interval so the coordinator's per-`Assign` deadline
//!   distinguishes a *slow* worker (frames still flowing) from a *hung* one
//!   (silence past the deadline — the session is torn down and its shard
//!   re-dispatched). The coordinator answers each `Ping` with a `Pong`,
//!   which the worker discards; the reply exists so heartbeat traffic
//!   exercises both directions of the channel.
//! * [`Shutdown`](Message::Shutdown) (coordinator -> worker): drain and
//!   end the session.
//!
//! Framing is `<decimal byte length>\n<json body>\n`. The explicit length
//! makes truncated or interleaved writes detectable instead of silently
//! re-synchronizing mid-stream, and the trailing newline keeps the stream
//! greppable when captured for debugging. The framing is
//! transport-agnostic — the same bytes flow over child-process pipes and
//! TCP sockets (see [`crate::transport`]).

use serde::{Deserialize, Serialize, Value};
use std::io::{self, BufRead, Write};

/// Upper bound on a single framed message body (guards against parsing a
/// corrupted length header into a giant allocation).
const MAX_FRAME_BYTES: usize = 1 << 30;

/// Build provenance carried by the [`Hello`] handshake so mismatched
/// binaries (different commit, different ISA features, different feature
/// flags) are visible at connection time and recorded in fleet telemetry.
/// Advisory only: the fingerprint/token checks remain the gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildStamp {
    /// Workspace crate version.
    pub version: String,
    /// Short git commit hash at compile time (`"unknown"` outside git).
    pub git_hash: String,
    /// Enabled codegen target features of the sender's binary.
    pub target_features: String,
    /// Whether the sender was built with the `parallel` feature.
    pub parallel: bool,
}

impl BuildStamp {
    /// The stamp for the current binary. `parallel` is supplied by the
    /// caller because cargo features are per-crate: only the embedding
    /// crate knows whether its own `parallel` feature is on.
    pub fn local(parallel: bool) -> Self {
        qismet_telemetry::BuildInfo::current(parallel).into()
    }
}

impl From<qismet_telemetry::BuildInfo> for BuildStamp {
    fn from(b: qismet_telemetry::BuildInfo) -> Self {
        Self {
            version: b.version,
            git_hash: b.git_hash,
            target_features: b.target_features,
            parallel: b.parallel,
        }
    }
}

/// Compact worker-side telemetry delta piggybacked on [`Done`] frames.
///
/// Each `Done` carries the tallies accrued *since the previous `Done` of
/// the same session* (the first carries everything since session start),
/// so the coordinator aggregates fleet-wide metrics by plain addition and
/// the arithmetic survives respawns and daemon session reuse without any
/// baseline bookkeeping. All durations are nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Specs completed (successfully or not).
    pub specs_done: u64,
    /// Wall time spent executing specs.
    pub eval_ns: u64,
    /// Compiled-plan cache hits in the worker's qsim backends.
    pub plan_hits: u64,
    /// Compiled-plan cache misses (compilations).
    pub plan_misses: u64,
    /// Heartbeat round trips newly matched (ping send -> pong read; pong
    /// reads are deferred to batch boundaries, so this upper-bounds wire
    /// RTT — see the coordinator docs).
    pub rtt_count: u64,
    /// Sum of those round trips.
    pub rtt_ns_sum: u64,
    /// Largest of those round trips.
    pub rtt_ns_max: u64,
}

/// Handshake message, sent by both sides (coordinator first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Worker slot index within the pool (assigned by the coordinator; the
    /// worker echoes it back).
    pub worker_id: usize,
    /// The sender's own fingerprint of the expanded campaign.
    pub fingerprint: u64,
    /// How many specs the sender's expansion produced.
    pub spec_count: usize,
    /// Shared authentication token. The worker compares the coordinator's
    /// token against its own and answers [`Message::Reject`] on mismatch;
    /// its reply carries its own (matching) token.
    pub token: String,
    /// How many executor threads the sender runs assignments on (workers
    /// advertise it so the coordinator sizes [`Assign`] batches; the
    /// coordinator sends 0).
    pub threads: usize,
    /// Build provenance of the sender's binary.
    pub build: BuildStamp,
}

/// Coordinator order: execute a batch of spec indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assign {
    /// Flat indices into the campaign's expansion order. The worker answers
    /// with one [`Done`] per index.
    pub indices: Vec<usize>,
}

/// The result payload of one assigned run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The run's record, as a serde value tree.
    Record(Value),
    /// The run failed (e.g. panicked); carries the failure description.
    Failed(String),
}

/// Worker reply to an [`Assign`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Done {
    /// The assigned index this outcome belongs to.
    pub index: usize,
    /// The fully-resolved seed the run executed with (journal key).
    pub seed: u64,
    /// Record or failure.
    pub outcome: Outcome,
    /// Telemetry delta since this session's previous `Done` (see
    /// [`WorkerStats`]); `None` from workers predating telemetry or with
    /// collection disabled.
    pub stats: Option<WorkerStats>,
}

/// One durably-completed run, as appended to the checkpoint journal.
///
/// The (fingerprint, index, seed) triple is the resume key: a journal line
/// is only replayed into a campaign whose fingerprint matches *and* whose
/// spec at `index` still resolves to `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// Fingerprint of the campaign this run belongs to.
    pub fingerprint: u64,
    /// Flat spec index.
    pub index: usize,
    /// The seed the run executed with.
    pub seed: u64,
    /// The completed record, as a serde value tree.
    pub record: Value,
}

/// Every message that crosses a worker channel or a journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Handshake (coordinator first, then the worker's reply).
    Hello(Hello),
    /// The worker refused the handshake; carries the reason.
    Reject(String),
    /// Assign a batch of spec indices.
    Assign(Assign),
    /// Outcome of one assigned index.
    Done(Done),
    /// A durably-completed run (journal line format).
    Checkpoint(CheckpointEntry),
    /// Worker liveness heartbeat, sent while a batch is still computing.
    Ping,
    /// Coordinator acknowledgement of a [`Ping`](Message::Ping).
    Pong,
    /// Drain and end the session.
    Shutdown,
}

/// Writes one length-framed message and flushes.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer (e.g. a broken pipe
/// when the peer process has exited).
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    let body = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(w, "{}", body.len())?;
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one length-framed message.
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] when the channel closed cleanly
/// between messages, and [`io::ErrorKind::InvalidData`] on framing or JSON
/// corruption (a non-numeric length header, a missing trailing newline, an
/// oversized frame, or an unparsable body).
pub fn read_message<R: BufRead>(r: &mut R) -> io::Result<Message> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "message channel closed",
        ));
    }
    let len: usize = header.trim().parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid frame length header {header:?}"),
        )
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len + 1];
    r.read_exact(&mut body)?;
    if body[len] != b'\n' {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame missing trailing newline",
        ));
    }
    let text = std::str::from_utf8(&body[..len])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unparsable message body: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, msg).unwrap();
        let mut cursor = io::Cursor::new(buf);
        read_message(&mut cursor).unwrap()
    }

    #[test]
    fn every_message_kind_roundtrips() {
        let record = Value::Object(vec![
            ("final_energy".into(), Value::F64(-5.227_001)),
            ("seed".into(), Value::U64(u64::MAX - 1)),
        ]);
        let messages = [
            Message::Hello(Hello {
                worker_id: 3,
                fingerprint: 0xdead_beef_cafe_f00d,
                spec_count: 96,
                token: "s3cret".into(),
                threads: 4,
                build: qismet_telemetry::BuildInfo::current(false).into(),
            }),
            Message::Reject("token mismatch".into()),
            Message::Assign(Assign {
                indices: vec![17, 18, 19],
            }),
            Message::Done(Done {
                index: 17,
                seed: 0x5eed,
                outcome: Outcome::Record(record.clone()),
                stats: Some(WorkerStats {
                    specs_done: 1,
                    eval_ns: 12_345,
                    plan_hits: 7,
                    plan_misses: 1,
                    rtt_count: 2,
                    rtt_ns_sum: 900,
                    rtt_ns_max: 600,
                }),
            }),
            Message::Done(Done {
                index: 18,
                seed: 0x5eee,
                outcome: Outcome::Failed("run panicked: boom".into()),
                stats: None,
            }),
            Message::Checkpoint(CheckpointEntry {
                fingerprint: 1,
                index: 2,
                seed: 3,
                record,
            }),
            Message::Ping,
            Message::Pong,
            Message::Shutdown,
        ];
        for msg in &messages {
            assert_eq!(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn floats_survive_the_frame_bit_exactly() {
        let x = 0.1f64 + 0.2;
        let msg = Message::Checkpoint(CheckpointEntry {
            fingerprint: 9,
            index: 0,
            seed: 1,
            record: Value::Array(vec![Value::F64(x), Value::F64(-x)]),
        });
        match roundtrip(&msg) {
            Message::Checkpoint(e) => match e.record {
                Value::Array(items) => {
                    assert_eq!(items[0].as_f64().unwrap().to_bits(), x.to_bits());
                    assert_eq!(items[1].as_f64().unwrap().to_bits(), (-x).to_bits());
                }
                other => panic!("unexpected record {other:?}"),
            },
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn consecutive_frames_parse_in_order() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Assign(Assign { indices: vec![1] })).unwrap();
        write_message(&mut buf, &Message::Assign(Assign { indices: vec![2] })).unwrap();
        write_message(&mut buf, &Message::Shutdown).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            Message::Assign(Assign { indices: vec![1] })
        );
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            Message::Assign(Assign { indices: vec![2] })
        );
        assert_eq!(read_message(&mut cursor).unwrap(), Message::Shutdown);
        let eof = read_message(&mut cursor).unwrap_err();
        assert_eq!(eof.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        // Garbage length header.
        let mut cursor = io::Cursor::new(b"abc\n{}\n".to_vec());
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Truncated body.
        let mut cursor = io::Cursor::new(b"100\n{\"Shutdown\"".to_vec());
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Length lies about the boundary (no trailing newline where claimed).
        let mut cursor = io::Cursor::new(b"3\n\"Shutdown\"\n".to_vec());
        assert_eq!(
            read_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}

//! Transport abstraction: length-framed [`Message`] channels over any
//! blocking byte stream.
//!
//! The wire protocol ([`crate::protocol`]) is transport-agnostic; this
//! module supplies the stream layer beneath it:
//!
//! * [`Transport`] — one bidirectional message channel to a peer. Two
//!   implementations ship: [`ChildTransport`] (a spawned worker process's
//!   stdin/stdout pipes — the original stdio path, refactored behind the
//!   trait with identical framing bytes) and [`TcpTransport`]
//!   (`TcpStream` with `TCP_NODELAY`, optional read timeouts, and graceful
//!   EOF surfacing as `UnexpectedEof` so the coordinator classifies a
//!   vanished peer as worker-lost, not protocol corruption).
//!   [`StdioTransport`] is the worker-side half of the pipe pair.
//! * [`Listener`] — accepts inbound transports; [`TcpTransportListener`]
//!   wraps `std::net::TcpListener` for the `campaign --serve` daemon.
//! * [`Connector`] — how the coordinator obtains (and re-obtains, after a
//!   crash or disconnect) the transport for one worker slot:
//!   [`ProcessConnector`] spawns a local worker process,
//!   [`TcpConnector`] dials a remote serve daemon. A
//!   [`crate::coordinator::WorkerPool`] built from a mixed connector list
//!   treats local and remote workers uniformly.

use crate::protocol::{read_message, write_message, Message};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::time::Duration;

/// Environment variable carrying the worker's pool slot index to a spawned
/// process (diagnostic; the authoritative slot travels in the coordinator's
/// [`crate::protocol::Hello`]).
pub const WORKER_ID_ENV: &str = "QISMET_CLUSTER_WORKER_ID";

/// One blocking, bidirectional message channel to a peer.
///
/// Implementations frame every message identically (see
/// [`crate::protocol`]); only the byte stream underneath differs.
pub trait Transport: Send {
    /// Writes one framed message and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream (broken pipe,
    /// connection reset).
    fn send(&mut self, msg: &Message) -> io::Result<()>;

    /// Reads one framed message, blocking until it arrives.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] when the peer closed the channel
    /// cleanly between messages; [`io::ErrorKind::InvalidData`] on framing
    /// corruption; timeout kinds when a read deadline (set via
    /// [`Transport::set_read_timeout`]) expires.
    fn recv(&mut self) -> io::Result<Message>;

    /// Peer label for diagnostics (`"process 1234"`, `"127.0.0.1:9000"`).
    fn peer(&self) -> String;

    /// Bounds how long [`Transport::recv`] may block (`None` = forever).
    /// Transports without deadline support (pipes) accept and ignore it.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let _ = timeout;
        Ok(())
    }

    /// Writes raw bytes to the stream without framing them, then flushes.
    ///
    /// This deliberately bypasses the protocol layer; it exists so the
    /// [`chaos`](crate::chaos) fault injector can emit truncated or
    /// corrupted frames that the *peer's* parser must survive. Production
    /// code paths never call it.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] for transports that cannot expose
    /// their raw stream; otherwise propagates write failures.
    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        let _ = bytes;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport does not expose a raw byte stream",
        ))
    }
}

/// Accepts inbound [`Transport`] sessions (the worker-daemon side).
pub trait Listener: Send {
    /// Blocks until the next coordinator connects.
    ///
    /// # Errors
    ///
    /// Propagates accept failures from the underlying listener.
    fn accept(&mut self) -> io::Result<Box<dyn Transport>>;

    /// The address this listener is bound to, for operator-facing logs.
    fn local_addr(&self) -> io::Result<String>;
}

// ---------------------------------------------------------------------------
// Child-process (stdio pipe) transport
// ---------------------------------------------------------------------------

/// How to launch one local worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLaunch {
    /// Executable to spawn (typically `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments that put the binary into worker mode for the same campaign
    /// the coordinator expanded (grid flags plus `--worker`).
    pub args: Vec<String>,
    /// Extra environment variables for the worker (fault-injection hooks,
    /// scale overrides). The parent environment is inherited as usual.
    pub envs: Vec<(String, String)>,
}

impl WorkerLaunch {
    /// A launch spec with no extra environment.
    pub fn new(program: PathBuf, args: Vec<String>) -> Self {
        WorkerLaunch {
            program,
            args,
            envs: Vec::new(),
        }
    }
}

/// Coordinator-side transport over a spawned worker process's stdio pipes.
///
/// Pipes have no kernel-level read deadline, so a dedicated reader thread
/// owns the child's stdout and forwards parsed frames over an in-process
/// channel; [`Transport::recv`] then honors
/// [`Transport::set_read_timeout`] via a bounded channel wait. That makes a
/// *hung* local worker (process alive, frames stopped) detectable exactly
/// like a hung TCP peer.
///
/// Dropping the transport kills and reaps the child (which unblocks and
/// joins the reader thread), so an errored session can never leak a zombie
/// worker.
#[derive(Debug)]
pub struct ChildTransport {
    child: Child,
    stdin: ChildStdin,
    frames: Receiver<io::Result<Message>>,
    reader: Option<std::thread::JoinHandle<()>>,
    read_timeout: Option<Duration>,
}

impl ChildTransport {
    /// Spawns `launch` with piped stdio, tagging the process with its pool
    /// slot via [`WORKER_ID_ENV`].
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure.
    pub fn spawn(launch: &WorkerLaunch, worker: usize) -> io::Result<Self> {
        let mut cmd = Command::new(&launch.program);
        cmd.args(&launch.args)
            .env(WORKER_ID_ENV, worker.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in &launch.envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, frames) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut stdout = BufReader::new(stdout);
            loop {
                let frame = read_message(&mut stdout);
                let ends_stream = frame.is_err();
                if tx.send(frame).is_err() || ends_stream {
                    // Receiver gone, or the pipe itself ended (EOF/error):
                    // either way the stream is over.
                    return;
                }
            }
        });
        Ok(ChildTransport {
            child,
            stdin,
            frames,
            reader: Some(reader),
            read_timeout: None,
        })
    }
}

impl Transport for ChildTransport {
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        write_message(&mut self.stdin, msg)
    }

    fn recv(&mut self) -> io::Result<Message> {
        let closed = || io::Error::new(io::ErrorKind::UnexpectedEof, "message channel closed");
        match self.read_timeout {
            Some(deadline) => match self.frames.recv_timeout(deadline) {
                Ok(frame) => frame,
                Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no frame within the {deadline:?} read deadline"),
                )),
                Err(RecvTimeoutError::Disconnected) => Err(closed()),
            },
            None => self.frames.recv().unwrap_or_else(|_| Err(closed())),
        }
    }

    fn peer(&self) -> String {
        format!("process {}", self.child.id())
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        Ok(())
    }

    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stdin.write_all(bytes)?;
        self.stdin.flush()
    }
}

impl Drop for ChildTransport {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        // Reaping closed the pipe, so the reader's next read errors out and
        // the thread exits; the join can only be brief.
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Worker-side transport over the process's own stdin/stdout (the other
/// half of [`ChildTransport`]). Stdout belongs to the protocol while this
/// exists — workers must log to stderr only.
#[derive(Debug)]
pub struct StdioTransport {
    reader: BufReader<io::Stdin>,
    writer: io::Stdout,
}

impl StdioTransport {
    /// A transport over this process's stdin/stdout.
    pub fn new() -> Self {
        StdioTransport {
            reader: BufReader::new(io::stdin()),
            writer: io::stdout(),
        }
    }
}

impl Default for StdioTransport {
    fn default() -> Self {
        StdioTransport::new()
    }
}

impl Transport for StdioTransport {
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        write_message(&mut self.writer, msg)
    }

    fn recv(&mut self) -> io::Result<Message> {
        read_message(&mut self.reader)
    }

    fn peer(&self) -> String {
        "stdio".to_string()
    }

    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// Transport over a TCP stream (`TCP_NODELAY` set — the protocol is
/// latency-bound request/response, not throughput-bound).
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Wraps an established stream (server side: fresh from `accept`).
    ///
    /// # Errors
    ///
    /// Propagates socket-option or handle-duplication failures.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        Ok(TcpTransport {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            peer,
        })
    }

    /// Dials `addr` (`host:port`), bounding the connection attempt by
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection failures (every resolved
    /// address is tried; the last failure is returned).
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Self> {
        let mut last_err = None;
        for sock_addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock_addr, timeout) {
                Ok(stream) => return TcpTransport::from_stream(stream),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("{addr} resolved to no addresses"),
            )
        }))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        write_message(&mut self.writer, msg)
    }

    fn recv(&mut self) -> io::Result<Message> {
        read_message(&mut self.reader)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        // reader and writer share one socket, so one setsockopt covers both.
        self.writer.set_read_timeout(timeout)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }
}

/// TCP listener for the `campaign --serve` worker daemon.
#[derive(Debug)]
pub struct TcpTransportListener {
    inner: TcpListener,
}

impl TcpTransportListener {
    /// Binds `addr` (`host:port`; port 0 picks a free one — read it back
    /// via [`TcpTransportListener::socket_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(TcpTransportListener {
            inner: TcpListener::bind(addr)?,
        })
    }

    /// The bound socket address (resolved port included).
    ///
    /// # Errors
    ///
    /// Propagates the lookup failure.
    pub fn socket_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl Listener for TcpTransportListener {
    fn accept(&mut self) -> io::Result<Box<dyn Transport>> {
        let (stream, _) = self.inner.accept()?;
        Ok(Box::new(TcpTransport::from_stream(stream)?))
    }

    fn local_addr(&self) -> io::Result<String> {
        self.inner.local_addr().map(|a| a.to_string())
    }
}

// ---------------------------------------------------------------------------
// Connectors
// ---------------------------------------------------------------------------

/// How the coordinator obtains the transport for one worker slot.
///
/// `connect` is called again after a channel loss — for a process worker
/// that is a respawn, for a TCP worker a reconnect to the same daemon. A
/// slot whose connector keeps failing past the pool's respawn budget is
/// declared lost and its unfinished work re-dispatched to the surviving
/// slots.
pub trait Connector: Send + Sync {
    /// Establishes (or re-establishes) the session for pool slot `worker`.
    ///
    /// # Errors
    ///
    /// Propagates spawn/dial failures; the pool treats them like a lost
    /// channel (they consume respawn budget, they are not fatal).
    fn connect(&self, worker: usize) -> io::Result<Box<dyn Transport>>;

    /// Human-readable description for diagnostics.
    fn describe(&self) -> String;
}

/// Spawns a local worker process per session.
#[derive(Debug, Clone)]
pub struct ProcessConnector {
    /// The worker launch spec.
    pub launch: WorkerLaunch,
}

impl Connector for ProcessConnector {
    fn connect(&self, worker: usize) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(ChildTransport::spawn(&self.launch, worker)?))
    }

    fn describe(&self) -> String {
        format!("process worker ({})", self.launch.program.display())
    }
}

/// Dials a remote `campaign --serve` daemon per session.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Bound on each connection attempt.
    pub connect_timeout: Duration,
}

impl TcpConnector {
    /// A connector for `addr` with a 5-second connect timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        TcpConnector {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(5),
        }
    }

    /// Replaces the per-attempt connect timeout.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }
}

impl Connector for TcpConnector {
    fn connect(&self, _worker: usize) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(TcpTransport::connect(
            &self.addr,
            self.connect_timeout,
        )?))
    }

    fn describe(&self) -> String {
        format!("tcp worker ({})", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Assign, Hello};

    fn hello(worker_id: usize) -> Message {
        Message::Hello(Hello {
            worker_id,
            fingerprint: 0xf00d,
            spec_count: 9,
            token: "t".into(),
            threads: 2,
            build: crate::protocol::BuildStamp::local(false),
        })
    }

    #[test]
    fn tcp_roundtrips_messages_both_ways() {
        let mut listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = listener.accept().unwrap();
            let got = t.recv().unwrap();
            t.send(&got).unwrap();
            let next = t.recv().unwrap();
            t.send(&next).unwrap();
        });
        let mut client = TcpTransport::connect(&addr, Duration::from_secs(5)).unwrap();
        client.send(&hello(3)).unwrap();
        assert_eq!(client.recv().unwrap(), hello(3));
        let assign = Message::Assign(Assign {
            indices: vec![0, 4, 8],
        });
        client.send(&assign).unwrap();
        assert_eq!(client.recv().unwrap(), assign);
        server.join().unwrap();
    }

    #[test]
    fn tcp_peer_close_is_a_clean_eof() {
        let mut listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let t = listener.accept().unwrap();
            drop(t); // close immediately
        });
        let mut client = TcpTransport::connect(&addr, Duration::from_secs(5)).unwrap();
        server.join().unwrap();
        let err = client.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn tcp_read_timeout_expires_instead_of_hanging() {
        let mut listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let t = listener.accept().unwrap();
            // Hold the connection open, send nothing.
            std::thread::sleep(Duration::from_millis(400));
            drop(t);
        });
        let mut client = TcpTransport::connect(&addr, Duration::from_secs(5)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let err = client.recv().unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        server.join().unwrap();
    }

    #[test]
    fn connect_to_unbound_port_fails() {
        // Bind-then-drop guarantees the port is closed.
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        assert!(TcpTransport::connect(&addr, Duration::from_millis(500)).is_err());
        let connector = TcpConnector::new(addr);
        assert!(connector.connect(0).is_err());
        assert!(connector.describe().contains("tcp worker"));
    }
}

//! Sharded multi-process and multi-machine campaign execution.
//!
//! The sweep engine in `qismet-bench` runs a campaign's independent,
//! pre-seeded grid points across threads; this crate is the step from
//! "bounded by cores" to "bounded by cluster". It knows nothing about VQAs —
//! run payloads travel as [`serde::Value`] trees — and splits into these
//! layers:
//!
//! * [`protocol`] — the six length-framed serde-JSON messages
//!   (`Hello`/`Reject`/`Assign`/`Done`/`Checkpoint`/`Shutdown`) exchanged
//!   with workers. Specs are pure data addressed by index: both sides
//!   expand the same campaign and agree on it via a [`Fingerprint`]
//!   handshake that also carries a shared authentication token.
//! * [`transport`] — the byte-stream layer beneath the protocol: a
//!   blocking [`transport::Transport`]/[`transport::Listener`] trait pair
//!   with child-process stdio-pipe and TCP (`TCP_NODELAY`, read timeouts,
//!   graceful EOF -> worker-lost) implementations, plus the
//!   [`transport::Connector`]s the coordinator uses to (re)establish
//!   sessions.
//! * [`shard`] — deterministic partitioning of spec indices across workers
//!   and the order-preserving merge of their results.
//! * [`coordinator`] — [`coordinator::WorkerPool`], one connector per
//!   worker slot (spawned processes, remote TCP daemons, or any mix),
//!   streaming thread-count-sized `Assign` batches from a shared dispatch
//!   queue. Crashed process workers respawn, dropped TCP workers
//!   reconnect, and a slot that stays gone has its unfinished work
//!   re-dispatched to the surviving workers.
//! * [`journal`] — an append-only JSONL checkpoint keyed by (campaign
//!   fingerprint, spec index, seed), each line checksummed, so an
//!   interrupted campaign resumes instead of restarting — even past
//!   corrupted lines.
//! * [`chaos`] — deterministic fault injection: a seeded, serializable
//!   [`chaos::FaultPlan`] executed by transport wrappers, so every fault
//!   the coordinator must survive is reproducible on demand.
//!
//! On top of the one-shot pool sits the **campaign service**: a
//! long-running daemon serving many campaigns to an elastic fleet.
//!
//! * [`registry`] — the dynamic worker slot table. Workers *register* at
//!   the daemon's rendezvous address instead of being dialed; quarantine
//!   strikes follow the worker's operator-chosen *name* across sessions.
//! * [`queue`] — the persistent, priority-ordered, multi-tenant job
//!   queue: submissions and phase transitions append to a checksummed
//!   event log, each job journals checkpoints into its own file, and an
//!   interrupted daemon resumes every job on restart.
//! * [`daemon`] — [`daemon::serve`]: the accept loop that classifies
//!   connections into worker registrations and one-command client
//!   sessions (`submit`/`status`/`cancel`/`drain`), schedules batches
//!   across concurrent jobs, and settles each into its report artifact
//!   via a [`daemon::JobPlanner`].
//!
//! The merged result is **bit-identical** to a sequential in-process run —
//! whatever the worker topology: every record is produced by the same pure
//! function of the same pure spec, and the JSON layer (`serde_json` shim)
//! round-trips every finite `f64` bit-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod coordinator;
pub mod daemon;
mod dispatch;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod shard;
pub mod transport;

pub use chaos::{
    Fault, FaultKind, FaultListener, FaultPlan, FaultTransport, DROP_AFTER_ENV, EXIT_AFTER_ENV,
    MAX_SESSIONS_ENV,
};
pub use coordinator::{ClusterError, ClusterOutcome, WorkerPool};
pub use daemon::{serve, JobPlan, JobPlanner, ServiceConfig, ServiceSummary};
pub use journal::{load_journal, JournalWriter, LoadedJournal};
pub use protocol::{
    read_message, write_message, Assign, BuildStamp, CheckpointEntry, Done, DrainOk, Hello,
    JobOpen, JobReady, JobStatusInfo, Message, Outcome, Register, ServiceErr, ServiceErrKind,
    SlotStatusInfo, StatusReply, Submit, Submitted, WorkerStats,
};
pub use queue::{JobPhase, JobQueue, JobSpec, JobState, QueueError};
pub use registry::{RegisterRefusal, RegisteredWorker, WorkerRegistry};
pub use shard::{merge_indexed, shard_round_robin, MergeError};
pub use transport::{
    ChildTransport, Connector, Listener, ProcessConnector, StdioTransport, TcpConnector,
    TcpTransport, TcpTransportListener, Transport, WorkerLaunch, WORKER_ID_ENV,
};

/// Incremental FNV-1a content hash used to fingerprint campaign definitions.
///
/// Both the coordinator and every worker hash their own expansion of the
/// campaign; the [`protocol::Hello`] handshake and every
/// [`protocol::CheckpointEntry`] carry the result, so records can never be
/// attached to (or resumed into) a campaign they were not produced by.
///
/// Variable-length inputs are length-prefixed, so field concatenations
/// cannot alias (`"ab" + "c"` hashes differently from `"a" + "bc"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string.
    pub fn update_str(&mut self, s: &str) {
        self.update_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// The accumulated 64-bit hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let mut a = Fingerprint::new();
        a.update_str("campaign");
        a.update_u64(42);
        let mut b = Fingerprint::new();
        b.update_str("campaign");
        b.update_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.update_str("campaign");
        c.update_u64(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        let mut a = Fingerprint::new();
        a.update_str("ab");
        a.update_str("c");
        let mut b = Fingerprint::new();
        b.update_str("a");
        b.update_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}

//! The dynamic worker registry behind the service daemon.
//!
//! The static [`WorkerPool`](crate::coordinator::WorkerPool) owns a fixed
//! slot table sized by CLI flags; the service daemon instead grows and
//! shrinks its fleet as workers *register* at the rendezvous address. Each
//! accepted [`Register`](crate::protocol::Register) mints a fresh,
//! monotonically-increasing slot id — sessions are disposable, so a
//! reconnecting worker gets a new slot, never a recycled one.
//!
//! The pool's quarantine machinery generalizes to this elastic world by
//! accruing channel strikes to the worker's *name* rather than its slot:
//! a crashy worker cannot launder its record by reconnecting (the strikes
//! follow the name), and once the name crosses the quarantine threshold
//! further registrations under it are refused with a typed
//! [`ServiceErrKind::Quarantined`](crate::protocol::ServiceErrKind). A
//! fresh name starts with a clean record, which is exactly the escape
//! hatch an operator wants after replacing bad hardware.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One registered worker slot's bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisteredWorker {
    /// Operator-chosen worker name (the quarantine identity).
    pub name: String,
    /// Executor threads the worker advertised (sizes its batches).
    pub threads: usize,
    /// Whether the session is still connected.
    pub active: bool,
    /// Results this slot has delivered.
    pub done: u64,
    /// The job the slot is currently serving, if any.
    pub job: Option<u64>,
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterRefusal {
    /// The name accumulated too many lifetime strikes; carries the count.
    Quarantined(usize),
}

struct RegistryState {
    next_slot: u64,
    slots: BTreeMap<u64, RegisteredWorker>,
    strikes: BTreeMap<String, usize>,
}

/// Thread-safe dynamic slot table with per-name lifetime strikes.
pub struct WorkerRegistry {
    quarantine_after: Option<usize>,
    state: Mutex<RegistryState>,
}

impl WorkerRegistry {
    /// An empty registry. `quarantine_after` bounds a *name's* lifetime
    /// channel strikes (`None` = never quarantine).
    pub fn new(quarantine_after: Option<usize>) -> Self {
        WorkerRegistry {
            quarantine_after,
            state: Mutex::new(RegistryState {
                next_slot: 0,
                slots: BTreeMap::new(),
                strikes: BTreeMap::new(),
            }),
        }
    }

    /// Admits a worker, minting a fresh slot id.
    ///
    /// # Errors
    ///
    /// Refuses names that already crossed the quarantine threshold.
    pub fn register(&self, name: &str, threads: usize) -> Result<u64, RegisterRefusal> {
        let mut state = self.state.lock().expect("registry mutex poisoned");
        if let Some(limit) = self.quarantine_after {
            let strikes = state.strikes.get(name).copied().unwrap_or(0);
            if strikes >= limit {
                return Err(RegisterRefusal::Quarantined(strikes));
            }
        }
        let slot = state.next_slot;
        state.next_slot += 1;
        state.slots.insert(
            slot,
            RegisteredWorker {
                name: name.to_string(),
                threads: threads.max(1),
                active: true,
                done: 0,
                job: None,
            },
        );
        Ok(slot)
    }

    /// Retires a slot. An involuntary retirement (channel loss, protocol
    /// violation) charges one strike to the worker's name; a voluntary one
    /// ([`Deregister`](crate::protocol::Message::Deregister), drain
    /// shutdown) does not. Returns the name's strike count afterwards.
    pub fn retire(&self, slot: u64, voluntary: bool) -> usize {
        let mut state = self.state.lock().expect("registry mutex poisoned");
        let name = match state.slots.get_mut(&slot) {
            Some(worker) => {
                worker.active = false;
                worker.job = None;
                worker.name.clone()
            }
            None => return 0,
        };
        if voluntary {
            state.strikes.get(&name).copied().unwrap_or(0)
        } else {
            let strikes = state.strikes.entry(name).or_insert(0);
            *strikes += 1;
            *strikes
        }
    }

    /// Records which job a slot is serving (shown in status/fleet views).
    pub fn set_job(&self, slot: u64, job: Option<u64>) {
        let mut state = self.state.lock().expect("registry mutex poisoned");
        if let Some(worker) = state.slots.get_mut(&slot) {
            worker.job = job;
        }
    }

    /// Bumps a slot's delivered-result tally.
    pub fn record_done(&self, slot: u64) {
        let mut state = self.state.lock().expect("registry mutex poisoned");
        if let Some(worker) = state.slots.get_mut(&slot) {
            worker.done += 1;
        }
    }

    /// Whether a name is currently quarantined.
    pub fn is_quarantined(&self, name: &str) -> bool {
        let state = self.state.lock().expect("registry mutex poisoned");
        match self.quarantine_after {
            Some(limit) => state.strikes.get(name).copied().unwrap_or(0) >= limit,
            None => false,
        }
    }

    /// Currently-connected slots.
    pub fn active(&self) -> usize {
        let state = self.state.lock().expect("registry mutex poisoned");
        state.slots.values().filter(|w| w.active).count()
    }

    /// Every slot ever registered with its name's strike/quarantine state,
    /// in slot order: `(slot, worker, name_strikes, quarantined)`.
    pub fn snapshot(&self) -> Vec<(u64, RegisteredWorker, usize, bool)> {
        let state = self.state.lock().expect("registry mutex poisoned");
        state
            .slots
            .iter()
            .map(|(&slot, worker)| {
                let strikes = state.strikes.get(&worker.name).copied().unwrap_or(0);
                let quarantined = matches!(self.quarantine_after, Some(limit) if strikes >= limit);
                (slot, worker.clone(), strikes, quarantined)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_monotonic_and_never_recycled() {
        let r = WorkerRegistry::new(None);
        let a = r.register("a", 2).unwrap();
        let b = r.register("b", 2).unwrap();
        r.retire(a, true);
        let a2 = r.register("a", 2).unwrap();
        assert!(a < b && b < a2);
        assert_eq!(r.active(), 2);
    }

    #[test]
    fn strikes_follow_the_name_and_quarantine_refuses_registration() {
        let r = WorkerRegistry::new(Some(2));
        let s1 = r.register("flaky", 1).unwrap();
        assert_eq!(r.retire(s1, false), 1);
        // Reconnecting does not launder the record: a new slot, same name.
        let s2 = r.register("flaky", 1).unwrap();
        assert_eq!(r.retire(s2, false), 2);
        assert!(r.is_quarantined("flaky"));
        assert_eq!(r.register("flaky", 1), Err(RegisterRefusal::Quarantined(2)));
        // A fresh name starts clean.
        assert!(r.register("fresh", 1).is_ok());
    }

    #[test]
    fn voluntary_retirement_is_not_a_strike() {
        let r = WorkerRegistry::new(Some(1));
        for _ in 0..3 {
            let s = r.register("polite", 1).unwrap();
            assert_eq!(r.retire(s, true), 0);
        }
        assert!(!r.is_quarantined("polite"));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap
            .iter()
            .all(|(_, w, strikes, q)| !w.active && *strikes == 0 && !q));
    }
}

//! The worker-pool coordinator.
//!
//! [`WorkerPool::run`] drives one [`crate::transport::Connector`] per
//! worker slot — local process workers, remote TCP workers, or any mix —
//! through the same lifecycle: connect, exchange the mutual
//! [`Hello`](crate::protocol::Hello) handshake (campaign fingerprint, spec
//! count, shared token), then stream [`Assign`] batches sized to the
//! worker's advertised thread count from a shared dispatch queue. Each
//! [`Done`] is surfaced to the caller's `on_done` sink (where the journal
//! append and any streaming writers live) before being merged into
//! index-addressed slots.
//!
//! ## Fault model
//!
//! * **Channel loss** (crash, OOM-kill, network drop, corrupted frame): the
//!   un-acknowledged remainder of the batch returns to the shared queue as
//!   *suspects* — re-dispatched one index at a time so any further crash is
//!   precisely attributable — and the session is re-established through the
//!   connector (respawn for processes, reconnect for TCP) behind an
//!   exponential backoff. Reconnects consume the slot's respawn budget,
//!   which measures *consecutive* failures: a session that delivered at
//!   least one result refills it.
//! * **Hang** (worker alive, frames stopped): with an assign deadline
//!   configured ([`WorkerPool::with_assign_timeout`]), silence past the
//!   deadline tears the session down exactly like a channel loss. Workers
//!   that are merely *slow* stay alive by sending
//!   [`Ping`](crate::protocol::Message::Ping) heartbeats while they
//!   compute; the coordinator answers each with a `Pong` and resets the
//!   deadline.
//! * **Slot exhaustion**: a slot whose budget runs out is declared lost;
//!   with [`WorkerPool::with_quarantine_after`], a slot that keeps striking
//!   (even non-consecutively) is quarantined. Either way its unfinished
//!   work is **re-dispatched to the surviving workers**; the pool only
//!   fails with [`ClusterError::WorkerLost`] if work remains when every
//!   slot is gone.
//! * **Poison specs**: a crash attributed to one specific spec twice
//!   (tunable via [`WorkerPool::with_poison_after`]) stops being retried —
//!   the spec is isolated and reported as a typed
//!   [`ClusterError::PoisonedSpecs`] while every other spec completes and
//!   journals as usual. Attributed crashes do not consume the slot's
//!   respawn budget: the spec is at fault, not the worker.
//! * **Stragglers**: with [`WorkerPool::with_speculative`], an idle worker
//!   duplicates in-flight assignments instead of idling at the tail of the
//!   campaign; the first result per index wins and duplicates are
//!   discarded, so byte-identity is unaffected.
//! * **Deterministic run failure** ([`Outcome::Failed`], e.g. a panicking
//!   spec): retrying would fail the same way, so the pool shuts down and
//!   returns [`ClusterError::RunFailed`].
//!
//! Whatever the topology or fault sequence, the merged records are
//! **byte-identical** to a sequential in-process run: results are keyed by
//! spec index and every record is a pure function of its pure spec.

use crate::dispatch::{Batch, Dispatch};
use crate::protocol::{Assign, BuildStamp, CheckpointEntry, Done, Hello, Message, Outcome};
use crate::transport::{Connector, Transport};
use qismet_telemetry::{counter, event, fleet_update};
use serde::Value;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Everything that can go wrong while coordinating a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The worker session could not be established at all.
    Spawn(String),
    /// The pool was configured with nonsense (zero timeouts, zero
    /// thresholds). Caught before any session starts.
    Config(String),
    /// A worker's `Hello` fingerprint disagrees with the coordinator's —
    /// the two sides expanded different campaigns (wrong flags, wrong
    /// binary). Never retried.
    FingerprintMismatch {
        /// Worker pool index.
        worker: usize,
        /// The coordinator's fingerprint.
        ours: u64,
        /// The worker's fingerprint.
        theirs: u64,
    },
    /// A worker's `Hello` spec count disagrees with the coordinator's.
    SpecCountMismatch {
        /// Worker pool index.
        worker: usize,
        /// The coordinator's spec count.
        ours: usize,
        /// The worker's spec count.
        theirs: usize,
    },
    /// The worker refused the handshake (shared-token mismatch). Never
    /// retried.
    Rejected {
        /// Worker pool index.
        worker: usize,
        /// The worker's stated reason.
        reason: String,
    },
    /// A worker kept dying after exhausting its respawn budget and no
    /// surviving worker could absorb its unfinished share.
    WorkerLost {
        /// Worker pool index.
        worker: usize,
        /// Respawns consumed before giving up.
        respawns: usize,
        /// The final channel failure.
        detail: String,
    },
    /// A worker accumulated too many lifetime channel strikes (see
    /// [`WorkerPool::with_quarantine_after`]) and was removed from the
    /// pool; its unfinished work was re-dispatched.
    WorkerQuarantined {
        /// Worker pool index.
        worker: usize,
        /// Lifetime strikes accumulated.
        strikes: usize,
        /// The final channel failure.
        detail: String,
    },
    /// One or more specs repeatedly killed the workers assigned to them
    /// and were isolated instead of burning the respawn budget. Every
    /// *other* spec completed and reached the `on_done` sink (so a
    /// journaling caller can resume after fixing the cause).
    PoisonedSpecs {
        /// The isolated spec indices, sorted.
        indices: Vec<usize>,
        /// How many other specs completed.
        completed: usize,
    },
    /// A worker reported a failed run (e.g. the spec panicked). The failure
    /// is deterministic, so it is not retried.
    RunFailed {
        /// The failing spec index.
        index: usize,
        /// The worker's failure description.
        detail: String,
    },
    /// A live worker violated the protocol (wrong index, unexpected
    /// message kind).
    Protocol {
        /// Worker pool index.
        worker: usize,
        /// What went wrong.
        detail: String,
    },
    /// Journal or streaming I/O failed on the coordinator side.
    Io(String),
    /// The collected records do not cover the dispatched index set.
    Merge(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Spawn(detail) => write!(f, "failed to start worker: {detail}"),
            ClusterError::Config(detail) => write!(f, "invalid pool configuration: {detail}"),
            ClusterError::FingerprintMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker {worker} expanded a different campaign \
                 (fingerprint {theirs:#018x}, coordinator has {ours:#018x})"
            ),
            ClusterError::SpecCountMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker {worker} expanded {theirs} specs, coordinator has {ours}"
            ),
            ClusterError::Rejected { worker, reason } => {
                write!(f, "worker {worker} refused the handshake: {reason}")
            }
            ClusterError::WorkerLost {
                worker,
                respawns,
                detail,
            } => write!(
                f,
                "worker {worker} lost after {respawns} respawn(s): {detail}"
            ),
            ClusterError::WorkerQuarantined {
                worker,
                strikes,
                detail,
            } => write!(
                f,
                "worker {worker} quarantined after {strikes} channel strike(s): {detail}"
            ),
            ClusterError::PoisonedSpecs { indices, completed } => write!(
                f,
                "{} spec(s) {:?} repeatedly killed their workers and were poisoned/isolated \
                 ({completed} other spec(s) completed; resume after fixing the cause)",
                indices.len(),
                indices
            ),
            ClusterError::RunFailed { index, detail } => {
                write!(f, "spec {index} failed: {detail}")
            }
            ClusterError::Protocol { worker, detail } => {
                write!(f, "protocol violation from worker {worker}: {detail}")
            }
            ClusterError::Io(detail) => write!(f, "cluster I/O error: {detail}"),
            ClusterError::Merge(detail) => write!(f, "record merge failed: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The successful result of a pool run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// One `(index, record)` pair per dispatched spec, sorted by index.
    pub records: Vec<(usize, Value)>,
    /// Worker respawns/reconnects that occurred along the way.
    pub respawns: usize,
    /// Worker slots that were declared lost (their work was re-dispatched
    /// to the survivors).
    pub lost_workers: usize,
    /// Worker slots quarantined for accumulating channel strikes (their
    /// work was re-dispatched to the survivors).
    pub quarantined_workers: usize,
}

/// Default bound on the handshake round-trip (a daemon that accepts but
/// never answers must not hang the pool). Override via
/// [`WorkerPool::with_handshake_timeout`].
pub const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default precise-strike count after which a spec is poisoned. Override
/// via [`WorkerPool::with_poison_after`].
pub const DEFAULT_POISON_AFTER: usize = 2;

/// Base pause between a channel loss and the reconnect attempt; doubles
/// per consecutive attempt (capped by [`RECONNECT_DELAY_MAX`]) so a daemon
/// that is briefly busy — e.g. still computing a stale batch from the
/// dropped session — is not hammered into a spuriously exhausted respawn
/// budget. Long-running specs may still need a raised budget
/// (`--max-respawns`) to ride out a reconnect window.
const RECONNECT_DELAY: Duration = Duration::from_millis(50);

/// Ceiling for the exponential reconnect backoff.
const RECONNECT_DELAY_MAX: Duration = Duration::from_secs(5);

/// A pool of workers — one [`Connector`] per slot — executing spec indices.
///
/// This is the generalization of the original process pool over the
/// [`Transport`] seam: a pool of `ProcessConnector`s reproduces the old
/// spawn-N-children behavior, while arbitrary connector lists mix local
/// and remote workers in one pool.
pub struct WorkerPool {
    connectors: Vec<Box<dyn Connector>>,
    max_respawns: usize,
    token: String,
    assign_timeout: Option<Duration>,
    handshake_timeout: Duration,
    speculative: bool,
    quarantine_after: Option<usize>,
    poison_after: usize,
    build: BuildStamp,
}

impl WorkerPool {
    /// A pool with one worker slot per connector (at least one required).
    ///
    /// # Panics
    ///
    /// Panics if `connectors` is empty.
    pub fn new(connectors: Vec<Box<dyn Connector>>) -> Self {
        assert!(
            !connectors.is_empty(),
            "worker pool needs at least one connector"
        );
        WorkerPool {
            connectors,
            max_respawns: 2,
            token: String::new(),
            assign_timeout: None,
            handshake_timeout: DEFAULT_HANDSHAKE_TIMEOUT,
            speculative: false,
            quarantine_after: None,
            poison_after: DEFAULT_POISON_AFTER,
            build: BuildStamp::local(false),
        }
    }

    /// Overrides the per-worker budget of *consecutive* session failures
    /// (0 = a slot is lost on its first channel failure). A session that
    /// delivered at least one result refills the budget.
    #[must_use]
    pub fn with_max_respawns(mut self, max_respawns: usize) -> Self {
        self.max_respawns = max_respawns;
        self
    }

    /// Sets the shared authentication token carried in the coordinator's
    /// `Hello` (workers reject sessions whose token differs from theirs).
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = token.into();
        self
    }

    /// Bounds how long a session may go silent mid-batch before it is torn
    /// down and its shard re-dispatched (`None` = wait forever, the
    /// legacy behavior). Workers heartbeat while computing, so this
    /// detects *hung* workers, not slow specs — set it well above the
    /// worker heartbeat interval.
    #[must_use]
    pub fn with_assign_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.assign_timeout = timeout;
        self
    }

    /// Replaces the default handshake round-trip bound
    /// ([`DEFAULT_HANDSHAKE_TIMEOUT`]).
    #[must_use]
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Enables speculative tail execution: an idle worker duplicates
    /// in-flight assignments instead of idling; the first result per index
    /// wins and duplicates are discarded (byte-identity is unaffected —
    /// records are pure functions of their spec).
    #[must_use]
    pub fn with_speculative(mut self, speculative: bool) -> Self {
        self.speculative = speculative;
        self
    }

    /// Quarantines a slot after this many *lifetime* channel strikes
    /// (`None` = never). Unlike the respawn budget, strikes do not reset
    /// on productive sessions — this catches a flaky worker that limps
    /// along failing every few batches.
    #[must_use]
    pub fn with_quarantine_after(mut self, strikes: Option<usize>) -> Self {
        self.quarantine_after = strikes;
        self
    }

    /// Sets how many crashes must be precisely attributed to one spec
    /// before it is poisoned (isolated and reported instead of retried).
    #[must_use]
    pub fn with_poison_after(mut self, strikes: usize) -> Self {
        self.poison_after = strikes;
        self
    }

    /// Replaces the build stamp announced in the coordinator's `Hello`.
    /// The default stamp carries this crate's provenance with
    /// `parallel: false`; the bench harness passes its own so the
    /// advertised feature flag matches the binary actually running.
    #[must_use]
    pub fn with_build(mut self, build: BuildStamp) -> Self {
        self.build = build;
        self
    }

    /// Total worker slots in this pool.
    pub fn workers(&self) -> usize {
        self.connectors.len()
    }

    /// The worker count this pool will actually start for `n` pending specs.
    pub fn effective_workers(&self, n: usize) -> usize {
        self.connectors.len().min(n.max(1))
    }

    /// Rejects zero/nonsense durations and thresholds before any session
    /// starts.
    fn validate(&self) -> Result<(), ClusterError> {
        if self.handshake_timeout.is_zero() {
            return Err(ClusterError::Config(
                "handshake timeout must be positive".into(),
            ));
        }
        if matches!(self.assign_timeout, Some(t) if t.is_zero()) {
            return Err(ClusterError::Config(
                "assign timeout must be positive (omit it to wait forever)".into(),
            ));
        }
        if self.poison_after == 0 {
            return Err(ClusterError::Config(
                "poison-after threshold must be at least 1".into(),
            ));
        }
        if self.quarantine_after == Some(0) {
            return Err(ClusterError::Config(
                "quarantine-after threshold must be at least 1 (omit it to disable)".into(),
            ));
        }
        Ok(())
    }

    /// Dispatches `pending` spec indices across the pool and collects the
    /// records. `fingerprint`/`total` describe the campaign both sides
    /// expanded; `on_done` observes every completed run (in completion
    /// order, across workers) before the merge — the place to append
    /// checkpoints or stream records, and (via the mutable entry) to strip
    /// payload the coordinator should not keep resident. A sink error is
    /// fatal: the pool aborts rather than silently continuing without
    /// durability.
    ///
    /// # Errors
    ///
    /// Returns the first fatal [`ClusterError`] (by worker index) if any
    /// worker or the sink fails fatally; the remaining workers are aborted
    /// at their next assignment boundary instead of draining the queue.
    /// Completed work was already visible through `on_done`, so a
    /// journaling caller can resume. A non-fatal worker loss only surfaces
    /// as [`ClusterError::WorkerLost`] when no surviving worker could
    /// finish the queue; poisoned specs surface as
    /// [`ClusterError::PoisonedSpecs`] after everything else completed.
    pub fn run<F>(
        &self,
        fingerprint: u64,
        total: usize,
        pending: &[usize],
        on_done: F,
    ) -> Result<ClusterOutcome, ClusterError>
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        self.validate()?;
        if pending.is_empty() {
            return Ok(ClusterOutcome {
                records: Vec::new(),
                respawns: 0,
                lost_workers: 0,
                quarantined_workers: 0,
            });
        }
        let workers = self.effective_workers(pending.len());
        let dispatch = Dispatch::new(pending, self.speculative, self.poison_after);
        let results: Mutex<Vec<(usize, Value)>> = Mutex::new(Vec::with_capacity(pending.len()));
        let sink = Mutex::new(on_done);
        let respawns = AtomicUsize::new(0);

        let ends: Vec<WorkerEnd> = std::thread::scope(|scope| {
            let handles: Vec<_> = self.connectors[..workers]
                .iter()
                .enumerate()
                .map(|(worker, connector)| {
                    let dispatch = &dispatch;
                    let results = &results;
                    let sink = &sink;
                    let respawns = &respawns;
                    scope.spawn(move || {
                        let end = self.drive_worker(
                            worker,
                            connector.as_ref(),
                            fingerprint,
                            total,
                            dispatch,
                            results,
                            sink,
                            respawns,
                        );
                        if matches!(end, WorkerEnd::Fatal(_)) {
                            // Other workers stop at their next assignment
                            // boundary instead of draining a queue whose
                            // merged report will be discarded.
                            dispatch.abort();
                        }
                        if matches!(end, WorkerEnd::Lost(_) | WorkerEnd::Quarantined(_)) {
                            dispatch.worker_gone();
                        }
                        end
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("coordinator thread panicked"))
                .collect()
        });

        let mut lost_workers = 0usize;
        let mut quarantined_workers = 0usize;
        let mut first_lost: Option<ClusterError> = None;
        for end in ends {
            match end {
                WorkerEnd::Completed => {}
                WorkerEnd::Lost(e) => {
                    lost_workers += 1;
                    if first_lost.is_none() {
                        first_lost = Some(e);
                    }
                }
                WorkerEnd::Quarantined(e) => {
                    quarantined_workers += 1;
                    if first_lost.is_none() {
                        first_lost = Some(e);
                    }
                }
                // Fatal errors propagate in worker-index order (`ends` is
                // ordered by slot).
                WorkerEnd::Fatal(e) => return Err(e),
            }
        }

        let collected = results.into_inner().expect("results mutex poisoned");
        let poisoned = dispatch.poisoned_indices();
        if collected.len() + poisoned.len() != pending.len() {
            // Work remains: every slot that could have absorbed it is gone.
            return Err(first_lost.unwrap_or_else(|| {
                ClusterError::Merge(format!(
                    "collected {} of {} records with no worker failure",
                    collected.len(),
                    pending.len()
                ))
            }));
        }
        if !poisoned.is_empty() {
            // Everything else completed (and reached the sink); the
            // poisoned remainder is a typed report, not a mystery.
            return Err(ClusterError::PoisonedSpecs {
                indices: poisoned,
                completed: collected.len(),
            });
        }

        let mut expected = pending.to_vec();
        expected.sort_unstable();
        let merged = crate::shard::merge_indexed(&expected, collected)
            .map_err(|e| ClusterError::Merge(e.to_string()))?;
        Ok(ClusterOutcome {
            records: expected.into_iter().zip(merged).collect(),
            respawns: respawns.load(Ordering::Relaxed),
            lost_workers,
            quarantined_workers,
        })
    }

    /// Drives one worker slot: session establishment, handshake, batched
    /// assignment loop, and respawn/reconnect on channel loss.
    #[allow(clippy::too_many_arguments)]
    fn drive_worker<F>(
        &self,
        worker: usize,
        connector: &dyn Connector,
        fingerprint: u64,
        total: usize,
        dispatch: &Dispatch,
        results: &Mutex<Vec<(usize, Value)>>,
        sink: &Mutex<F>,
        respawns: &AtomicUsize,
    ) -> WorkerEnd
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        let mut respawns_left = self.max_respawns;
        let mut strikes = 0usize;
        let mut attempts = 0usize;
        loop {
            if dispatch.is_aborted() || dispatch.is_finished() {
                // Nothing left to do (or another worker failed fatally):
                // do not even establish a session.
                return WorkerEnd::Completed;
            }
            if attempts > 0 {
                let backoff = RECONNECT_DELAY
                    .saturating_mul(1u32 << (attempts - 1).min(16) as u32)
                    .min(RECONNECT_DELAY_MAX);
                std::thread::sleep(backoff);
            }
            attempts += 1;
            let loss = match connector.connect(worker) {
                Ok(mut transport) => {
                    match self.serve_session(
                        worker,
                        transport.as_mut(),
                        fingerprint,
                        total,
                        dispatch,
                        results,
                        sink,
                    ) {
                        Ok(()) => {
                            let _ = transport.send(&Message::Shutdown);
                            return WorkerEnd::Completed;
                        }
                        Err(SessionEnd::Fatal(e)) => return WorkerEnd::Fatal(e),
                        Err(SessionEnd::ChannelLost(loss)) => loss,
                    }
                }
                Err(e) => SessionLoss {
                    detail: format!("{} unavailable: {e}", connector.describe()),
                    productive: false,
                    spec_blamed: false,
                },
            };
            if loss.productive {
                // The budget measures *consecutive* failures: results
                // flowed this session, so the slot earned a fresh budget
                // (and a fresh backoff ramp).
                respawns_left = self.max_respawns;
                attempts = 0;
            }
            strikes += 1;
            fleet_update(worker as u64, |s| {
                s.strikes += 1;
                s.last_error = Some(loss.detail.clone());
            });
            if let Some(limit) = self.quarantine_after {
                if strikes >= limit {
                    // The slot's unfinished work is already back in the
                    // shared queue for the surviving workers.
                    fleet_update(worker as u64, |s| s.quarantined = true);
                    event(
                        "quarantine",
                        format!("slot {worker} after {strikes} strikes: {}", loss.detail),
                    );
                    counter!("cluster.workers_quarantined").inc();
                    return WorkerEnd::Quarantined(ClusterError::WorkerQuarantined {
                        worker,
                        strikes,
                        detail: loss.detail,
                    });
                }
            }
            if loss.spec_blamed {
                // The crash was attributed to a poisonous spec, not this
                // worker: reconnect without charging the respawn budget.
                continue;
            }
            if respawns_left == 0 {
                // The slot is lost; its unfinished work is already back in
                // the shared queue for the surviving workers.
                event(
                    "worker_lost",
                    format!(
                        "slot {worker} exhausted its respawn budget: {}",
                        loss.detail
                    ),
                );
                counter!("cluster.workers_lost").inc();
                return WorkerEnd::Lost(ClusterError::WorkerLost {
                    worker,
                    respawns: self.max_respawns,
                    detail: loss.detail,
                });
            }
            respawns_left -= 1;
            respawns.fetch_add(1, Ordering::Relaxed);
            fleet_update(worker as u64, |s| s.respawns += 1);
            event("respawn", format!("slot {worker}: {}", loss.detail));
            counter!("cluster.respawns").inc();
        }
    }

    /// Handshakes one fresh session and streams it batches until the queue
    /// drains, the channel dies, or the pool aborts.
    #[allow(clippy::too_many_arguments)]
    fn serve_session<F>(
        &self,
        worker: usize,
        transport: &mut dyn Transport,
        fingerprint: u64,
        total: usize,
        dispatch: &Dispatch,
        results: &Mutex<Vec<(usize, Value)>>,
        sink: &Mutex<F>,
    ) -> Result<(), SessionEnd>
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        let threads = self.handshake(worker, transport, fingerprint, total)?;
        let mut accepted = 0usize;
        loop {
            if dispatch.is_aborted() {
                // Another worker failed; stop at the assignment boundary.
                let _ = transport.send(&Message::Shutdown);
                return Ok(());
            }
            let Some(batch) = dispatch.pop_batch(threads) else {
                return Ok(());
            };
            self.serve_batch(
                worker,
                transport,
                fingerprint,
                &batch,
                dispatch,
                results,
                sink,
                &mut accepted,
            )?;
        }
    }

    /// Runs the mutual handshake, returning the worker's advertised thread
    /// count (the batch size for this session). Leaves the session's
    /// assign deadline installed as the read timeout.
    fn handshake(
        &self,
        worker: usize,
        transport: &mut dyn Transport,
        fingerprint: u64,
        total: usize,
    ) -> Result<usize, SessionEnd> {
        let _ = transport.set_read_timeout(Some(self.handshake_timeout));
        let ours = Message::Hello(Hello {
            worker_id: worker,
            fingerprint,
            spec_count: total,
            token: self.token.clone(),
            threads: 0,
            build: self.build.clone(),
        });
        if let Err(e) = transport.send(&ours) {
            return Err(SessionEnd::lost(format!("handshake send failed: {e}")));
        }
        let reply = match transport.recv() {
            Ok(reply) => reply,
            Err(e) => return Err(SessionEnd::lost(format!("handshake failed: {e}"))),
        };
        let _ = transport.set_read_timeout(self.assign_timeout);
        match reply {
            Message::Hello(hello) => {
                if hello.token != self.token {
                    return Err(SessionEnd::Fatal(ClusterError::Rejected {
                        worker,
                        reason: "worker token differs from the coordinator's".into(),
                    }));
                }
                if hello.fingerprint != fingerprint {
                    return Err(SessionEnd::Fatal(ClusterError::FingerprintMismatch {
                        worker,
                        ours: fingerprint,
                        theirs: hello.fingerprint,
                    }));
                }
                if hello.spec_count != total {
                    return Err(SessionEnd::Fatal(ClusterError::SpecCountMismatch {
                        worker,
                        ours: total,
                        theirs: hello.spec_count,
                    }));
                }
                if hello.build != self.build {
                    // Advisory only: fingerprint/token checks gate the
                    // session, but a mixed-build fleet is worth a record.
                    event(
                        "build_mismatch",
                        format!(
                            "slot {worker}: worker build {:?} differs from coordinator {:?}",
                            hello.build, self.build
                        ),
                    );
                }
                Ok(hello.threads.max(1))
            }
            Message::Reject(reason) => {
                Err(SessionEnd::Fatal(ClusterError::Rejected { worker, reason }))
            }
            other => Err(SessionEnd::Fatal(ClusterError::Protocol {
                worker,
                detail: format!("expected Hello, got {other:?}"),
            })),
        }
    }

    /// Assigns one batch and collects its `Done`s; on channel loss (or a
    /// deadline expiry with no heartbeat) the unacknowledged remainder is
    /// returned to the queue with crash blame recorded.
    #[allow(clippy::too_many_arguments)]
    fn serve_batch<F>(
        &self,
        worker: usize,
        transport: &mut dyn Transport,
        fingerprint: u64,
        batch: &Batch,
        dispatch: &Dispatch,
        results: &Mutex<Vec<(usize, Value)>>,
        sink: &Mutex<F>,
        accepted: &mut usize,
    ) -> Result<(), SessionEnd>
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        let mut outstanding: VecDeque<usize> = batch.indices.iter().copied().collect();
        let lose = |dispatch: &Dispatch,
                    outstanding: &VecDeque<usize>,
                    accepted: usize,
                    detail: String| {
            let blamed = dispatch.settle_loss(outstanding, batch.suspect);
            SessionEnd::ChannelLost(SessionLoss {
                detail,
                productive: accepted > 0,
                spec_blamed: blamed,
            })
        };
        let assign = Message::Assign(Assign {
            indices: batch.indices.clone(),
        });
        if let Err(e) = transport.send(&assign) {
            let indices = &batch.indices;
            return Err(lose(
                dispatch,
                &outstanding,
                *accepted,
                format!("assigning batch {indices:?} failed: {e}"),
            ));
        }
        fleet_update(worker as u64, |s| s.assigned += batch.indices.len() as u64);
        counter!("cluster.specs_assigned").add(batch.indices.len() as u64);
        while !outstanding.is_empty() {
            let done = match transport.recv() {
                Ok(Message::Done(done)) => done,
                Ok(Message::Ping) => {
                    // The worker is alive, just still computing: answer and
                    // keep waiting (the read deadline restarts per frame).
                    fleet_update(worker as u64, |s| s.pings += 1);
                    counter!("cluster.pings").inc();
                    if let Err(e) = transport.send(&Message::Pong) {
                        return Err(lose(
                            dispatch,
                            &outstanding,
                            *accepted,
                            format!("heartbeat reply failed: {e}"),
                        ));
                    }
                    continue;
                }
                Ok(other) => {
                    dispatch.settle_loss(&outstanding, false);
                    return Err(SessionEnd::Fatal(ClusterError::Protocol {
                        worker,
                        detail: format!("expected Done, got {other:?}"),
                    }));
                }
                Err(e) => {
                    return Err(lose(
                        dispatch,
                        &outstanding,
                        *accepted,
                        format!("reading result of batch {outstanding:?} failed: {e}"),
                    ));
                }
            };
            let Done {
                index,
                seed,
                outcome,
                stats,
            } = done;
            if let Some(stats) = &stats {
                // Worker-side deltas: plain addition aggregates correctly
                // across respawns and reused daemon sessions.
                fleet_update(worker as u64, |s| {
                    s.worker_specs_done += stats.specs_done;
                    s.worker_eval_ns += stats.eval_ns;
                    s.worker_plan_hits += stats.plan_hits;
                    s.worker_plan_misses += stats.plan_misses;
                    s.rtt_count += stats.rtt_count;
                    s.rtt_ns_sum += stats.rtt_ns_sum;
                    s.rtt_ns_max = s.rtt_ns_max.max(stats.rtt_ns_max);
                });
            }
            let Some(pos) = outstanding.iter().position(|&i| i == index) else {
                dispatch.settle_loss(&outstanding, false);
                return Err(SessionEnd::Fatal(ClusterError::Protocol {
                    worker,
                    detail: format!("got result for unassigned spec {index}"),
                }));
            };
            match outcome {
                Outcome::Record(record) => {
                    *accepted += 1;
                    outstanding.remove(pos);
                    if !dispatch.complete(index) {
                        // A speculative twin finished first; this duplicate
                        // is byte-identical by construction, so drop it
                        // without re-journaling.
                        fleet_update(worker as u64, |s| s.duplicates_lost += 1);
                        counter!("cluster.speculative.duplicates_lost").inc();
                        continue;
                    }
                    fleet_update(worker as u64, |s| {
                        s.done += 1;
                        if batch.speculative {
                            s.speculative_won += 1;
                        }
                    });
                    counter!("cluster.specs_done").inc();
                    if batch.speculative {
                        counter!("cluster.speculative.won").inc();
                    }
                    let mut entry = CheckpointEntry {
                        fingerprint,
                        index,
                        seed,
                        record,
                    };
                    let sunk = {
                        let mut sink = sink.lock().expect("sink mutex poisoned");
                        sink(&mut entry)
                    };
                    if let Err(detail) = sunk {
                        // Durability lost (journal/stream write failed):
                        // continuing would complete runs that can never be
                        // resumed, so fail fast instead. The run was
                        // journaled as completed in dispatch but the pool
                        // aborts, so no further work depends on it.
                        dispatch.settle_loss(&outstanding, false);
                        return Err(SessionEnd::Fatal(ClusterError::Io(detail)));
                    }
                    results
                        .lock()
                        .expect("results mutex poisoned")
                        .push((index, entry.record));
                }
                Outcome::Failed(detail) => {
                    outstanding.remove(pos);
                    dispatch.complete(index);
                    dispatch.settle_loss(&outstanding, false);
                    return Err(SessionEnd::Fatal(ClusterError::RunFailed { index, detail }));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field(
                "connectors",
                &self
                    .connectors
                    .iter()
                    .map(|c| c.describe())
                    .collect::<Vec<_>>(),
            )
            .field("max_respawns", &self.max_respawns)
            .field("assign_timeout", &self.assign_timeout)
            .field("speculative", &self.speculative)
            .field("quarantine_after", &self.quarantine_after)
            .finish_non_exhaustive()
    }
}

/// Why one worker slot's thread stopped.
enum WorkerEnd {
    /// Queue drained (from this worker's perspective).
    Completed,
    /// The slot exhausted its respawn budget; its work was re-queued.
    Lost(ClusterError),
    /// The slot hit its lifetime strike cap; its work was re-queued.
    Quarantined(ClusterError),
    /// Unrecoverable: propagate to the caller.
    Fatal(ClusterError),
}

/// What a lost session reports back to [`WorkerPool::drive_worker`].
struct SessionLoss {
    /// Human-readable failure description.
    detail: String,
    /// Whether the session delivered at least one result before dying
    /// (refills the respawn budget — the failure streak restarted).
    productive: bool,
    /// Whether the crash was attributed to a specific spec (does not
    /// charge the slot's respawn budget).
    spec_blamed: bool,
}

/// Why a worker session stopped serving.
enum SessionEnd {
    /// Unrecoverable: propagate to the caller.
    Fatal(ClusterError),
    /// The channel died (worker crashed / hung past the deadline /
    /// network drop); the slot's unfinished work was re-queued and the
    /// session can be re-established.
    ChannelLost(SessionLoss),
}

impl SessionEnd {
    fn lost(detail: String) -> Self {
        SessionEnd::ChannelLost(SessionLoss {
            detail,
            productive: false,
            spec_blamed: false,
        })
    }
}

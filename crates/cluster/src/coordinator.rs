//! The process-pool coordinator.
//!
//! [`ProcessPool::run`] spawns `workers` copies of a worker command (in
//! practice: the current binary re-invoked in its hidden `--worker` mode),
//! verifies each worker's [`Hello`] handshake against the campaign
//! fingerprint, then streams every worker its round-robin shard of pending
//! spec indices one [`Assign`] at a time. Each [`Done`] is surfaced to the
//! caller's `on_done` sink (where the journal append and any streaming
//! writers live) before being merged into index-addressed slots.
//!
//! Fault model: a worker that dies (crash, OOM-kill, `kill -9`) is detected
//! as an I/O failure on its channel, reaped, respawned, and its *unfinished*
//! shard re-dispatched — completed indices are never re-run. A worker that
//! stays alive but reports a failed run ([`Outcome::Failed`], e.g. a
//! panicking spec) is a deterministic error: respawning would fail the same
//! way, so the pool shuts down and returns [`ClusterError::RunFailed`].

use crate::protocol::{
    read_message, write_message, Assign, CheckpointEntry, Done, Message, Outcome,
};
use crate::shard::{merge_indexed, shard_round_robin};
use serde::Value;
use std::collections::VecDeque;
use std::fmt;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable carrying the worker's pool index to the spawned
/// process (surfaced back in its [`crate::protocol::Hello`]).
pub const WORKER_ID_ENV: &str = "QISMET_CLUSTER_WORKER_ID";

/// How to launch one worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLaunch {
    /// Executable to spawn (typically `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments that put the binary into worker mode for the same campaign
    /// the coordinator expanded (grid flags plus `--worker`).
    pub args: Vec<String>,
    /// Extra environment variables for the worker (fault-injection hooks,
    /// scale overrides). The parent environment is inherited as usual.
    pub envs: Vec<(String, String)>,
}

impl WorkerLaunch {
    /// A launch spec with no extra environment.
    pub fn new(program: PathBuf, args: Vec<String>) -> Self {
        WorkerLaunch {
            program,
            args,
            envs: Vec::new(),
        }
    }
}

/// Everything that can go wrong while coordinating a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The worker process could not be spawned at all.
    Spawn(String),
    /// A worker's `Hello` fingerprint disagrees with the coordinator's —
    /// the two sides expanded different campaigns (wrong flags, wrong
    /// binary). Never retried.
    FingerprintMismatch {
        /// Worker pool index.
        worker: usize,
        /// The coordinator's fingerprint.
        ours: u64,
        /// The worker's fingerprint.
        theirs: u64,
    },
    /// A worker's `Hello` spec count disagrees with the coordinator's.
    SpecCountMismatch {
        /// Worker pool index.
        worker: usize,
        /// The coordinator's spec count.
        ours: usize,
        /// The worker's spec count.
        theirs: usize,
    },
    /// A worker kept dying after exhausting its respawn budget.
    WorkerLost {
        /// Worker pool index.
        worker: usize,
        /// Respawns consumed before giving up.
        respawns: usize,
        /// The final channel failure.
        detail: String,
    },
    /// A worker reported a failed run (e.g. the spec panicked). The failure
    /// is deterministic, so it is not retried.
    RunFailed {
        /// The failing spec index.
        index: usize,
        /// The worker's failure description.
        detail: String,
    },
    /// A live worker violated the protocol (wrong index, unexpected
    /// message kind).
    Protocol {
        /// Worker pool index.
        worker: usize,
        /// What went wrong.
        detail: String,
    },
    /// Journal or streaming I/O failed on the coordinator side.
    Io(String),
    /// The collected records do not cover the dispatched index set.
    Merge(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Spawn(detail) => write!(f, "failed to spawn worker: {detail}"),
            ClusterError::FingerprintMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker {worker} expanded a different campaign \
                 (fingerprint {theirs:#018x}, coordinator has {ours:#018x})"
            ),
            ClusterError::SpecCountMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker {worker} expanded {theirs} specs, coordinator has {ours}"
            ),
            ClusterError::WorkerLost {
                worker,
                respawns,
                detail,
            } => write!(
                f,
                "worker {worker} lost after {respawns} respawn(s): {detail}"
            ),
            ClusterError::RunFailed { index, detail } => {
                write!(f, "spec {index} failed: {detail}")
            }
            ClusterError::Protocol { worker, detail } => {
                write!(f, "protocol violation from worker {worker}: {detail}")
            }
            ClusterError::Io(detail) => write!(f, "cluster I/O error: {detail}"),
            ClusterError::Merge(detail) => write!(f, "record merge failed: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The successful result of a pool run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// One `(index, record)` pair per dispatched spec, sorted by index.
    pub records: Vec<(usize, Value)>,
    /// Worker respawns that occurred along the way.
    pub respawns: usize,
}

/// A pool of worker processes executing spec indices.
#[derive(Debug, Clone)]
pub struct ProcessPool {
    launch: WorkerLaunch,
    workers: usize,
    max_respawns: usize,
}

impl ProcessPool {
    /// A pool of `workers` processes (at least one) launched via `launch`,
    /// with a default per-worker respawn budget of 2.
    pub fn new(launch: WorkerLaunch, workers: usize) -> Self {
        ProcessPool {
            launch,
            workers: workers.max(1),
            max_respawns: 2,
        }
    }

    /// Overrides the per-worker respawn budget (0 = fail on first crash).
    #[must_use]
    pub fn with_max_respawns(mut self, max_respawns: usize) -> Self {
        self.max_respawns = max_respawns;
        self
    }

    /// The worker count this pool will actually spawn for `n` pending specs.
    pub fn effective_workers(&self, n: usize) -> usize {
        self.workers.min(n.max(1))
    }

    /// Dispatches `pending` spec indices across the pool and collects the
    /// records. `fingerprint`/`total` describe the campaign both sides
    /// expanded; `on_done` observes every completed run (in completion
    /// order, across workers) before the merge — the place to append
    /// checkpoints or stream records. A sink error is fatal: the pool
    /// aborts rather than silently continuing without durability.
    ///
    /// # Errors
    ///
    /// Returns the first [`ClusterError`] (by worker index) if any worker
    /// or the sink fails fatally; the remaining workers are aborted at
    /// their next assignment boundary instead of draining their shards.
    /// Completed work was already visible through `on_done`, so a
    /// journaling caller can resume.
    pub fn run<F>(
        &self,
        fingerprint: u64,
        total: usize,
        pending: &[usize],
        on_done: F,
    ) -> Result<ClusterOutcome, ClusterError>
    where
        F: FnMut(&CheckpointEntry) -> Result<(), String> + Send,
    {
        if pending.is_empty() {
            return Ok(ClusterOutcome {
                records: Vec::new(),
                respawns: 0,
            });
        }
        let workers = self.effective_workers(pending.len());
        let shards = shard_round_robin(pending, workers);
        let results: Mutex<Vec<(usize, Value)>> = Mutex::new(Vec::with_capacity(pending.len()));
        let sink = Mutex::new(on_done);
        let respawns = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);

        let outcomes: Vec<Result<(), ClusterError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(worker, shard)| {
                    let results = &results;
                    let sink = &sink;
                    let respawns = &respawns;
                    let abort = &abort;
                    scope.spawn(move || {
                        let outcome = self.drive_shard(
                            worker,
                            shard,
                            fingerprint,
                            total,
                            results,
                            sink,
                            respawns,
                            abort,
                        );
                        if outcome.is_err() {
                            // Other workers stop at their next assignment
                            // boundary instead of draining whole shards
                            // whose merged report will be discarded.
                            abort.store(true, Ordering::Relaxed);
                        }
                        outcome
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("coordinator thread panicked"))
                .collect()
        });
        for outcome in outcomes {
            outcome?;
        }

        let mut expected = pending.to_vec();
        expected.sort_unstable();
        let collected = results.into_inner().expect("results mutex poisoned");
        let merged =
            merge_indexed(&expected, collected).map_err(|e| ClusterError::Merge(e.to_string()))?;
        Ok(ClusterOutcome {
            records: expected.into_iter().zip(merged).collect(),
            respawns: respawns.load(Ordering::Relaxed),
        })
    }

    /// Serves one worker's shard, respawning the process on channel loss.
    #[allow(clippy::too_many_arguments)]
    fn drive_shard<F>(
        &self,
        worker: usize,
        shard: &[usize],
        fingerprint: u64,
        total: usize,
        results: &Mutex<Vec<(usize, Value)>>,
        sink: &Mutex<F>,
        respawns: &AtomicUsize,
        abort: &AtomicBool,
    ) -> Result<(), ClusterError>
    where
        F: FnMut(&CheckpointEntry) -> Result<(), String> + Send,
    {
        let mut remaining: VecDeque<usize> = shard.iter().copied().collect();
        if remaining.is_empty() {
            return Ok(());
        }
        let mut respawns_left = self.max_respawns;
        loop {
            if abort.load(Ordering::Relaxed) {
                // Another worker failed fatally; its error carries the
                // diagnosis, so this shard just stops.
                return Ok(());
            }
            let mut session = spawn_worker(&self.launch, worker)?;
            let lost = match serve_session(
                &mut session,
                worker,
                fingerprint,
                total,
                &mut remaining,
                results,
                sink,
                abort,
            ) {
                Ok(()) => {
                    session.shutdown();
                    return Ok(());
                }
                Err(SessionEnd::Fatal(e)) => {
                    session.kill();
                    return Err(e);
                }
                Err(SessionEnd::ChannelLost(detail)) => {
                    session.kill();
                    detail
                }
            };
            if respawns_left == 0 {
                return Err(ClusterError::WorkerLost {
                    worker,
                    respawns: self.max_respawns,
                    detail: lost,
                });
            }
            respawns_left -= 1;
            respawns.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Why a worker session stopped serving its shard.
enum SessionEnd {
    /// Unrecoverable: propagate to the caller.
    Fatal(ClusterError),
    /// The channel died (worker crashed); the shard's remainder can be
    /// re-dispatched to a respawned process.
    ChannelLost(String),
}

struct WorkerSession {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl WorkerSession {
    /// Graceful teardown: ask the worker to exit, close its stdin, reap.
    fn shutdown(mut self) {
        let _ = write_message(&mut self.stdin, &Message::Shutdown);
        drop(self.stdin);
        let _ = self.child.wait();
    }

    /// Hard teardown for error paths.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker(launch: &WorkerLaunch, worker: usize) -> Result<WorkerSession, ClusterError> {
    let mut cmd = Command::new(&launch.program);
    cmd.args(&launch.args)
        .env(WORKER_ID_ENV, worker.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (key, value) in &launch.envs {
        cmd.env(key, value);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| ClusterError::Spawn(format!("{}: {e}", launch.program.display())))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    Ok(WorkerSession {
        child,
        stdin,
        stdout,
    })
}

/// Handshakes one freshly-spawned worker and streams it assignments until
/// its shard drains, the session ends, or the pool aborts.
#[allow(clippy::too_many_arguments)]
fn serve_session<F>(
    session: &mut WorkerSession,
    worker: usize,
    fingerprint: u64,
    total: usize,
    remaining: &mut VecDeque<usize>,
    results: &Mutex<Vec<(usize, Value)>>,
    sink: &Mutex<F>,
    abort: &AtomicBool,
) -> Result<(), SessionEnd>
where
    F: FnMut(&CheckpointEntry) -> Result<(), String> + Send,
{
    match read_message(&mut session.stdout) {
        Ok(Message::Hello(hello)) => {
            if hello.fingerprint != fingerprint {
                return Err(SessionEnd::Fatal(ClusterError::FingerprintMismatch {
                    worker,
                    ours: fingerprint,
                    theirs: hello.fingerprint,
                }));
            }
            if hello.spec_count != total {
                return Err(SessionEnd::Fatal(ClusterError::SpecCountMismatch {
                    worker,
                    ours: total,
                    theirs: hello.spec_count,
                }));
            }
        }
        Ok(other) => {
            return Err(SessionEnd::Fatal(ClusterError::Protocol {
                worker,
                detail: format!("expected Hello, got {other:?}"),
            }))
        }
        Err(e) => return Err(SessionEnd::ChannelLost(format!("handshake failed: {e}"))),
    }

    while let Some(&index) = remaining.front() {
        if abort.load(Ordering::Relaxed) {
            // Another worker failed; stop at the assignment boundary and
            // let the graceful-shutdown path reap this worker.
            return Ok(());
        }
        if let Err(e) = write_message(&mut session.stdin, &Message::Assign(Assign { index })) {
            return Err(SessionEnd::ChannelLost(format!(
                "assign {index} failed: {e}"
            )));
        }
        let done = match read_message(&mut session.stdout) {
            Ok(Message::Done(done)) => done,
            Ok(other) => {
                return Err(SessionEnd::Fatal(ClusterError::Protocol {
                    worker,
                    detail: format!("expected Done, got {other:?}"),
                }))
            }
            Err(e) => {
                return Err(SessionEnd::ChannelLost(format!(
                    "reading result of spec {index} failed: {e}"
                )))
            }
        };
        let Done {
            index: done_index,
            seed,
            outcome,
        } = done;
        if done_index != index {
            return Err(SessionEnd::Fatal(ClusterError::Protocol {
                worker,
                detail: format!("assigned spec {index}, got result for {done_index}"),
            }));
        }
        match outcome {
            Outcome::Record(record) => {
                let entry = CheckpointEntry {
                    fingerprint,
                    index,
                    seed,
                    record,
                };
                let sunk = {
                    let mut sink = sink.lock().expect("sink mutex poisoned");
                    sink(&entry)
                };
                if let Err(detail) = sunk {
                    // Durability lost (journal/stream write failed):
                    // continuing would complete runs that can never be
                    // resumed, so fail fast instead.
                    return Err(SessionEnd::Fatal(ClusterError::Io(detail)));
                }
                results
                    .lock()
                    .expect("results mutex poisoned")
                    .push((index, entry.record));
                remaining.pop_front();
            }
            Outcome::Failed(detail) => {
                return Err(SessionEnd::Fatal(ClusterError::RunFailed { index, detail }))
            }
        }
    }
    Ok(())
}

//! The worker-pool coordinator.
//!
//! [`WorkerPool::run`] drives one [`crate::transport::Connector`] per
//! worker slot — local process workers, remote TCP workers, or any mix —
//! through the same lifecycle: connect, exchange the mutual
//! [`Hello`](crate::protocol::Hello) handshake (campaign fingerprint, spec
//! count, shared token), then stream [`Assign`] batches sized to the
//! worker's advertised thread count from a shared dispatch queue. Each
//! [`Done`] is surfaced to the caller's `on_done` sink (where the journal
//! append and any streaming writers live) before being merged into
//! index-addressed slots.
//!
//! Fault model: a worker whose channel dies (crash, OOM-kill, network
//! drop) has its un-acknowledged batch returned to the front of the shared
//! queue and its session re-established through the connector (respawn for
//! processes, reconnect for TCP), consuming respawn budget. A slot whose
//! budget runs out is declared lost — its unfinished work stays in the
//! queue and is **re-dispatched to the surviving workers**; the pool only
//! fails with [`ClusterError::WorkerLost`] if work remains when every slot
//! is gone. A worker that stays alive but reports a failed run
//! ([`Outcome::Failed`], e.g. a panicking spec) is a deterministic error:
//! retrying would fail the same way, so the pool shuts down and returns
//! [`ClusterError::RunFailed`].
//!
//! Whatever the topology, the merged records are **byte-identical** to a
//! sequential in-process run: results are keyed by spec index and every
//! record is a pure function of its pure spec.

use crate::protocol::{Assign, CheckpointEntry, Done, Hello, Message, Outcome};
use crate::transport::{Connector, Transport};
use serde::Value;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Everything that can go wrong while coordinating a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The worker session could not be established at all.
    Spawn(String),
    /// A worker's `Hello` fingerprint disagrees with the coordinator's —
    /// the two sides expanded different campaigns (wrong flags, wrong
    /// binary). Never retried.
    FingerprintMismatch {
        /// Worker pool index.
        worker: usize,
        /// The coordinator's fingerprint.
        ours: u64,
        /// The worker's fingerprint.
        theirs: u64,
    },
    /// A worker's `Hello` spec count disagrees with the coordinator's.
    SpecCountMismatch {
        /// Worker pool index.
        worker: usize,
        /// The coordinator's spec count.
        ours: usize,
        /// The worker's spec count.
        theirs: usize,
    },
    /// The worker refused the handshake (shared-token mismatch). Never
    /// retried.
    Rejected {
        /// Worker pool index.
        worker: usize,
        /// The worker's stated reason.
        reason: String,
    },
    /// A worker kept dying after exhausting its respawn budget and no
    /// surviving worker could absorb its unfinished share.
    WorkerLost {
        /// Worker pool index.
        worker: usize,
        /// Respawns consumed before giving up.
        respawns: usize,
        /// The final channel failure.
        detail: String,
    },
    /// A worker reported a failed run (e.g. the spec panicked). The failure
    /// is deterministic, so it is not retried.
    RunFailed {
        /// The failing spec index.
        index: usize,
        /// The worker's failure description.
        detail: String,
    },
    /// A live worker violated the protocol (wrong index, unexpected
    /// message kind).
    Protocol {
        /// Worker pool index.
        worker: usize,
        /// What went wrong.
        detail: String,
    },
    /// Journal or streaming I/O failed on the coordinator side.
    Io(String),
    /// The collected records do not cover the dispatched index set.
    Merge(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Spawn(detail) => write!(f, "failed to start worker: {detail}"),
            ClusterError::FingerprintMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker {worker} expanded a different campaign \
                 (fingerprint {theirs:#018x}, coordinator has {ours:#018x})"
            ),
            ClusterError::SpecCountMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker {worker} expanded {theirs} specs, coordinator has {ours}"
            ),
            ClusterError::Rejected { worker, reason } => {
                write!(f, "worker {worker} refused the handshake: {reason}")
            }
            ClusterError::WorkerLost {
                worker,
                respawns,
                detail,
            } => write!(
                f,
                "worker {worker} lost after {respawns} respawn(s): {detail}"
            ),
            ClusterError::RunFailed { index, detail } => {
                write!(f, "spec {index} failed: {detail}")
            }
            ClusterError::Protocol { worker, detail } => {
                write!(f, "protocol violation from worker {worker}: {detail}")
            }
            ClusterError::Io(detail) => write!(f, "cluster I/O error: {detail}"),
            ClusterError::Merge(detail) => write!(f, "record merge failed: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The successful result of a pool run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// One `(index, record)` pair per dispatched spec, sorted by index.
    pub records: Vec<(usize, Value)>,
    /// Worker respawns/reconnects that occurred along the way.
    pub respawns: usize,
    /// Worker slots that were declared lost (their work was re-dispatched
    /// to the survivors).
    pub lost_workers: usize,
}

/// Bound on the handshake round-trip for transports with deadline support
/// (a daemon that accepts but never answers must not hang the pool).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Base pause between a channel loss and the reconnect attempt; doubles
/// per consecutive attempt (capped by [`RECONNECT_DELAY_MAX`]) so a daemon
/// that is briefly busy — e.g. still computing a stale batch from the
/// dropped session — is not hammered into a spuriously exhausted respawn
/// budget. Long-running specs may still need a raised budget
/// (`--max-respawns`) to ride out a reconnect window.
const RECONNECT_DELAY: Duration = Duration::from_millis(50);

/// Ceiling for the exponential reconnect backoff.
const RECONNECT_DELAY_MAX: Duration = Duration::from_secs(5);

/// A pool of workers — one [`Connector`] per slot — executing spec indices.
///
/// This is the generalization of the original process pool over the
/// [`Transport`] seam: a pool of `ProcessConnector`s reproduces the old
/// spawn-N-children behavior, while arbitrary connector lists mix local
/// and remote workers in one pool.
pub struct WorkerPool {
    connectors: Vec<Box<dyn Connector>>,
    max_respawns: usize,
    token: String,
}

impl WorkerPool {
    /// A pool with one worker slot per connector (at least one required).
    ///
    /// # Panics
    ///
    /// Panics if `connectors` is empty.
    pub fn new(connectors: Vec<Box<dyn Connector>>) -> Self {
        assert!(
            !connectors.is_empty(),
            "worker pool needs at least one connector"
        );
        WorkerPool {
            connectors,
            max_respawns: 2,
            token: String::new(),
        }
    }

    /// Overrides the per-worker respawn/reconnect budget (0 = a slot is
    /// lost on its first channel failure).
    #[must_use]
    pub fn with_max_respawns(mut self, max_respawns: usize) -> Self {
        self.max_respawns = max_respawns;
        self
    }

    /// Sets the shared authentication token carried in the coordinator's
    /// `Hello` (workers reject sessions whose token differs from theirs).
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = token.into();
        self
    }

    /// Total worker slots in this pool.
    pub fn workers(&self) -> usize {
        self.connectors.len()
    }

    /// The worker count this pool will actually start for `n` pending specs.
    pub fn effective_workers(&self, n: usize) -> usize {
        self.connectors.len().min(n.max(1))
    }

    /// Dispatches `pending` spec indices across the pool and collects the
    /// records. `fingerprint`/`total` describe the campaign both sides
    /// expanded; `on_done` observes every completed run (in completion
    /// order, across workers) before the merge — the place to append
    /// checkpoints or stream records, and (via the mutable entry) to strip
    /// payload the coordinator should not keep resident. A sink error is
    /// fatal: the pool aborts rather than silently continuing without
    /// durability.
    ///
    /// # Errors
    ///
    /// Returns the first fatal [`ClusterError`] (by worker index) if any
    /// worker or the sink fails fatally; the remaining workers are aborted
    /// at their next assignment boundary instead of draining the queue.
    /// Completed work was already visible through `on_done`, so a
    /// journaling caller can resume. A non-fatal worker loss only surfaces
    /// as [`ClusterError::WorkerLost`] when no surviving worker could
    /// finish the queue.
    pub fn run<F>(
        &self,
        fingerprint: u64,
        total: usize,
        pending: &[usize],
        on_done: F,
    ) -> Result<ClusterOutcome, ClusterError>
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        if pending.is_empty() {
            return Ok(ClusterOutcome {
                records: Vec::new(),
                respawns: 0,
                lost_workers: 0,
            });
        }
        let workers = self.effective_workers(pending.len());
        let dispatch = Dispatch::new(pending);
        let results: Mutex<Vec<(usize, Value)>> = Mutex::new(Vec::with_capacity(pending.len()));
        let sink = Mutex::new(on_done);
        let respawns = AtomicUsize::new(0);

        let ends: Vec<WorkerEnd> = std::thread::scope(|scope| {
            let handles: Vec<_> = self.connectors[..workers]
                .iter()
                .enumerate()
                .map(|(worker, connector)| {
                    let dispatch = &dispatch;
                    let results = &results;
                    let sink = &sink;
                    let respawns = &respawns;
                    scope.spawn(move || {
                        let end = self.drive_worker(
                            worker,
                            connector.as_ref(),
                            fingerprint,
                            total,
                            dispatch,
                            results,
                            sink,
                            respawns,
                        );
                        if matches!(end, WorkerEnd::Fatal(_)) {
                            // Other workers stop at their next assignment
                            // boundary instead of draining a queue whose
                            // merged report will be discarded.
                            dispatch.abort();
                        }
                        if matches!(end, WorkerEnd::Lost(_)) {
                            dispatch.worker_gone();
                        }
                        end
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("coordinator thread panicked"))
                .collect()
        });

        let mut lost_workers = 0usize;
        let mut first_lost: Option<ClusterError> = None;
        for end in ends {
            match end {
                WorkerEnd::Completed => {}
                WorkerEnd::Lost(e) => {
                    lost_workers += 1;
                    if first_lost.is_none() {
                        first_lost = Some(e);
                    }
                }
                // Fatal errors propagate in worker-index order (`ends` is
                // ordered by slot).
                WorkerEnd::Fatal(e) => return Err(e),
            }
        }

        let collected = results.into_inner().expect("results mutex poisoned");
        if collected.len() != pending.len() {
            // Work remains: every slot that could have absorbed it is gone.
            return Err(first_lost.unwrap_or_else(|| {
                ClusterError::Merge(format!(
                    "collected {} of {} records with no worker failure",
                    collected.len(),
                    pending.len()
                ))
            }));
        }

        let mut expected = pending.to_vec();
        expected.sort_unstable();
        let merged = crate::shard::merge_indexed(&expected, collected)
            .map_err(|e| ClusterError::Merge(e.to_string()))?;
        Ok(ClusterOutcome {
            records: expected.into_iter().zip(merged).collect(),
            respawns: respawns.load(Ordering::Relaxed),
            lost_workers,
        })
    }

    /// Drives one worker slot: session establishment, handshake, batched
    /// assignment loop, and respawn/reconnect on channel loss.
    #[allow(clippy::too_many_arguments)]
    fn drive_worker<F>(
        &self,
        worker: usize,
        connector: &dyn Connector,
        fingerprint: u64,
        total: usize,
        dispatch: &Dispatch,
        results: &Mutex<Vec<(usize, Value)>>,
        sink: &Mutex<F>,
        respawns: &AtomicUsize,
    ) -> WorkerEnd
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        let mut respawns_left = self.max_respawns;
        let mut attempts = 0usize;
        loop {
            if dispatch.is_aborted() || dispatch.is_drained() {
                // Nothing left to do (or another worker failed fatally):
                // do not even establish a session.
                return WorkerEnd::Completed;
            }
            if attempts > 0 {
                let backoff = RECONNECT_DELAY
                    .saturating_mul(1u32 << (attempts - 1).min(16) as u32)
                    .min(RECONNECT_DELAY_MAX);
                std::thread::sleep(backoff);
            }
            attempts += 1;
            let lost = match connector.connect(worker) {
                Ok(mut transport) => {
                    match self.serve_session(
                        worker,
                        transport.as_mut(),
                        fingerprint,
                        total,
                        dispatch,
                        results,
                        sink,
                    ) {
                        Ok(()) => {
                            let _ = transport.send(&Message::Shutdown);
                            return WorkerEnd::Completed;
                        }
                        Err(SessionEnd::Fatal(e)) => return WorkerEnd::Fatal(e),
                        Err(SessionEnd::ChannelLost(detail)) => detail,
                    }
                }
                Err(e) => format!("{} unavailable: {e}", connector.describe()),
            };
            if respawns_left == 0 {
                // The slot is lost; its unfinished work is already back in
                // the shared queue for the surviving workers.
                return WorkerEnd::Lost(ClusterError::WorkerLost {
                    worker,
                    respawns: self.max_respawns,
                    detail: lost,
                });
            }
            respawns_left -= 1;
            respawns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Handshakes one fresh session and streams it batches until the queue
    /// drains, the channel dies, or the pool aborts.
    #[allow(clippy::too_many_arguments)]
    fn serve_session<F>(
        &self,
        worker: usize,
        transport: &mut dyn Transport,
        fingerprint: u64,
        total: usize,
        dispatch: &Dispatch,
        results: &Mutex<Vec<(usize, Value)>>,
        sink: &Mutex<F>,
    ) -> Result<(), SessionEnd>
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        let threads = self.handshake(worker, transport, fingerprint, total)?;
        loop {
            if dispatch.is_aborted() {
                // Another worker failed; stop at the assignment boundary.
                let _ = transport.send(&Message::Shutdown);
                return Ok(());
            }
            let Some(batch) = dispatch.pop_batch(threads) else {
                return Ok(());
            };
            self.serve_batch(
                worker,
                transport,
                fingerprint,
                &batch,
                dispatch,
                results,
                sink,
            )?;
        }
    }

    /// Runs the mutual handshake, returning the worker's advertised thread
    /// count (the batch size for this session).
    fn handshake(
        &self,
        worker: usize,
        transport: &mut dyn Transport,
        fingerprint: u64,
        total: usize,
    ) -> Result<usize, SessionEnd> {
        let _ = transport.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let ours = Message::Hello(Hello {
            worker_id: worker,
            fingerprint,
            spec_count: total,
            token: self.token.clone(),
            threads: 0,
        });
        if let Err(e) = transport.send(&ours) {
            return Err(SessionEnd::ChannelLost(format!(
                "handshake send failed: {e}"
            )));
        }
        let reply = match transport.recv() {
            Ok(reply) => reply,
            Err(e) => return Err(SessionEnd::ChannelLost(format!("handshake failed: {e}"))),
        };
        let _ = transport.set_read_timeout(None);
        match reply {
            Message::Hello(hello) => {
                if hello.token != self.token {
                    return Err(SessionEnd::Fatal(ClusterError::Rejected {
                        worker,
                        reason: "worker token differs from the coordinator's".into(),
                    }));
                }
                if hello.fingerprint != fingerprint {
                    return Err(SessionEnd::Fatal(ClusterError::FingerprintMismatch {
                        worker,
                        ours: fingerprint,
                        theirs: hello.fingerprint,
                    }));
                }
                if hello.spec_count != total {
                    return Err(SessionEnd::Fatal(ClusterError::SpecCountMismatch {
                        worker,
                        ours: total,
                        theirs: hello.spec_count,
                    }));
                }
                Ok(hello.threads.max(1))
            }
            Message::Reject(reason) => {
                Err(SessionEnd::Fatal(ClusterError::Rejected { worker, reason }))
            }
            other => Err(SessionEnd::Fatal(ClusterError::Protocol {
                worker,
                detail: format!("expected Hello, got {other:?}"),
            })),
        }
    }

    /// Assigns one batch and collects its `Done`s; on channel loss the
    /// unacknowledged remainder is returned to the queue.
    #[allow(clippy::too_many_arguments)]
    fn serve_batch<F>(
        &self,
        worker: usize,
        transport: &mut dyn Transport,
        fingerprint: u64,
        batch: &[usize],
        dispatch: &Dispatch,
        results: &Mutex<Vec<(usize, Value)>>,
        sink: &Mutex<F>,
    ) -> Result<(), SessionEnd>
    where
        F: FnMut(&mut CheckpointEntry) -> Result<(), String> + Send,
    {
        let mut outstanding: VecDeque<usize> = batch.iter().copied().collect();
        let assign = Message::Assign(Assign {
            indices: batch.to_vec(),
        });
        if let Err(e) = transport.send(&assign) {
            dispatch.requeue(&outstanding);
            return Err(SessionEnd::ChannelLost(format!(
                "assigning batch {batch:?} failed: {e}"
            )));
        }
        while !outstanding.is_empty() {
            let done = match transport.recv() {
                Ok(Message::Done(done)) => done,
                Ok(other) => {
                    dispatch.requeue(&outstanding);
                    return Err(SessionEnd::Fatal(ClusterError::Protocol {
                        worker,
                        detail: format!("expected Done, got {other:?}"),
                    }));
                }
                Err(e) => {
                    dispatch.requeue(&outstanding);
                    return Err(SessionEnd::ChannelLost(format!(
                        "reading result of batch {outstanding:?} failed: {e}"
                    )));
                }
            };
            let Done {
                index,
                seed,
                outcome,
            } = done;
            let Some(pos) = outstanding.iter().position(|&i| i == index) else {
                dispatch.requeue(&outstanding);
                return Err(SessionEnd::Fatal(ClusterError::Protocol {
                    worker,
                    detail: format!("got result for unassigned spec {index}"),
                }));
            };
            match outcome {
                Outcome::Record(record) => {
                    let mut entry = CheckpointEntry {
                        fingerprint,
                        index,
                        seed,
                        record,
                    };
                    let sunk = {
                        let mut sink = sink.lock().expect("sink mutex poisoned");
                        sink(&mut entry)
                    };
                    if let Err(detail) = sunk {
                        // Durability lost (journal/stream write failed):
                        // continuing would complete runs that can never be
                        // resumed, so fail fast instead. The run itself was
                        // never journaled, so it stays in `outstanding` and
                        // goes back to the queue.
                        dispatch.requeue(&outstanding);
                        return Err(SessionEnd::Fatal(ClusterError::Io(detail)));
                    }
                    results
                        .lock()
                        .expect("results mutex poisoned")
                        .push((index, entry.record));
                    outstanding.remove(pos);
                    dispatch.complete(1);
                }
                Outcome::Failed(detail) => {
                    outstanding.remove(pos);
                    dispatch.complete(1);
                    dispatch.requeue(&outstanding);
                    return Err(SessionEnd::Fatal(ClusterError::RunFailed { index, detail }));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field(
                "connectors",
                &self
                    .connectors
                    .iter()
                    .map(|c| c.describe())
                    .collect::<Vec<_>>(),
            )
            .field("max_respawns", &self.max_respawns)
            .finish()
    }
}

/// Why one worker slot's thread stopped.
enum WorkerEnd {
    /// Queue drained (from this worker's perspective).
    Completed,
    /// The slot exhausted its respawn budget; its work was re-queued.
    Lost(ClusterError),
    /// Unrecoverable: propagate to the caller.
    Fatal(ClusterError),
}

/// Why a worker session stopped serving.
enum SessionEnd {
    /// Unrecoverable: propagate to the caller.
    Fatal(ClusterError),
    /// The channel died (worker crashed / network drop); the slot's
    /// unfinished work was re-queued and the session can be re-established.
    ChannelLost(String),
}

/// The shared dispatch queue: pending spec indices plus an in-flight count,
/// guarded by one mutex/condvar pair so idle workers can wait for work that
/// a dying peer might hand back.
struct Dispatch {
    state: Mutex<DispatchState>,
    wake: Condvar,
    aborted: AtomicBool,
}

struct DispatchState {
    queue: VecDeque<usize>,
    in_flight: usize,
}

impl Dispatch {
    fn new(pending: &[usize]) -> Self {
        Dispatch {
            state: Mutex::new(DispatchState {
                queue: pending.iter().copied().collect(),
                in_flight: 0,
            }),
            wake: Condvar::new(),
            aborted: AtomicBool::new(false),
        }
    }

    /// Pops up to `k` indices, waiting while the queue is empty but other
    /// workers still hold in-flight work (a dying peer may re-queue it).
    /// Returns `None` once everything is done or the pool aborted.
    fn pop_batch(&self, k: usize) -> Option<Vec<usize>> {
        let k = k.max(1);
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        loop {
            if self.is_aborted() {
                return None;
            }
            if !state.queue.is_empty() {
                let n = k.min(state.queue.len());
                let batch: Vec<usize> = state.queue.drain(..n).collect();
                state.in_flight += batch.len();
                return Some(batch);
            }
            if state.in_flight == 0 {
                return None;
            }
            state = self.wake.wait(state).expect("dispatch mutex poisoned");
        }
    }

    /// Returns un-acknowledged indices to the front of the queue (order
    /// preserved) after a channel loss.
    fn requeue(&self, outstanding: &VecDeque<usize>) {
        if outstanding.is_empty() {
            // In-flight already settled; still wake waiters so idle-exit
            // conditions re-evaluate.
            self.wake.notify_all();
            return;
        }
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        for &index in outstanding.iter().rev() {
            state.queue.push_front(index);
        }
        state.in_flight -= outstanding.len();
        drop(state);
        self.wake.notify_all();
    }

    /// Marks `n` in-flight indices as durably completed.
    fn complete(&self, n: usize) {
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        state.in_flight -= n;
        let done = state.queue.is_empty() && state.in_flight == 0;
        drop(state);
        if done {
            self.wake.notify_all();
        }
    }

    /// Fatal-error broadcast: waiters wake and bail.
    fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
        self.wake.notify_all();
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Wakes waiters when a slot is lost (so survivors re-check the queue).
    fn worker_gone(&self) {
        self.wake.notify_all();
    }

    /// Whether all work is dispatched and acknowledged.
    fn is_drained(&self) -> bool {
        let state = self.state.lock().expect("dispatch mutex poisoned");
        state.queue.is_empty() && state.in_flight == 0
    }
}
